//! Figure 1 as executable code: the Strictness-Order and Temporal-Order
//! relations, and the runtime auditor flagging a backwards-in-time flow.
//!
//! ```text
//! cargo run --example ordering_demo
//! ```

use ghostminion_repro::core::order::{strictness_allows, temporal_allows, Flow, FlowKind};
use ghostminion_repro::core::OrderAuditor;

fn main() {
    println!("Temporal Order (Definition 2): x T=> y iff commit(x) or seq(x,y)");
    for (ts_x, committed, ts_y) in [(5u64, false, 10u64), (10, false, 5), (10, true, 5)] {
        println!(
            "  x(ts={ts_x}, commit={committed}) -> y(ts={ts_y}): {}",
            if temporal_allows(ts_x, committed, ts_y) {
                "allowed"
            } else {
                "FORBIDDEN"
            }
        );
    }

    println!("\nStrictness Order (Definition 1): commit(y) -> commit(x)");
    for (cx, cy) in [(true, true), (false, false), (false, true)] {
        println!(
            "  commit(x)={cx}, commit(y)={cy}: {}",
            if strictness_allows(cx, cy) {
                "allowed"
            } else {
                "VIOLATION"
            }
        );
    }

    println!("\nAuditor over a SpectreRewind-shaped history:");
    let mut a = OrderAuditor::new();
    // A squashed instruction (ts 20) influenced a committed one (ts 10).
    a.record_flow(Flow {
        core: 0,
        src_ts: 20,
        dst_ts: 10,
        kind: FlowKind::ResourceContention,
    });
    a.settle_commit(0, 10);
    a.settle_squash(0, 15, 25);
    for v in a.violations() {
        println!("  violation: {:?}", v.flow);
    }
}
