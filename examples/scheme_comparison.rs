//! A miniature Figure 6: run a few SPEC CPU2006 analogs under every
//! scheme in the paper's comparison and print normalised execution time.
//!
//! ```text
//! cargo run --release --example scheme_comparison
//! ```

use ghostminion_repro::core::{Machine, Scheme, SystemConfig};
use ghostminion_repro::workloads::{spec2006_analogs, Scale};

fn main() {
    let picks = ["gamess", "hmmer", "mcf", "xalancbmk"];
    let workloads: Vec<_> = spec2006_analogs(Scale::Test)
        .into_iter()
        .filter(|w| picks.contains(&w.name))
        .collect();
    let schemes = Scheme::figure_lineup();

    print!("{:12}", "workload");
    for s in schemes.iter().skip(1) {
        print!("  {:>18}", s.name());
    }
    println!();
    for w in &workloads {
        let base = Machine::new(
            schemes[0],
            SystemConfig::micro2021(),
            vec![w.program.clone()],
        )
        .run(u64::MAX)
        .cycles as f64;
        print!("{:12}", w.name);
        for s in schemes.iter().skip(1) {
            let c = Machine::new(*s, SystemConfig::micro2021(), vec![w.program.clone()])
                .run(u64::MAX)
                .cycles as f64;
            print!("  {:>18.3}", c / base);
        }
        println!();
    }
}
