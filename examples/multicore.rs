//! Four cores sharing memory through the coherence protocol: a Parsec
//! analog plus an LL/SC spinlock counter, under GhostMinion.
//!
//! ```text
//! cargo run --release --example multicore
//! ```

use ghostminion_repro::core::{Machine, Scheme, SystemConfig};
use ghostminion_repro::sim::MemoryBackend;
use ghostminion_repro::workloads::{parsec_analogs, Scale};

fn main() {
    for w in parsec_analogs(Scale::Test) {
        let mut m = Machine::new(
            Scheme::ghost_minion(),
            SystemConfig::micro2021(),
            w.thread_programs.clone(),
        );
        let r = m.run(u64::MAX);
        println!(
            "{:14}  cycles={:9}  committed={:8}  coherence replays={}",
            w.name,
            r.cycles,
            r.committed(),
            r.mem_stats.get("coherence_replays"),
        );
        if w.name == "canneal" {
            // The shared counter the threads increment under a spinlock.
            println!(
                "               shared counter = {}",
                m.mem().read_value(0x7000_0000 + 64, 8)
            );
        }
    }
}
