//! A miniature Figure 11: sweep the GhostMinion capacity on a workload
//! that is sensitive to it, with and without asynchronous reload.
//!
//! ```text
//! cargo run --release --example sizing_sweep
//! ```

use ghostminion_repro::core::{GhostMinionConfig, Machine, Scheme, SystemConfig};
use ghostminion_repro::workloads::{spec2006_analogs, Scale};

fn main() {
    let w = spec2006_analogs(Scale::Test)
        .into_iter()
        .find(|w| w.name == "povray")
        .expect("povray analog present");
    let base = Machine::new(
        Scheme::unsafe_baseline(),
        SystemConfig::micro2021(),
        vec![w.program.clone()],
    )
    .run(u64::MAX)
    .cycles as f64;

    println!("povray analog, normalised to the unsafe baseline:");
    for bytes in [4096u64, 2048, 1024, 512, 256, 128] {
        for async_reload in [false, true] {
            let scheme = Scheme::ghost_minion_with(GhostMinionConfig {
                minion_bytes: bytes,
                async_reload,
                ..GhostMinionConfig::default()
            });
            let c = Machine::new(scheme, SystemConfig::micro2021(), vec![w.program.clone()])
                .run(u64::MAX)
                .cycles as f64;
            print!(
                "  {:>5}B{}: {:.3}",
                bytes,
                if async_reload { "+async" } else { "      " },
                c / base
            );
        }
        println!();
    }
}
