//! Quickstart: run one workload on the Table 1 machine under the unsafe
//! baseline and under GhostMinion, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ghostminion_repro::core::{Machine, Scheme, SystemConfig};
use ghostminion_repro::isa::{Asm, DataSegment, Reg};

fn main() {
    // A little workload: sum a 64 KiB array.
    let mut a = Asm::new("quickstart");
    let base = 0x10_0000u64;
    let n = 8192u64;
    let data: Vec<u64> = (0..n).collect();
    a.data(DataSegment::words(base, &data));
    let (ptr, end, acc, v) = (Reg::x(1), Reg::x(2), Reg::x(3), Reg::x(4));
    a.li(ptr, base as i64);
    a.li(end, (base + 8 * n) as i64);
    let top = a.here();
    a.ld(v, ptr, 0);
    a.add(acc, acc, v);
    a.addi(ptr, ptr, 8);
    a.bltu(ptr, end, top);
    a.halt();
    let prog = a.assemble();

    for scheme in [Scheme::unsafe_baseline(), Scheme::ghost_minion()] {
        let mut m = Machine::new(scheme, SystemConfig::micro2021(), vec![prog.clone()]);
        let r = m.run(100_000_000);
        println!(
            "{:12}  sum={}  cycles={}  IPC={:.2}  minion hits={}",
            r.scheme_name,
            m.core(0).reg(acc),
            r.cycles,
            r.core_stats[0].ipc(),
            r.mem_stats.get("minion_hits"),
        );
    }
}
