//! Runs the Spectre v1 proof-of-concept against the simulated machine:
//! the attack recovers a planted secret string on the unprotected
//! baseline and fails against GhostMinion.
//!
//! ```text
//! cargo run --release --example spectre_attack
//! ```

use ghostminion_repro::attacks::{spectre_v1, spectre_v1_string};
use ghostminion_repro::core::Scheme;

fn main() {
    println!("-- single byte --");
    for scheme in [Scheme::unsafe_baseline(), Scheme::ghost_minion()] {
        let o = spectre_v1(scheme);
        println!("{:12}  leaked={}  ({})", o.scheme, o.leaked, o.evidence);
    }

    println!("\n-- string recovery on the unsafe baseline --");
    let secret = b"GHOST MINION";
    let (recovered, _) = spectre_v1_string(Scheme::unsafe_baseline(), secret);
    println!(
        "planted:   {:?}\nrecovered: {:?}",
        String::from_utf8_lossy(secret),
        String::from_utf8_lossy(&recovered)
    );

    println!("\n-- the same attack against GhostMinion --");
    let (recovered, _) = spectre_v1_string(Scheme::ghost_minion(), b"GHOST");
    println!("recovered: {recovered:?} (zeroes = no timing signal)");
}
