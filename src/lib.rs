//! Umbrella crate for the GhostMinion reproduction.
//!
//! Re-exports the workspace crates so the examples and integration tests
//! under the repository root can use one coherent namespace:
//!
//! * [`isa`] — instruction set and assembler DSL;
//! * [`sim`] — the cycle-level out-of-order core;
//! * [`mem`] — caches, MSHRs, coherence, prefetcher, DRAM;
//! * [`core`](mod@core) — the paper's contribution: Strictness/Temporal
//!   Order, the GhostMinion itself, and all baseline mitigation schemes;
//! * [`workloads`] — SPEC CPU2006 / SPECspeed 2017 / Parsec analog kernels;
//! * [`attacks`] — Spectre-family attack gadgets and harness;
//! * [`energy`] — CACTI-calibrated energy model (paper §6.5);
//! * [`stats`] — counters and report tables;
//! * [`results`] — fingerprinted, persistent experiment results;
//! * [`trace`] — pipeline-trace sinks (Konata/O3PipeView emission,
//!   guest-cycle attribution) over the engine's `TraceSink` hooks.

pub use ghostminion as core;
pub use gm_attacks as attacks;
pub use gm_energy as energy;
pub use gm_isa as isa;
pub use gm_mem as mem;
pub use gm_results as results;
pub use gm_sim as sim;
pub use gm_stats as stats;
pub use gm_trace as trace;
pub use gm_workloads as workloads;
