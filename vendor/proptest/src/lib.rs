//! Offline, API-compatible shim for the subset of `proptest` 1.x this
//! workspace uses (see `vendor/README.md`).
//!
//! The [`proptest!`] macro expands each property into a plain `#[test]`
//! that samples its strategies from a deterministic RNG for
//! `ProptestConfig::cases` iterations. There is no shrinking: a failing
//! case panics immediately, and the assertion message carries the
//! sampled values when the property formats them in.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    (self.start as u128 + u128::from(rng.next_u64() % span)) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u128, *self.end() as u128);
                    assert!(lo <= hi, "empty strategy range");
                    let span = hi - lo + 1;
                    (lo + u128::from(rng.next_u64()) % span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// Strategy yielding one fixed value (proptest's `Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`, like `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `bool`; mirrors `proptest::bool::ANY`.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: BoolStrategy = BoolStrategy;
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `elem` samples.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured by the shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; pure-math properties finish these
            // instantly and simulation-heavy ones override via
            // `with_cases`.
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG driving strategy sampling (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded from the property name so every test draws an
        /// independent, reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Shim for `prop_assert!`: plain `assert!` (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Shim for `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Shim for `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Shim for the `proptest!` block macro: each property becomes a plain
/// test running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_properties! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_properties! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_properties {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for _case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )*
                $body
            }
        }
        $crate::__proptest_properties! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(a in 10u64..20, b in 0u8..5) {
            prop_assert!((10..20).contains(&a));
            prop_assert!(b < 5);
        }

        /// Vec strategies respect element and length bounds.
        #[test]
        fn vecs_in_bounds(v in crate::collection::vec(any::<u8>(), 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
        }

        /// Fixed-length vec strategies produce exactly that length.
        #[test]
        fn fixed_len_vec(v in crate::collection::vec(0u64..100, 8)) {
            prop_assert_eq!(v.len(), 8);
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = crate::collection::vec(0u64..1000, 0..10);
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
