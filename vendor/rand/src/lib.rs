//! Offline, API-compatible shim for the subset of `rand` 0.8 this
//! workspace uses (see `vendor/README.md`).
//!
//! The workloads need *seeded, deterministic, well-mixed* random streams
//! — not the exact byte sequence of the real `StdRng` — so [`rngs::StdRng`]
//! here is xoshiro256** seeded through SplitMix64, both public-domain
//! algorithms by Blackman and Vigna.

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from the full output of an RNG.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Half-open ranges an RNG can sample from uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is ~span/2^64 — irrelevant for workload
                // generation, where spans are tiny.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the type's full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range. Panics if empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable RNGs. Only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanded via SplitMix64
    /// (the expansion rand_core documents for small seeds).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice extension methods needing randomness.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let s: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u64> = (0..64).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u64>>());
        assert_ne!(
            v,
            (0..64).collect::<Vec<u64>>(),
            "64! leaves this astronomically unlikely"
        );
    }
}
