//! Offline, API-compatible shim for the subset of `criterion` 0.5 this
//! workspace uses (see `vendor/README.md`).
//!
//! Each `bench_function` runs one warm-up iteration followed by
//! `sample_size` timed iterations, and prints the mean wall-clock time
//! per iteration. No statistical analysis, outlier rejection, or HTML
//! reports — just enough to exercise every benchmark path and expose a
//! stable smoke-timing number.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimiser from deleting benchmark
/// bodies; same contract as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Registers a standalone benchmark (group of one).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("default");
        g.bench_function(id, f);
        g.finish();
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark: a warm-up iteration, then `sample_size`
    /// timed iterations, reporting the mean.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b); // warm-up
        b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mean = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / u32::try_from(b.iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        };
        println!("  {}/{id}: {mean:?}/iter over {} iters", self.name, b.iters);
        self
    }

    /// Ends the group. (The shim reports as it goes.)
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times one invocation of `f`, feeding its output to [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        self.elapsed += t0.elapsed();
        self.iters += 1;
    }
}

/// Shim for `criterion_group!`: bundles benchmark functions into one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Shim for `criterion_main!`: generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    criterion_group!(smoke_group, smoke_bench);

    fn smoke_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macro_runs() {
        smoke_group();
    }
}
