//! Deterministic fault injection across the harness and the store.
//!
//! Two seams drive every test here:
//!
//! * [`gm_bench::FaultPlan`] — job-level faults (panics, wedges) the
//!   supervised runner must absorb: retry transients, record permanent
//!   failures structurally, and keep the sweep going;
//! * [`gm_results::FaultControl`]/[`gm_results::FaultyIo`] — I/O faults
//!   behind the store's `StoreIo` seam: torn appends at exact byte
//!   offsets, half-written compaction snapshots, failed renames, read
//!   errors, and seeded chaos.
//!
//! The invariants proved: no acknowledged record is ever lost, a
//! crash/corruption at *any* byte boundary degrades to re-simulation
//! (never an abort, never silent data loss — damage is quarantined),
//! and a fault-free rerun after recovery is bit-identical to a run
//! that never saw a fault.

use ghostminion::{Scheme, SystemConfig};
use gm_bench::experiment::{Report, SchemeCol, Sweep};
use gm_bench::report::{render_sweep, sweep_results_json};
use gm_bench::{FailureKind, FaultPlan, Runner, Shard, Supervision};
use gm_results::{sha256_hex, FaultControl, FaultyIo, ResultStore};
use gm_stats::Json;
use gm_workloads::{Scale, Suite};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

/// A unique scratch directory under the system temp dir, removed on
/// drop (the offline environment has no `tempfile` crate).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gm-fault-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir creates");
        Self(dir)
    }

    fn store(&self, name: &str) -> ResultStore {
        ResultStore::open(self.0.join(name)).expect("scratch store opens")
    }

    fn faulty_store(&self, name: &str, ctl: &FaultControl) -> ResultStore {
        ResultStore::open_with_io(self.0.join(name), Box::new(FaultyIo::new(ctl.clone())))
            .expect("faulty store opens")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_sweep() -> Sweep {
    Sweep {
        suite: Suite::Spec2006,
        workloads: Some(vec!["gamess", "hmmer"]),
        schemes: vec![
            SchemeCol::named(Scheme::unsafe_baseline()),
            SchemeCol::named(Scheme::ghost_minion()),
        ],
        report: Report::NormalizedTime,
        config: SystemConfig::micro2021(),
    }
}

/// A synthetic store record with a plausible 64-hex fingerprint.
fn rec(tag: u64, cycles: u64) -> Json {
    let mut j = Json::object();
    j.set("fingerprint", sha256_hex(&tag.to_le_bytes()))
        .set("cycles", cycles);
    j
}

/// Blanks the digits after every `"wall_us":` — the one field that is
/// real wall-clock and therefore differs between bit-identical runs.
fn strip_wall(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(at) = rest.find("\"wall_us\":") {
        let end = at + "\"wall_us\":".len();
        out.push_str(&rest[..end]);
        rest = rest[end..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

#[test]
fn a_panicking_job_cannot_sink_the_sweep_and_recovery_is_bit_identical() {
    let scratch = Scratch::new("panic");
    let sweep = small_sweep();

    // Reference: a never-faulted cold run against its own store.
    let clean_store = scratch.store("clean");
    let clean = Runner::new(2)
        .run_sweep_shard(
            &sweep,
            Scale::Test,
            "t",
            Some(&clean_store),
            Shard::full(),
            None,
        )
        .unwrap();
    assert!(clean.failures.is_empty());

    // Faulted run: hmmer/GhostMinion panics on *every* attempt.
    let store = scratch.store("s");
    let faulted = Runner::new(2)
        .with_faults(FaultPlan::none().panic_on("hmmer", "GhostMinion"))
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();

    // The sweep completed around the hole, with a structured failure.
    assert_eq!(faulted.failures.len(), 1);
    let f = &faulted.failures[0];
    assert_eq!(
        (f.workload.as_str(), f.scheme.as_str()),
        ("hmmer", "GhostMinion")
    );
    assert_eq!(f.kind, FailureKind::Panic);
    assert_eq!(f.attempts, 2, "default supervision retried once");
    assert!(f.message.contains("injected fault: panic"), "{}", f.message);
    assert_eq!(faulted.owned_jobs(), 3);
    assert_eq!(
        store.load("t").unwrap().records.len(),
        3,
        "survivors are durable"
    );

    // The report renders the complete rows and names the omission.
    let (res, omitted) = faulted.complete_results();
    assert_eq!(omitted, ["hmmer"]);
    let (_, table, _) = render_sweep(&sweep, &res);
    let text = table.render();
    assert!(text.contains("gamess") && !text.contains("hmmer"));

    // A fault-free rerun against the same store re-simulates only the
    // hole, then is bit-identical to the never-faulted run.
    let healed = Runner::new(2)
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    assert!(healed.failures.is_empty());
    assert_eq!((healed.cache.hits, healed.cache.misses), (3, 1));
    let (_, ct, _) = render_sweep(&sweep, &clean.to_results());
    let (_, ht, _) = render_sweep(&sweep, &healed.to_results());
    assert_eq!(ct.render(), ht.render(), "stdout tables bit-identical");
    assert_eq!(ct.to_csv(), ht.to_csv());
    assert_eq!(
        strip_wall(&sweep_results_json(&sweep, &clean).render()),
        strip_wall(&sweep_results_json(&sweep, &healed).render()),
        "JSON bit-identical apart from real wall-clock"
    );
}

#[test]
fn a_transient_fault_heals_on_the_retry_with_no_visible_trace() {
    let scratch = Scratch::new("transient");
    let sweep = small_sweep();
    let store = scratch.store("s");
    let run = Runner::new(2)
        .with_faults(FaultPlan::none().panic_once("gamess", "GhostMinion"))
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    assert!(run.failures.is_empty(), "one retry absorbs a transient");
    assert_eq!((run.cache.hits, run.cache.misses), (0, 4));
    assert_eq!(store.load("t").unwrap().records.len(), 4);

    // Same table as a fault-free run.
    let bare = Runner::new(2).run_sweep(&sweep, Scale::Test);
    let (_, expect, _) = render_sweep(&sweep, &bare);
    let (_, got, _) = render_sweep(&sweep, &run.to_results());
    assert_eq!(expect.render(), got.render());
}

#[test]
fn a_wedged_job_trips_the_wall_clock_budget() {
    let scratch = Scratch::new("wedge");
    let sweep = Sweep {
        workloads: Some(vec!["gamess"]),
        schemes: vec![SchemeCol::named(Scheme::ghost_minion())],
        ..small_sweep()
    };
    let store = scratch.store("s");
    let run = Runner::new(1)
        .with_supervision(Supervision {
            attempts: 1,
            budget: Some(Duration::from_millis(200)),
            strict: false,
        })
        .with_faults(FaultPlan::none().wedge_on("gamess", "GhostMinion"))
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    assert_eq!(run.failures.len(), 1);
    let f = &run.failures[0];
    assert_eq!(f.kind, FailureKind::Timeout);
    assert_eq!(f.attempts, 1);
    assert!(f.message.contains("budget"), "{}", f.message);
    assert_eq!(run.owned_jobs(), 0);
}

#[test]
fn strict_mode_fails_the_run_but_keeps_completed_work() {
    let scratch = Scratch::new("strict");
    let sweep = small_sweep();
    let store = scratch.store("s");
    let err = Runner::new(2)
        .with_supervision(Supervision {
            strict: true,
            ..Supervision::default()
        })
        .with_faults(FaultPlan::none().panic_on("hmmer", "GhostMinion"))
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap_err();
    assert!(err.contains("strict mode"), "{err}");
    assert!(err.contains("hmmer/GhostMinion"), "{err}");
    // Strict failure happens *after* the sweep: the three completed
    // jobs reached the store and a rerun will not repeat them.
    assert_eq!(store.load("t").unwrap().records.len(), 3);
}

#[test]
fn every_torn_append_byte_boundary_is_recoverable() {
    let scratch = Scratch::new("torn");
    let ctl = FaultControl::new();
    let store = scratch.faulty_store("s", &ctl);
    let first = rec(1, 100);
    let second = rec(2, 200);
    // Length of a complete appended line (record + checksum + newline),
    // measured from an undamaged experiment.
    store.append("probe", &second).unwrap();
    let line_len = std::fs::metadata(store.path("probe")).unwrap().len() as usize;

    for keep in 0..=line_len {
        let name = format!("t{keep}");
        store.append(&name, &first).unwrap();
        ctl.truncate_next_append(keep);
        let torn = store.append(&name, &second);
        assert!(torn.is_err(), "a torn append reports failure (keep={keep})");

        // Reopen with clean I/O, as a crashed-and-restarted run would.
        let reopened = scratch.store("s");
        let shard = reopened.load(&name).unwrap();
        let fp1 = first.get("fingerprint").unwrap().as_str().unwrap();
        let fp2 = second.get("fingerprint").unwrap().as_str().unwrap();
        // Invariant 1: the acknowledged record always survives, intact.
        assert_eq!(
            shard.records.get(fp1).map(Json::render),
            Some(first.render()),
            "keep={keep}"
        );
        // Invariant 2: the torn record either loads complete (the cut
        // fell after the payload) or not at all — never mangled.
        if let Some(got) = shard.records.get(fp2) {
            assert_eq!(got.render(), second.render(), "keep={keep}");
        } else {
            // Re-append (re-simulation) restores full coverage.
            reopened.append(&name, &second).unwrap();
            let healed = reopened.load(&name).unwrap();
            assert_eq!(healed.records.len(), 2, "keep={keep}");
        }
        // Invariant 3: compaction heals the file; everything reloads.
        reopened.compact(&name).unwrap();
        let compacted = reopened.load(&name).unwrap();
        assert!(compacted.records.contains_key(fp1), "keep={keep}");
        assert_eq!(compacted.corrupt, 0, "keep={keep}");
    }
}

#[test]
fn compact_and_gc_crash_points_never_lose_records() {
    let scratch = Scratch::new("compact");
    let ctl = FaultControl::new();
    let store = scratch.faulty_store("s", &ctl);
    store.append("t", &rec(1, 1)).unwrap();
    store.append("t", &rec(2, 2)).unwrap();
    store.append("t", &rec(1, 3)).unwrap(); // supersedes rec(1, 1)
    let fp1 = rec(1, 0)
        .get("fingerprint")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();

    // Crash while writing the compaction snapshot: the original file is
    // untouched (the snapshot is a sibling temporary).
    for keep in [0usize, 1, 10] {
        ctl.truncate_next_write(keep);
        assert!(store.compact("t").is_err());
        let shard = scratch.store("s").load("t").unwrap();
        assert_eq!(shard.records.len(), 2, "keep={keep}");
        assert_eq!(shard.records[&fp1].get("cycles").unwrap().as_u64(), Some(3));
        assert!(
            !store.path("t").with_extension("jsonl.tmp").exists(),
            "no temporary left behind (keep={keep})"
        );
    }

    // Crash between snapshot and swap: rename fails, original intact.
    ctl.fail_next_rename();
    assert!(store.compact("t").is_err());
    let shard = scratch.store("s").load("t").unwrap();
    assert_eq!(shard.records.len(), 2);
    assert!(!store.path("t").with_extension("jsonl.tmp").exists());

    // Same for gc.
    ctl.fail_next_rename();
    assert!(store.gc("t", &|fp| fp == fp1).is_err());
    let shard = scratch.store("s").load("t").unwrap();
    assert_eq!(shard.records.len(), 2);

    // With faults disarmed both passes complete and stay consistent.
    ctl.clear();
    let stats = store.compact("t").unwrap();
    assert_eq!((stats.kept, stats.superseded), (2, 1));
    let stats = store.gc("t", &|fp| fp == fp1).unwrap();
    assert_eq!((stats.kept, stats.dropped), (1, 1));
    let shard = store.load("t").unwrap();
    assert_eq!(shard.records.len(), 1);
    assert_eq!(shard.records[&fp1].get("cycles").unwrap().as_u64(), Some(3));
}

#[test]
fn a_store_read_error_degrades_to_a_cold_run_not_an_abort() {
    let scratch = Scratch::new("read-error");
    let sweep = small_sweep();
    // Warm the store, then make every read of its file fail.
    let ctl = FaultControl::new();
    let store = scratch.faulty_store("s", &ctl);
    let warm = Runner::new(2)
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    assert_eq!(warm.cache.misses, 4);
    ctl.fail_reads_matching("t.jsonl");
    let run = Runner::new(2)
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    assert!(run.failures.is_empty(), "read error is not a job failure");
    assert_eq!((run.cache.hits, run.cache.misses), (0, 4), "cold rerun");
    assert!(
        run.cache.corrupt > 0,
        "degradation is visible to --expect-cached"
    );
    // The degraded run's report matches the warm run's bit for bit.
    let (_, wt, _) = render_sweep(&sweep, &warm.to_results());
    let (_, rt, _) = render_sweep(&sweep, &run.to_results());
    assert_eq!(wt.render(), rt.render());
}

#[test]
fn quarantined_damage_marks_misses_as_explained() {
    let scratch = Scratch::new("explained");
    let sweep = small_sweep();
    let store = scratch.store("s");
    Runner::new(2)
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    // Bit-rot one record: its checksum fails, the line quarantines, and
    // the warm rerun re-simulates exactly that job — with the damage
    // count carried on the run so `--expect-cached` degrades to a
    // warning instead of an abort.
    let path = store.path("t");
    let text = std::fs::read_to_string(&path).unwrap();
    let rotted = text.replacen("\"cycles\":", "\"cycles\":9", 1);
    assert_ne!(rotted, text);
    std::fs::write(&path, rotted).unwrap();
    let run = Runner::new(2)
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    assert_eq!((run.cache.hits, run.cache.misses), (3, 1));
    assert_eq!(run.cache.corrupt, 1);
    assert!(store.quarantine_path("t").exists());
    // After the compaction the CLI runs at the end of every
    // store-backed run, a fully warm rerun is damage-free again.
    store.compact("t").unwrap();
    let again = Runner::new(2)
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    assert_eq!(
        (again.cache.hits, again.cache.misses, again.cache.corrupt),
        (4, 0, 0)
    );
}

#[test]
fn seeded_chaos_never_corrupts_loadable_state() {
    let scratch = Scratch::new("chaos");
    let ctl = FaultControl::new();
    let store = scratch.faulty_store("s", &ctl);
    ctl.seed(0xA5A5_5A5A, 40);
    let mut acknowledged = Vec::new();
    for i in 0..50u64 {
        let r = rec(i, i * 7);
        if store.append("t", &r).is_ok() {
            acknowledged.push(r);
        }
    }
    assert!(ctl.injected() > 0, "the chaos stream actually fired");
    assert!(!acknowledged.is_empty(), "some appends succeeded");
    ctl.clear();

    // Whatever the fault pattern did, the file loads, every record that
    // loads is byte-exact something we appended (checksums reject
    // mangled lines), and every *acknowledged* append is durable — a
    // torn tail from an earlier fault is isolated, never merged into
    // the next record.
    let shard = store.load("t").unwrap();
    for r in &acknowledged {
        let fp = r.get("fingerprint").unwrap().as_str().unwrap();
        assert_eq!(
            shard.records.get(fp).map(Json::render),
            Some(r.render()),
            "acknowledged append must be durable"
        );
    }
    let by_fp: std::collections::HashMap<String, String> = (0..50u64)
        .map(|i| {
            let r = rec(i, i * 7);
            (
                r.get("fingerprint").unwrap().as_str().unwrap().to_owned(),
                r.render(),
            )
        })
        .collect();
    for (fp, got) in &shard.records {
        assert_eq!(Some(&got.render()), by_fp.get(fp));
    }

    // Re-appending everything (what re-simulation does) restores full
    // coverage, and compaction leaves a pristine file.
    for i in 0..50u64 {
        store.append("t", &rec(i, i * 7)).unwrap();
    }
    store.compact("t").unwrap();
    let healed = store.load("t").unwrap();
    assert_eq!(healed.records.len(), 50);
    assert_eq!(healed.corrupt, 0);
    assert_eq!(healed.checksummed, 50);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating the store file at *any* byte boundary inside the
    /// final record — what a `kill -9` mid-append leaves — loses at
    /// most that final record, keeps every earlier one bit-exact, and
    /// heals by re-append + compact.
    #[test]
    fn truncation_at_any_final_record_boundary_recovers(cut_seed in any::<usize>()) {
        let scratch = Scratch::new("prop-trunc");
        let store = scratch.store("s");
        let first = rec(10, 111);
        let last = rec(11, 222);
        store.append("t", &first).unwrap();
        let base = std::fs::metadata(store.path("t")).unwrap().len() as usize;
        store.append("t", &last).unwrap();
        let full = std::fs::read(store.path("t")).unwrap();
        let final_len = full.len() - base;
        // Cut anywhere inside the final record (0 = lost entirely).
        let cut = base + cut_seed % final_len;
        std::fs::write(store.path("t"), &full[..cut]).unwrap();

        let shard = store.load("t").unwrap();
        let fp1 = first.get("fingerprint").unwrap().as_str().unwrap();
        prop_assert_eq!(
            shard.records.get(fp1).map(Json::render),
            Some(first.render())
        );
        let fp2 = last.get("fingerprint").unwrap().as_str().unwrap();
        prop_assert!(!shard.records.contains_key(fp2), "cut record must not load");
        prop_assert!(shard.corrupt <= 1);

        // gc with a keep-everything predicate preserves the survivor...
        store.gc("t", &|_| true).unwrap();
        let shard = store.load("t").unwrap();
        prop_assert!(shard.records.contains_key(fp1));
        prop_assert_eq!(shard.corrupt, 0, "gc healed the torn tail");
        // ...and re-appending the lost record restores coverage.
        store.append("t", &last).unwrap();
        let healed = store.load("t").unwrap();
        prop_assert_eq!(healed.records.len(), 2);
        store.compact("t").unwrap();
        prop_assert!(!store.load("t").unwrap().needs_compaction());
    }
}
