//! Integration tests asserting the paper's headline *shapes* hold on the
//! quick workload scale. Exact magnitudes vary with the substituted
//! substrate (see DESIGN.md); these tests pin the orderings and rough
//! factors that EXPERIMENTS.md reports.

use ghostminion_repro::core::{Machine, Scheme, SystemConfig};
use ghostminion_repro::workloads::{spec2006_analogs, Scale, Workload};

fn cycles(scheme: Scheme, w: &Workload) -> f64 {
    Machine::new(scheme, SystemConfig::micro2021(), vec![w.program.clone()])
        .run(u64::MAX)
        .cycles as f64
}

fn pick(name: &str) -> Workload {
    spec2006_analogs(Scale::Test)
        .into_iter()
        .find(|w| w.name == name)
        .expect("workload present")
}

#[test]
fn mcf_is_ghostminions_worst_case() {
    let w = pick("mcf");
    let base = cycles(Scheme::unsafe_baseline(), &w);
    let gm = cycles(Scheme::ghost_minion(), &w) / base;
    assert!(
        (1.15..1.6).contains(&gm),
        "mcf GhostMinion ratio {gm:.3} should be ≈1.3 (paper: ~30%)"
    );
}

#[test]
fn cache_resident_workloads_are_near_free() {
    for name in ["gamess", "hmmer", "tonto"] {
        let w = pick(name);
        let base = cycles(Scheme::unsafe_baseline(), &w);
        let gm = cycles(Scheme::ghost_minion(), &w) / base;
        assert!(gm < 1.06, "{name} GhostMinion ratio {gm:.3} should be ≈1.0");
    }
}

#[test]
fn stt_hurts_pointer_chasing_more_than_ghostminion() {
    // Paper: "many workloads, such as astar, ... omnetpp and xalancbmk,
    // where STT shows large overheads when GhostMinion shows none".
    let w = pick("xalancbmk");
    let base = cycles(Scheme::unsafe_baseline(), &w);
    let gm = cycles(Scheme::ghost_minion(), &w) / base;
    let stt = cycles(Scheme::stt_spectre(), &w) / base;
    assert!(
        stt > gm + 0.03,
        "STT ({stt:.3}) must exceed GhostMinion ({gm:.3}) on pointer chasing"
    );
}

#[test]
fn invisispec_future_is_the_most_expensive_family() {
    let w = pick("milc");
    let base = cycles(Scheme::unsafe_baseline(), &w);
    let gm = cycles(Scheme::ghost_minion(), &w) / base;
    let isf = cycles(Scheme::invisispec_future(), &w) / base;
    assert!(
        isf > gm,
        "InvisiSpec-Future ({isf:.3}) must exceed GhostMinion ({gm:.3})"
    );
}

#[test]
fn timeless_dminion_is_no_slower_than_full_timeguarding() {
    // Fig. 9: TimeGuarding on top of the wiped minion costs ≈0.2%.
    let w = pick("soplex");
    let base = cycles(Scheme::unsafe_baseline(), &w);
    let timeless = cycles(Scheme::dminion_timeless(), &w) / base;
    let dminion = cycles(Scheme::dminion_only(), &w) / base;
    assert!(
        (dminion - timeless).abs() < 0.08,
        "TimeGuarding should cost little: timeless {timeless:.3} vs guarded {dminion:.3}"
    );
}

#[test]
fn small_minions_degrade_gracefully_and_async_reload_recovers() {
    use ghostminion_repro::core::GhostMinionConfig;
    let w = pick("povray");
    let base = cycles(Scheme::unsafe_baseline(), &w);
    let at = |bytes: u64, async_reload: bool| {
        cycles(
            Scheme::ghost_minion_with(GhostMinionConfig {
                minion_bytes: bytes,
                async_reload,
                ..GhostMinionConfig::default()
            }),
            &w,
        ) / base
    };
    let full = at(2048, false);
    let tiny = at(128, false);
    let tiny_async = at(128, true);
    assert!(
        tiny >= full,
        "128B minion ({tiny:.3}) cannot beat 2KiB ({full:.3})"
    );
    assert!(
        tiny_async <= tiny + 0.01,
        "async reload ({tiny_async:.3}) must not exceed plain 128B ({tiny:.3})"
    );
}

#[test]
fn fig10_events_are_rare() {
    // "Backwards-in-time prevention is rarely triggered": < 10% of loads.
    for name in ["soplex", "omnetpp", "mcf"] {
        let w = pick(name);
        let r = Machine::new(
            Scheme::ghost_minion(),
            SystemConfig::micro2021(),
            vec![w.program.clone()],
        )
        .run(u64::MAX);
        let loads = r.mem_stats.get("loads").max(1) as f64;
        let events = (r.mem_stats.get("timeguards")
            + r.mem_stats.get("timeleaps")
            + r.mem_stats.get("leapfrogs")) as f64;
        assert!(
            events / loads < 0.10,
            "{name}: backwards-in-time events {:.3} of loads",
            events / loads
        );
    }
}
