//! Fault injection across the result-service seam.
//!
//! These tests stand up the real [`gm_serve::Server`] in-process
//! (bound to `127.0.0.1:0`) and drive [`gm_results::RemoteStore`]
//! through the real TCP transport, with [`gm_results::NetFaultControl`]
//! injecting network faults and [`gm_results::FaultControl`] injecting
//! disk faults *behind* the server. The invariants proved:
//!
//! * a dead remote degrades to a completed local-only sweep whose
//!   reports are bit-identical to a run where `--remote` was omitted;
//! * a remote killed mid-`Put` leaves both replicas loadable (the
//!   damage quarantines) and a retried sweep bit-identical;
//! * a garbled response is quarantined client-side and the job simply
//!   re-simulates;
//! * the circuit breaker trips once, the rest of the sweep
//!   short-circuits, and the telemetry stream stays validator-clean.

use ghostminion::{Scheme, SystemConfig};
use gm_bench::experiment::{Report, SchemeCol, Sweep};
use gm_bench::report::{render_sweep, sweep_results_json};
use gm_bench::telemetry::validate;
use gm_bench::{Runner, Shard, SweepRun, Telemetry};
use gm_results::{
    FaultControl, FaultyIo, FaultyNet, NetFaultControl, NetTimeouts, RemoteStore, ResultStore,
    RetryPolicy, TcpIo,
};
use gm_serve::{ServeConfig, ServeStats, Server, Shutdown};
use gm_workloads::{Scale, Suite};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A unique scratch directory under the system temp dir, removed on
/// drop (the offline environment has no `tempfile` crate).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gm-remote-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir creates");
        Self(dir)
    }

    fn store(&self, name: &str) -> ResultStore {
        ResultStore::open(self.0.join(name)).expect("scratch store opens")
    }

    fn faulty_store(&self, name: &str, ctl: &FaultControl) -> ResultStore {
        ResultStore::open_with_io(self.0.join(name), Box::new(FaultyIo::new(ctl.clone())))
            .expect("faulty store opens")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_sweep() -> Sweep {
    Sweep {
        suite: Suite::Spec2006,
        workloads: Some(vec!["gamess", "hmmer"]),
        schemes: vec![
            SchemeCol::named(Scheme::unsafe_baseline()),
            SchemeCol::named(Scheme::ghost_minion()),
        ],
        report: Report::NormalizedTime,
        config: SystemConfig::micro2021(),
    }
}

/// Blanks every `"wall_us"` value so bit-identity checks compare
/// everything except real wall-clock.
fn strip_wall(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(at) = rest.find("\"wall_us\":") {
        let end = at + "\"wall_us\":".len();
        out.push_str(&rest[..end]);
        rest = rest[end..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// Starts the real server on an ephemeral port, returning its address,
/// the shutdown handle, and the drain thread.
fn spawn_server(store: ResultStore) -> (String, Shutdown, JoinHandle<std::io::Result<ServeStats>>) {
    let shutdown = Shutdown::new();
    let cfg = ServeConfig {
        read_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let server = Server::bind(store, "127.0.0.1:0", cfg, shutdown.clone()).expect("server binds");
    let addr = server.local_addr().expect("server addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, shutdown, handle)
}

/// Drains the server and returns its final stats.
fn drain(shutdown: Shutdown, handle: JoinHandle<std::io::Result<ServeStats>>) -> ServeStats {
    shutdown.trigger();
    handle
        .join()
        .expect("server thread joins")
        .expect("server drains cleanly")
}

/// An address nothing listens on: bind an ephemeral port, then drop
/// the listener, so connecting yields an immediate refusal.
fn dead_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    l.local_addr().expect("probe addr").to_string()
}

/// A retry policy that never sleeps and trips fast, for tests.
fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 2,
        base_backoff: Duration::ZERO,
        seed: 7,
        breaker_threshold: 2,
    }
}

fn run_with(
    runner: &Runner,
    sweep: &Sweep,
    store: &ResultStore,
    tel: Option<&Telemetry>,
) -> SweepRun {
    runner
        .run_sweep_shard(sweep, Scale::Test, "t", Some(store), Shard::full(), tel)
        .expect("sweep completes")
}

fn table_of(sweep: &Sweep, run: &SweepRun) -> String {
    let (_, table, _) = render_sweep(sweep, &run.to_results());
    table.render()
}

#[test]
fn a_dead_remote_degrades_to_a_bit_identical_local_run() {
    let scratch = Scratch::new("dead");
    let sweep = small_sweep();

    // Reference: the same cold sweep with --remote omitted.
    let base_store = scratch.store("base");
    let base = run_with(&Runner::new(2), &sweep, &base_store, None);

    let remote = Arc::new(
        RemoteStore::new(dead_addr())
            .with_policy(RetryPolicy {
                attempts: 1,
                breaker_threshold: 1,
                ..fast_policy()
            })
            .with_quarantine(scratch.0.join("a").join("remote.quarantine")),
    );
    let store = scratch.store("a");
    let run = run_with(
        &Runner::new(2).with_remote(remote.clone()),
        &sweep,
        &store,
        None,
    );

    // The sweep completed local-only; the breaker tripped exactly once
    // and every later operation short-circuited without a connection.
    assert!(run.failures.is_empty());
    assert_eq!((run.cache.hits, run.cache.misses), (0, 4));
    assert_eq!((run.cache.remote_hits, run.cache.remote_pushes), (0, 0));
    assert!(remote.degraded(), "breaker tripped");
    let c = remote.counters();
    assert_eq!((c.hits, c.pushes), (0, 0));
    assert!(
        c.short_circuits >= 1,
        "operations after the trip short-circuit: {c:?}"
    );

    // Reports are byte-identical to the no-remote run.
    assert_eq!(table_of(&sweep, &base), table_of(&sweep, &run));
    assert_eq!(
        strip_wall(&sweep_results_json(&sweep, &base).render()),
        strip_wall(&sweep_results_json(&sweep, &run).render()),
    );
    assert_eq!(store.load("t").unwrap().records.len(), 4, "locally durable");
}

#[test]
fn a_second_machine_warms_its_cache_through_the_live_server() {
    let scratch = Scratch::new("warm");
    let sweep = small_sweep();
    let (addr, shutdown, handle) = spawn_server(scratch.store("srv"));

    // Machine A: cold run, every fresh result pushed to the service.
    let store_a = scratch.store("a");
    let remote_a = Arc::new(RemoteStore::new(addr.clone()));
    let cold = run_with(
        &Runner::new(2).with_remote(remote_a.clone()),
        &sweep,
        &store_a,
        None,
    );
    assert_eq!((cold.cache.hits, cold.cache.misses), (0, 4));
    assert_eq!((cold.cache.remote_hits, cold.cache.remote_pushes), (0, 4));
    assert!(!remote_a.degraded());

    // Machine B: fresh local store, warms entirely through the remote.
    let store_b = scratch.store("b");
    let remote_b = Arc::new(RemoteStore::new(addr));
    let warm = run_with(
        &Runner::new(2).with_remote(remote_b.clone()),
        &sweep,
        &store_b,
        None,
    );
    assert_eq!((warm.cache.hits, warm.cache.misses), (4, 0));
    assert_eq!((warm.cache.remote_hits, warm.cache.remote_pushes), (4, 0));
    assert_eq!(remote_b.counters().hits, 4);

    // A remote hit replays the stored wall_us, so the JSON report is
    // bit-identical *including* wall-clock fields.
    assert_eq!(
        sweep_results_json(&sweep, &cold).render(),
        sweep_results_json(&sweep, &warm).render(),
    );
    assert_eq!(table_of(&sweep, &cold), table_of(&sweep, &warm));

    // Remote hits also landed in B's local store, so a third run is
    // warm without any remote at all.
    assert_eq!(store_b.load("t").unwrap().records.len(), 4);

    // The drained server saw exactly the traffic above, and its own
    // replica is durable and clean.
    let stats = drain(shutdown, handle);
    assert_eq!(stats.puts_accepted, 4);
    assert_eq!(stats.puts_rejected, 0);
    assert_eq!((stats.hits, stats.misses), (4, 4));
    let srv = scratch.store("srv").load("t").unwrap();
    assert_eq!((srv.records.len(), srv.corrupt), (4, 0));
}

#[test]
fn a_server_torn_mid_put_rejects_the_ack_and_both_replicas_recover() {
    let scratch = Scratch::new("torn");
    let sweep = small_sweep();

    // The server's disk tears the first append ten bytes in — the
    // write that would ack the first Put dies under the handler.
    let ctl = FaultControl::new();
    let (addr, shutdown, handle) = spawn_server(scratch.faulty_store("srv", &ctl));
    ctl.truncate_next_append(10);

    let store_a = scratch.store("a");
    let remote = Arc::new(RemoteStore::new(addr).with_policy(fast_policy()));
    let run = run_with(
        &Runner::new(1).with_remote(remote.clone()),
        &sweep,
        &store_a,
        None,
    );

    // The sweep is unharmed: the failed ack is a push failure, not an
    // error, and the record is already durable locally.
    assert!(run.failures.is_empty());
    assert_eq!((run.cache.hits, run.cache.misses), (0, 4));
    assert_eq!(run.cache.remote_pushes, 3, "the torn Put was not acked");
    assert_eq!(remote.counters().push_failures, 1);
    assert_eq!(ctl.injected(), 1);
    assert!(!remote.degraded(), "a server-side rejection is not a trip");

    let stats = drain(shutdown, handle);
    assert_eq!((stats.puts_accepted, stats.puts_rejected), (3, 1));

    // Both replicas load: the client store is whole; the server store
    // isolates the torn prefix as one corrupt line and keeps every
    // acked record.
    assert_eq!(store_a.load("t").unwrap().records.len(), 4);
    let srv_store = scratch.store("srv");
    let srv = srv_store.load("t").unwrap();
    assert_eq!((srv.records.len(), srv.corrupt), (3, 1));
    assert_eq!(srv_store.compact("t").unwrap().corrupt, 1);

    // A fresh machine retried against the healed server re-simulates
    // only the hole and matches machine A byte-for-byte (modulo the
    // re-simulated job's real wall-clock).
    let (addr2, shutdown2, handle2) = spawn_server(srv_store);
    let store_b = scratch.store("b");
    let remote_b = Arc::new(RemoteStore::new(addr2).with_policy(fast_policy()));
    let retry = run_with(
        &Runner::new(1).with_remote(remote_b),
        &sweep,
        &store_b,
        None,
    );
    assert_eq!((retry.cache.hits, retry.cache.misses), (3, 1));
    assert_eq!((retry.cache.remote_hits, retry.cache.remote_pushes), (3, 1));
    assert_eq!(table_of(&sweep, &run), table_of(&sweep, &retry));
    assert_eq!(
        strip_wall(&sweep_results_json(&sweep, &run).render()),
        strip_wall(&sweep_results_json(&sweep, &retry).render()),
    );
    let stats2 = drain(shutdown2, handle2);
    assert_eq!(stats2.puts_accepted, 1, "only the hole was re-pushed");
}

#[test]
fn a_garbled_response_is_quarantined_and_the_job_resimulates() {
    let scratch = Scratch::new("garble");
    let sweep = small_sweep();

    // Pre-warm the server's replica with a clean cold run, then serve.
    let srv_store = scratch.store("srv");
    let warmup = run_with(&Runner::new(2), &sweep, &srv_store, None);
    assert_eq!(warmup.cache.misses, 4);
    let (addr, shutdown, handle) = spawn_server(srv_store);

    // The client's wire garbles the first exchange's response.
    let ctl = NetFaultControl::new();
    let quarantine = scratch.0.join("a").join("remote.quarantine");
    let remote = Arc::new(
        RemoteStore::with_io(
            addr,
            Box::new(FaultyNet::new(
                Box::new(TcpIo::new(NetTimeouts::default())),
                ctl.clone(),
            )),
        )
        .with_policy(fast_policy())
        .with_quarantine(quarantine.clone()),
    );
    ctl.garble_next();

    let store = scratch.store("a");
    let run = run_with(
        &Runner::new(1).with_remote(remote.clone()),
        &sweep,
        &store,
        None,
    );

    // The garbled job re-simulated (and re-pushed); the rest hit.
    assert!(run.failures.is_empty());
    assert_eq!((run.cache.hits, run.cache.misses), (3, 1));
    assert_eq!((run.cache.remote_hits, run.cache.remote_pushes), (3, 1));
    assert_eq!(remote.counters().garbled, 1);
    assert!(
        !remote.degraded(),
        "a garbled answer is not a transport trip"
    );

    // The poisoned bytes are preserved as evidence, never replayed.
    let evidence = std::fs::read_to_string(&quarantine).expect("quarantine written");
    assert!(!evidence.is_empty());

    // The report matches the clean warm-up run exactly.
    assert_eq!(table_of(&sweep, &warmup), table_of(&sweep, &run));
    assert_eq!(
        strip_wall(&sweep_results_json(&sweep, &warmup).render()),
        strip_wall(&sweep_results_json(&sweep, &run).render()),
    );
    drain(shutdown, handle);
}

#[test]
fn the_breaker_trips_once_and_the_telemetry_stream_validates() {
    let scratch = Scratch::new("breaker");
    let sweep = small_sweep();

    let remote = Arc::new(RemoteStore::new(dead_addr()).with_policy(RetryPolicy {
        attempts: 1,
        breaker_threshold: 2,
        ..fast_policy()
    }));
    let store = scratch.store("a");
    let tel_path = scratch.0.join("events.jsonl");
    let tel = Telemetry::create(tel_path.to_str().unwrap()).expect("telemetry file");
    tel.emit("run_start", |j| {
        j.set("program", "remote-test").set("scale", "test");
    });
    tel.emit("experiment_start", |j| {
        j.set("experiment", "t");
    });
    let run = run_with(
        &Runner::new(1).with_remote(remote.clone()),
        &sweep,
        &store,
        Some(&tel),
    );
    tel.emit("experiment_end", |j| {
        j.set("experiment", "t")
            .set("jobs", 4u64)
            .set("hits", run.cache.hits as u64)
            .set("misses", run.cache.misses as u64)
            .set("sim_wall_us", 0u64);
    });
    tel.emit("run_end", |j| {
        j.set("experiments", 1u64);
    });
    tel.finish().expect("telemetry flushes");

    // Job 1's get (1st consecutive failure) and put (2nd) trip the
    // breaker; every later operation short-circuits without touching
    // the network.
    assert!(run.failures.is_empty());
    assert_eq!((run.cache.hits, run.cache.misses), (0, 4));
    assert!(remote.degraded());
    let c = remote.counters();
    assert_eq!(c.short_circuits, 6, "3 jobs × (get + put) after the trip");
    assert!(
        !remote.take_degradation_event(),
        "the runner already consumed the one-shot degradation event"
    );

    // The stream validates end-to-end: four remote_miss spans inside
    // their jobs, one remote_degraded after every span closed.
    let text = std::fs::read_to_string(&tel_path).expect("telemetry readable");
    let summary = validate(&text).expect("stream validates");
    assert_eq!(summary.jobs, 4);
    assert_eq!(summary.remote, 4, "one remote_miss per job");
    assert_eq!(summary.degraded, 1);
    assert!(text.contains("\"event\":\"remote_degraded\""));
}
