//! Golden-output suite for the engine rewrite: every report and every
//! job fingerprint must be byte-identical to the committed fixtures,
//! which were captured from the tree *before* the cycle-skipping /
//! allocation-free engine landed. Any engine change that alters a cycle
//! count, a counter, or a fingerprint fails here.
//!
//! Three layers, by cost:
//!
//! * fingerprints — computed without simulating; always on;
//! * a small simulated subset — a few (workload × scheme) jobs through
//!   the real `micro2021()` machine; always on;
//! * the full registry at `--scale test` — identical to the stdout of
//!   `gm-run --scale test`; `#[ignore]`d because it simulates for
//!   minutes (CI runs the comparison in release in its timed cold-run
//!   step, and locally: `cargo test --release -- --ignored golden`).
//!
//! Regenerate fixtures after an *intentional* behaviour change with
//! `GM_UPDATE_GOLDEN=1 cargo test --release --test golden_reports -- --include-ignored`.

use gm_bench::experiment::{registry, ExperimentKind};
use gm_bench::report::{report_text, run_experiment};
use gm_bench::runner::Runner;
use gm_results::job_fingerprint;
use gm_workloads::Scale;
use std::path::Path;

fn golden_path(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_or_update(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("GM_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    assert!(
        expected == actual,
        "{name} drifted from the committed pre-rewrite fixture;\n\
         if the change is intentional, regenerate with GM_UPDATE_GOLDEN=1\n\
         --- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

/// Every sweep job's content address, in report order. No simulation:
/// this pins that the engine rewrite changed neither the fingerprint
/// inputs (program content, scheme, config renderings) nor the cache
/// hit behaviour of stores written before the rewrite. `#[ignore]`d
/// because debug-mode SHA-256 over every program is slow; CI runs it in
/// release (seconds), and the sample test below always runs.
#[test]
#[ignore = "hashes every program; run in release (CI does) or via --include-ignored"]
fn fingerprints_match_committed_golden() {
    let mut lines = String::new();
    for exp in registry() {
        let ExperimentKind::Sweep(sweep) = &exp.kind else {
            continue;
        };
        let set = sweep.workload_set(Scale::Test);
        for unit in &set.units {
            for col in &sweep.schemes {
                let fp = job_fingerprint(unit, &col.scheme, Scale::Test, &sweep.config);
                lines.push_str(&format!("{} {} {} {fp}\n", exp.name, unit.name, col.label));
            }
        }
    }
    check_or_update("fingerprints.txt", &lines);
}

/// Always-on slice of the fingerprint pin: the first and last workload
/// of every sweep, across its full scheme lineup, plus a structural
/// check that the fixture covers exactly the registry's job count.
#[test]
fn fingerprint_sample_matches_committed_golden() {
    let fixture = std::fs::read_to_string(golden_path("fingerprints.txt"))
        .expect("committed fingerprint fixture");
    let mut expected_jobs = 0usize;
    for exp in registry() {
        let ExperimentKind::Sweep(sweep) = &exp.kind else {
            continue;
        };
        let set = sweep.workload_set(Scale::Test);
        expected_jobs += set.units.len() * sweep.schemes.len();
        let sample = [&set.units[0], set.units.last().expect("non-empty suite")];
        for unit in sample {
            for col in &sweep.schemes {
                let fp = job_fingerprint(unit, &col.scheme, Scale::Test, &sweep.config);
                let line = format!("{} {} {} {fp}", exp.name, unit.name, col.label);
                assert!(
                    fixture.lines().any(|l| l == line),
                    "fingerprint drifted from the committed fixture: {line}"
                );
            }
        }
    }
    assert_eq!(
        fixture.lines().count(),
        expected_jobs,
        "fixture job count no longer matches the registry"
    );
}

/// A cheap always-on slice of the full golden comparison: the two
/// single-scheme sweeps restricted to two workloads each, through the
/// real Table 1 machine. Catches cycle/counter drift in seconds.
#[test]
fn subset_reports_match_committed_golden() {
    let runner = Runner::new(1);
    let mut out = String::new();
    for (name, keep) in [("fig10", ["mcf", "lbm"]), ("power", ["astar", "milc"])] {
        let mut exp = gm_bench::experiment::find(name).expect("registered");
        let ExperimentKind::Sweep(sweep) = &mut exp.kind else {
            panic!("{name} is a sweep");
        };
        sweep.workloads = Some(keep.to_vec());
        let rendered = run_experiment(&runner, &exp, Scale::Test, None, None)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        out.push_str(&report_text(exp.title, &rendered));
    }
    check_or_update("subset_reports.txt", &out);
}

/// The full registry at `--scale test`: byte-identical to the stdout of
/// `gm-run --scale test` captured before the engine rewrite. Simulates
/// every job — run in release (CI's timed cold-run step `cmp`s the real
/// gm-run stdout against the same fixture).
#[test]
#[ignore = "simulates the whole registry; run in release or rely on CI's cmp"]
fn full_registry_reports_match_committed_golden() {
    let runner = Runner::new(0);
    let mut out = String::new();
    for exp in registry() {
        let rendered = run_experiment(&runner, &exp, Scale::Test, None, None)
            .unwrap_or_else(|e| panic!("{}: {e}", exp.name));
        out.push_str(&report_text(exp.title, &rendered));
    }
    check_or_update("gm_run_test_scale.txt", &out);
}
