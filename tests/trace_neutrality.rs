//! Trace neutrality: attaching a `TraceSink` must be unobservable in
//! the simulation. A traced run's final cycle count, per-core pipeline
//! statistics, and memory counters must be identical to an untraced
//! run's — the hooks only *read* engine state — while the sinks
//! themselves must demonstrably see the event stream (a vacuously
//! passing oracle proves nothing).
//!
//! Coverage mirrors `tests/cycle_skipping.rs`: real workloads across
//! the five scheme families with the most different stall behaviour, a
//! multi-threaded Parsec unit, and property-tested random programs.

use ghostminion_repro::core::{Machine, MachineResult, Scheme, SystemConfig};
use ghostminion_repro::isa::{Asm, DataSegment, Program, Reg};
use ghostminion_repro::sim::{TraceEvent, TraceSink};
use ghostminion_repro::trace::{validate_o3, O3PipeViewSink, SummarySink, Tee};
use ghostminion_repro::workloads::{Scale, Suite, WorkloadSet};
use proptest::prelude::*;
use std::cell::RefCell;
use std::io::{self, Write};
use std::rc::Rc;

/// Counts raw events, so every assertion can require the sinks
/// actually observed the run.
#[derive(Default)]
struct CountingSink {
    events: u64,
}

impl TraceSink for CountingSink {
    fn event(&mut self, _cycle: u64, _core: usize, _ev: &TraceEvent) {
        self.events += 1;
    }
}

/// A `Write` over a shared buffer, so the O3 trace text can be read
/// back after the sink (which owns its writer) is done.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// One traced run with the full sink stack attached: O3 emission,
/// summary attribution, and an event counter, teed exactly as
/// `gm-run trace --out ... --summary` tees them.
struct TracedRun {
    result: MachineResult,
    events: u64,
    o3_text: String,
    summary: SummarySink,
}

fn run_traced(scheme: Scheme, cfg: SystemConfig, programs: Vec<Program>) -> TracedRun {
    let buf = SharedBuf::default();
    let o3 = Rc::new(RefCell::new(O3PipeViewSink::new(buf.clone())));
    let sum = Rc::new(RefCell::new(SummarySink::new()));
    let count = Rc::new(RefCell::new(CountingSink::default()));
    let tee = Rc::new(RefCell::new(Tee::new(vec![
        o3.clone() as Rc<RefCell<dyn TraceSink>>,
        sum.clone() as Rc<RefCell<dyn TraceSink>>,
        count.clone() as Rc<RefCell<dyn TraceSink>>,
    ])));
    let mut m = Machine::new(scheme, cfg, programs);
    m.set_trace(tee);
    let result = m.run(cfg.max_cycles);
    o3.borrow_mut().finish().expect("in-memory write");
    let events = count.borrow().events;
    let o3_text = String::from_utf8(buf.0.borrow().clone()).expect("trace is UTF-8");
    let summary = sum.borrow().clone();
    TracedRun {
        result,
        events,
        o3_text,
        summary,
    }
}

fn assert_neutral(scheme: Scheme, cfg: SystemConfig, programs: Vec<Program>, label: &str) {
    let untraced = Machine::new(scheme, cfg, programs.clone()).run(cfg.max_cycles);
    let traced = run_traced(scheme, cfg, programs);
    assert_eq!(
        traced.result.cycles, untraced.cycles,
        "{label}: tracing changed the cycle count"
    );
    assert_eq!(
        traced.result.core_stats, untraced.core_stats,
        "{label}: tracing changed per-core stats"
    );
    assert_eq!(
        traced.result.mem_stats, untraced.mem_stats,
        "{label}: tracing changed memory counters"
    );
    // The oracle must not pass vacuously: the sinks saw the run, the
    // emitted trace is well-formed, and its counts reconcile with the
    // engine's own statistics.
    assert!(traced.events > 0, "{label}: no events reached the sinks");
    let committed: u64 = untraced.core_stats.iter().map(|c| c.committed).sum();
    let fetched: u64 = untraced.core_stats.iter().map(|c| c.fetched).sum();
    assert_eq!(
        traced.summary.committed(),
        committed,
        "{label}: summary commit count disagrees with engine stats"
    );
    assert_eq!(
        traced.summary.fetched, fetched,
        "{label}: summary fetch count disagrees with engine stats"
    );
    let report = validate_o3(&traced.o3_text)
        .unwrap_or_else(|e| panic!("{label}: emitted trace fails validation: {e}"));
    assert_eq!(
        report.retired, committed,
        "{label}: trace retire count disagrees with engine stats"
    );
}

/// Real workloads through the real Table 1 machine, across scheme
/// families with very different stall behaviour (plain OoO, minion
/// timestamps, commit-time exposure loads, taint gating, §4.9 strict
/// FU scheduling).
#[test]
fn tracing_is_neutral_on_real_workloads() {
    let mut strict = Scheme::ghost_minion();
    strict.strict_fu_order = true;
    let schemes = [
        Scheme::unsafe_baseline(),
        Scheme::ghost_minion(),
        Scheme::invisispec_future(),
        Scheme::stt_spectre(),
        strict,
    ];
    let set = WorkloadSet::new(Suite::Spec2006, Scale::Test);
    let unit = set
        .units
        .iter()
        .find(|u| u.name == "bzip2")
        .expect("bzip2 analog exists");
    for scheme in schemes {
        assert_neutral(
            scheme,
            SystemConfig::micro2021(),
            unit.programs.clone(),
            &format!("bzip2/{}", scheme.name()),
        );
    }
}

/// Multicore: one shared sink receives events from every core (tagged
/// by core index), and tracing must not perturb the wake-ordered
/// scheduler or the cycle-skip path.
#[test]
fn tracing_is_neutral_on_multicore_parsec() {
    let set = WorkloadSet::new(Suite::Parsec, Scale::Test);
    let unit = &set.units[0];
    assert!(unit.programs.len() > 1, "parsec units are multi-threaded");
    for scheme in [Scheme::ghost_minion(), Scheme::stt_spectre()] {
        assert_neutral(
            scheme,
            SystemConfig::micro2021(),
            unit.programs.clone(),
            &format!("{}/{}", unit.name, scheme.name()),
        );
    }
}

/// Same generator as the cycle-skipping suite: bounded loads and
/// stores, data-dependent branches, divides (non-pipelined FU
/// occupancy), and a final counted loop.
fn random_program(ops: &[u8], seeds: &[u64]) -> Program {
    let mut a = Asm::new("random");
    let arena = 0x20_0000u64;
    let words: Vec<u64> = seeds.iter().cycle().take(64).copied().collect();
    a.data(DataSegment::words(arena, &words));
    a.li(Reg::x(20), arena as i64);
    for (i, &s) in seeds.iter().take(8).enumerate() {
        a.li(Reg::x(1 + i as u8), (s & 0xffff) as i64);
    }
    for (k, &op) in ops.iter().enumerate() {
        let rd = Reg::x(1 + (op % 8));
        let rs1 = Reg::x(1 + ((op >> 3) % 8));
        let rs2 = Reg::x(1 + ((op >> 5) % 4));
        match op % 11 {
            0 => a.add(rd, rs1, rs2),
            1 => a.sub(rd, rs1, rs2),
            2 => a.xor(rd, rs1, rs2),
            3 => a.mul(rd, rs1, rs2),
            4 => a.div(rd, rs1, rs2),
            5 => a.slli(rd, rs1, (op % 7) as i64),
            6 => {
                a.andi(Reg::x(9), rs1, 0x1f8);
                a.add(Reg::x(9), Reg::x(9), Reg::x(20));
                a.ld(rd, Reg::x(9), 0);
            }
            7 => {
                a.andi(Reg::x(9), rs1, 0x1f8);
                a.add(Reg::x(9), Reg::x(9), Reg::x(20));
                a.st(rs2, Reg::x(9), 0);
            }
            8 => {
                let skip = a.label();
                a.andi(Reg::x(9), rs1, 1 + (k as i64 % 3));
                a.beq(Reg::x(9), Reg::ZERO, skip);
                a.addi(rd, rd, 1);
                a.bind(skip);
            }
            9 => a.fadd(Reg::f(1), rs1, rs2),
            _ => a.rem(rd, rs1, rs2),
        }
    }
    let (i, n) = (Reg::x(10), Reg::x(11));
    a.li(i, 0);
    a.li(n, 40);
    let top = a.here();
    a.addi(Reg::x(1), Reg::x(1), 3);
    a.addi(i, i, 1);
    a.bne(i, n, top);
    a.halt();
    a.assemble()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: for any program, under any scheme family, attaching
    /// the full sink stack never changes any result field, and the
    /// emitted trace always validates.
    #[test]
    fn random_programs_trace_neutrally(
        ops in proptest::collection::vec(any::<u8>(), 10..80),
        seeds in proptest::collection::vec(1u64..u64::MAX, 8),
    ) {
        let prog = random_program(&ops, &seeds);
        let mut strict = Scheme::ghost_minion();
        strict.strict_fu_order = true;
        for scheme in [
            Scheme::unsafe_baseline(),
            Scheme::ghost_minion(),
            Scheme::invisispec_future(),
            Scheme::stt_spectre(),
            strict,
        ] {
            let cfg = SystemConfig::tiny();
            let untraced = Machine::new(scheme, cfg, vec![prog.clone()]).run(cfg.max_cycles);
            let traced = run_traced(scheme, cfg, vec![prog.clone()]);
            prop_assert_eq!(traced.result.cycles, untraced.cycles,
                "cycles diverge under {}", scheme.name());
            prop_assert_eq!(&traced.result.core_stats, &untraced.core_stats,
                "stats diverge under {}", scheme.name());
            prop_assert_eq!(&traced.result.mem_stats, &untraced.mem_stats,
                "mem counters diverge under {}", scheme.name());
            prop_assert!(traced.events > 0, "no events under {}", scheme.name());
            prop_assert!(validate_o3(&traced.o3_text).is_ok(),
                "trace fails validation under {}", scheme.name());
        }
    }
}
