//! Cycle-skipping equivalence: the production run loop (which jumps the
//! clock over globally-quiescent cycles) must be indistinguishable from
//! the lockstep reference loop that ticks every core on every cycle —
//! same final cycle count, same per-core pipeline statistics (including
//! the per-cycle stall counters the skip path replays), same memory
//! counters, same architectural state.

use ghostminion_repro::core::{Machine, MachineResult, Scheme, SystemConfig};
use ghostminion_repro::isa::{Asm, DataSegment, Program, Reg};
use ghostminion_repro::workloads::{Scale, Suite, WorkloadSet};
use proptest::prelude::*;

fn pair(
    scheme: Scheme,
    cfg: SystemConfig,
    programs: Vec<Program>,
) -> (MachineResult, MachineResult) {
    let skipping = Machine::new(scheme, cfg, programs.clone()).run(cfg.max_cycles);
    let lockstep = Machine::new(scheme, cfg, programs).run_lockstep(cfg.max_cycles);
    (skipping, lockstep)
}

fn assert_equivalent(scheme: Scheme, cfg: SystemConfig, programs: Vec<Program>, label: &str) {
    let (skip, lock) = pair(scheme, cfg, programs);
    assert_eq!(skip.cycles, lock.cycles, "{label}: cycle counts diverge");
    assert_eq!(
        skip.core_stats, lock.core_stats,
        "{label}: per-core stats diverge"
    );
    assert_eq!(
        skip.mem_stats, lock.mem_stats,
        "{label}: memory counters diverge"
    );
}

/// Real workloads through the real Table 1 machine, across scheme
/// families with very different stall behaviour (plain OoO, minion
/// timestamps, commit-time exposure loads, taint gating, §4.9 strict FU
/// scheduling).
#[test]
fn real_workloads_match_lockstep_on_micro2021() {
    let mut strict = Scheme::ghost_minion();
    strict.strict_fu_order = true;
    let schemes = [
        Scheme::unsafe_baseline(),
        Scheme::ghost_minion(),
        Scheme::invisispec_future(),
        Scheme::stt_spectre(),
        strict,
    ];
    let set = WorkloadSet::new(Suite::Spec2006, Scale::Test);
    let unit = set
        .units
        .iter()
        .find(|u| u.name == "bzip2")
        .expect("bzip2 analog exists");
    for scheme in schemes {
        assert_equivalent(
            scheme,
            SystemConfig::micro2021(),
            unit.programs.clone(),
            &format!("bzip2/{}", scheme.name()),
        );
    }
}

/// The multicore skip path: all cores must be quiescent before a cycle
/// is elided, and idle accounting is per-core.
#[test]
fn multicore_parsec_matches_lockstep() {
    let set = WorkloadSet::new(Suite::Parsec, Scale::Test);
    let unit = &set.units[0];
    assert!(unit.programs.len() > 1, "parsec units are multi-threaded");
    assert_equivalent(
        Scheme::ghost_minion(),
        SystemConfig::micro2021(),
        unit.programs.clone(),
        &format!("{}/GhostMinion", unit.name),
    );
}

// ---- stage gating ----
//
// `Core::tick` dispatches a pipeline stage only when its pending-work
// predicate holds. The predicates must equal each stage body's own
// first-iteration entry conditions, so gating can never change
// behaviour — asserted here by running the same programs three ways:
// the default machine (gating on), the production loop with gating
// force-disabled, and the lockstep oracle (no memo, no gating, no
// cycle skipping).

/// The production wake-ordered loop with every stage dispatched
/// unconditionally — isolates the gating predicates as the only
/// difference from the default machine.
fn run_ungated(scheme: Scheme, cfg: SystemConfig, programs: Vec<Program>) -> MachineResult {
    let mut m = Machine::new(scheme, cfg, programs);
    m.disable_stage_gating();
    m.run(cfg.max_cycles)
}

fn assert_gating_equivalent(
    scheme: Scheme,
    cfg: SystemConfig,
    programs: Vec<Program>,
    label: &str,
) {
    let gated = Machine::new(scheme, cfg, programs.clone()).run(cfg.max_cycles);
    let ungated = run_ungated(scheme, cfg, programs.clone());
    let lockstep = Machine::new(scheme, cfg, programs).run_lockstep(cfg.max_cycles);
    for (name, other) in [("ungated", &ungated), ("lockstep", &lockstep)] {
        assert_eq!(
            gated.cycles, other.cycles,
            "{label}: cycle counts diverge from the {name} oracle"
        );
        assert_eq!(
            gated.core_stats, other.core_stats,
            "{label}: per-core stats diverge from the {name} oracle"
        );
        assert_eq!(
            gated.mem_stats, other.mem_stats,
            "{label}: memory counters diverge from the {name} oracle"
        );
    }
}

/// Stage gating on real workloads across the five scheme families whose
/// stall behaviour differs most (see
/// [`real_workloads_match_lockstep_on_micro2021`]).
#[test]
fn stage_gating_matches_ungated_and_lockstep_on_real_workloads() {
    let mut strict = Scheme::ghost_minion();
    strict.strict_fu_order = true;
    let schemes = [
        Scheme::unsafe_baseline(),
        Scheme::ghost_minion(),
        Scheme::invisispec_future(),
        Scheme::stt_spectre(),
        strict,
    ];
    let set = WorkloadSet::new(Suite::Spec2006, Scale::Test);
    let unit = set
        .units
        .iter()
        .find(|u| u.name == "bzip2")
        .expect("bzip2 analog exists");
    for scheme in schemes {
        assert_gating_equivalent(
            scheme,
            SystemConfig::micro2021(),
            unit.programs.clone(),
            &format!("bzip2/{}", scheme.name()),
        );
    }
}

/// Stage gating under the multicore wake-ordered scheduler: per-core
/// predicates must not desynchronise cores that share a memory system.
#[test]
fn multicore_stage_gating_matches_oracles() {
    let set = WorkloadSet::new(Suite::Parsec, Scale::Test);
    let unit = &set.units[0];
    assert!(unit.programs.len() > 1, "parsec units are multi-threaded");
    for scheme in [Scheme::ghost_minion(), Scheme::stt_spectre()] {
        assert_gating_equivalent(
            scheme,
            SystemConfig::micro2021(),
            unit.programs.clone(),
            &format!("{}/{}", unit.name, scheme.name()),
        );
    }
}

/// Same generator as the functional-equivalence suite: bounded loads and
/// stores, data-dependent branches, divides (non-pipelined FU occupancy),
/// and a final counted loop.
fn random_program(ops: &[u8], seeds: &[u64]) -> Program {
    let mut a = Asm::new("random");
    let arena = 0x20_0000u64;
    let words: Vec<u64> = seeds.iter().cycle().take(64).copied().collect();
    a.data(DataSegment::words(arena, &words));
    a.li(Reg::x(20), arena as i64);
    for (i, &s) in seeds.iter().take(8).enumerate() {
        a.li(Reg::x(1 + i as u8), (s & 0xffff) as i64);
    }
    for (k, &op) in ops.iter().enumerate() {
        let rd = Reg::x(1 + (op % 8));
        let rs1 = Reg::x(1 + ((op >> 3) % 8));
        let rs2 = Reg::x(1 + ((op >> 5) % 4));
        match op % 11 {
            0 => a.add(rd, rs1, rs2),
            1 => a.sub(rd, rs1, rs2),
            2 => a.xor(rd, rs1, rs2),
            3 => a.mul(rd, rs1, rs2),
            4 => a.div(rd, rs1, rs2),
            5 => a.slli(rd, rs1, (op % 7) as i64),
            6 => {
                a.andi(Reg::x(9), rs1, 0x1f8);
                a.add(Reg::x(9), Reg::x(9), Reg::x(20));
                a.ld(rd, Reg::x(9), 0);
            }
            7 => {
                a.andi(Reg::x(9), rs1, 0x1f8);
                a.add(Reg::x(9), Reg::x(9), Reg::x(20));
                a.st(rs2, Reg::x(9), 0);
            }
            8 => {
                let skip = a.label();
                a.andi(Reg::x(9), rs1, 1 + (k as i64 % 3));
                a.beq(Reg::x(9), Reg::ZERO, skip);
                a.addi(rd, rd, 1);
                a.bind(skip);
            }
            9 => a.fadd(Reg::f(1), rs1, rs2),
            _ => a.rem(rd, rs1, rs2),
        }
    }
    let (i, n) = (Reg::x(10), Reg::x(11));
    a.li(i, 0);
    a.li(n, 40);
    let top = a.here();
    a.addi(Reg::x(1), Reg::x(1), 3);
    a.addi(i, i, 1);
    a.bne(i, n, top);
    a.halt();
    a.assemble()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: for any program, cycle-skipping never changes
    /// `MachineResult.cycles` (nor any statistic) under any scheme
    /// family, including the ones whose stall counters the skip path
    /// has to replay (STT taint delays, strict-FU delays).
    #[test]
    fn random_programs_match_lockstep(
        ops in proptest::collection::vec(any::<u8>(), 10..80),
        seeds in proptest::collection::vec(1u64..u64::MAX, 8),
    ) {
        let prog = random_program(&ops, &seeds);
        let mut strict = Scheme::ghost_minion();
        strict.strict_fu_order = true;
        for scheme in [
            Scheme::unsafe_baseline(),
            Scheme::ghost_minion(),
            Scheme::invisispec_future(),
            Scheme::stt_spectre(),
            strict,
        ] {
            let cfg = SystemConfig::tiny();
            let (skip, lock) = pair(scheme, cfg, vec![prog.clone()]);
            prop_assert_eq!(skip.cycles, lock.cycles, "cycles diverge under {}", scheme.name());
            prop_assert_eq!(skip.core_stats, lock.core_stats, "stats diverge under {}", scheme.name());
            prop_assert_eq!(skip.mem_stats, lock.mem_stats, "mem counters diverge under {}", scheme.name());
        }
    }

    /// Property: for any program, disabling stage gating (alone, with
    /// the production loop otherwise unchanged) is unobservable in
    /// every result field, under every scheme family. Together with
    /// `random_programs_match_lockstep` this pins the gated machine to
    /// the no-shortcut oracle through an intermediate that isolates
    /// the predicates themselves.
    #[test]
    fn random_programs_gating_is_unobservable(
        ops in proptest::collection::vec(any::<u8>(), 10..80),
        seeds in proptest::collection::vec(1u64..u64::MAX, 8),
    ) {
        let prog = random_program(&ops, &seeds);
        let mut strict = Scheme::ghost_minion();
        strict.strict_fu_order = true;
        for scheme in [
            Scheme::unsafe_baseline(),
            Scheme::ghost_minion(),
            Scheme::invisispec_future(),
            Scheme::stt_spectre(),
            strict,
        ] {
            let cfg = SystemConfig::tiny();
            let gated = Machine::new(scheme, cfg, vec![prog.clone()]).run(cfg.max_cycles);
            let ungated = run_ungated(scheme, cfg, vec![prog.clone()]);
            prop_assert_eq!(gated.cycles, ungated.cycles, "cycles diverge under {}", scheme.name());
            prop_assert_eq!(gated.core_stats, ungated.core_stats, "stats diverge under {}", scheme.name());
            prop_assert_eq!(gated.mem_stats, ungated.mem_stats, "mem counters diverge under {}", scheme.name());
        }
    }
}
