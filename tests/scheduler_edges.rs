//! Edge cases of the wake-ordered multicore scheduler in
//! `Machine::run`: a sleeping core re-scheduled mid-sleep by a leapfrog
//! cancellation, all-cores-quiescent clock jumps, staggered halts, and
//! the single-core degenerate case. Each scenario is asserted
//! cycle-identical (and statistic-identical) against the lockstep
//! reference loop that ticks every core on every cycle.

use ghostminion_repro::core::{Machine, MachineResult, Scheme, SystemConfig};
use ghostminion_repro::isa::{Asm, DataSegment, Program, Reg};

fn pair(
    scheme: Scheme,
    cfg: SystemConfig,
    programs: Vec<Program>,
) -> (MachineResult, MachineResult) {
    let skipping = Machine::new(scheme, cfg, programs.clone()).run(cfg.max_cycles);
    let lockstep = Machine::new(scheme, cfg, programs).run_lockstep(cfg.max_cycles);
    (skipping, lockstep)
}

fn assert_equivalent(skip: &MachineResult, lock: &MachineResult, label: &str) {
    assert_eq!(skip.cycles, lock.cycles, "{label}: cycle counts diverge");
    assert_eq!(
        skip.core_stats, lock.core_stats,
        "{label}: per-core stats diverge"
    );
    assert_eq!(
        skip.mem_stats, lock.mem_stats,
        "{label}: memory counters diverge"
    );
}

/// A core that bursts `lines` independent loads per loop iteration at
/// *permuted* cache lines (stride `3 * 512` mod the region, so the
/// stride prefetcher never trains and every victim in an MSHR is a
/// demand load, not a cancellation-free orphan prefetch), for `iters`
/// iterations. `pad` prepends cheap dependent arithmetic:
/// `addi`-padding inflates the core's sequence numbers quickly (young
/// timestamps, early in time), while a dependent `div` chain burns many
/// cycles per instruction (old timestamps, late in time). Running a
/// young-early core against an old-late core makes the old core's
/// bursts arrive while the young core's speculative loads sit in the
/// tiny hierarchy's 4 shared L2 MSHRs — textbook §4.5 leapfrog steals,
/// and the victim core is usually asleep waiting on the stolen load.
fn mshr_hammer(id: u64, iters: i64, lines: u64, pad: Pad) -> Program {
    let mut a = Asm::new(format!("hammer-{id}"));
    let base = 0x40_0000u64 + id * 0x8_0000;
    // A 64-line region at 512-byte stride (32 KiB): far beyond the tiny
    // L1's 16 lines, so commit-time promotion never turns the stream
    // into hits.
    let words: Vec<u64> = (0..64 * 64).collect();
    a.data(DataSegment::words(base, &words));
    let (ptr, acc, v, i, n) = (Reg::x(1), Reg::x(2), Reg::x(3), Reg::x(4), Reg::x(5));
    let (t, one, b, s, idx) = (Reg::x(6), Reg::x(7), Reg::x(8), Reg::x(9), Reg::x(10));
    a.li(t, 1 << 20);
    a.li(one, 1);
    match pad {
        // Many sequence numbers, few cycles: a wide dependent-free run.
        Pad::Seq(k) => (0..k).for_each(|_| a.addi(t, t, 1)),
        // Few sequence numbers, many cycles: serialised long-latency divs.
        Pad::Time(k) => (0..k).for_each(|_| a.div(t, t, one)),
    }
    a.li(b, base as i64);
    a.li(s, 0);
    a.li(i, 0);
    a.li(n, iters);
    a.li(acc, 0);
    let top = a.here();
    // s += i: the iteration's starting line advances by a *growing*
    // increment, so every load PC sees a different stride each iteration
    // and the PC-indexed stride prefetcher never locks on.
    a.add(s, s, i);
    a.andi(s, s, 63);
    a.mv(idx, s);
    for _ in 0..lines {
        a.addi(idx, idx, 11); // co-prime step: distinct lines per burst
        a.andi(idx, idx, 63);
        a.slli(ptr, idx, 9);
        a.add(ptr, ptr, b);
        a.ld(v, ptr, 0);
        a.add(acc, acc, v); // dependent use: the core stalls on the miss
    }
    a.addi(i, i, 1);
    a.bne(i, n, top);
    a.halt();
    a.assemble()
}

enum Pad {
    Seq(u32),
    Time(u32),
}

/// Tentpole edge case: a sleeping core whose `next_wake` is far away
/// gets its in-flight load cancelled by the other core's leapfrog — the
/// push channel must re-schedule it immediately, at the exact cycle the
/// per-cycle engine's memo check would have seen the cancellation.
#[test]
fn leapfrog_cancellation_mid_sleep_matches_lockstep() {
    let cfg = SystemConfig::tiny();
    // Each core holds at most `l1_mshrs = 2` outstanding misses, so the
    // two young-timestamp cores together keep all `l2_mshrs = 4` shared
    // MSHRs full of speculative demand loads; the old-timestamp core's
    // bursts then arrive at a full L2 and must steal.
    let programs = vec![
        mshr_hammer(0, 40, 8, Pad::Seq(500)), // young ts, loads in flight early
        mshr_hammer(1, 40, 8, Pad::Time(25)), // old ts, bursts arrive late
        mshr_hammer(2, 40, 8, Pad::Seq(500)), // young ts, loads in flight early
    ];
    let (skip, lock) = pair(Scheme::ghost_minion(), cfg, programs);
    // The scenario must actually exercise the push channel: leapfrog
    // steals happened and cancelled loads were replayed by their cores.
    assert!(
        skip.mem_stats.get("leapfrogs") > 0,
        "scenario failed to provoke leapfrog steals"
    );
    let replays: u64 = skip.core_stats.iter().map(|s| s.load_replays).sum();
    assert!(
        replays > 0,
        "scenario failed to deliver a cancellation to a core"
    );
    assert_equivalent(&skip, &lock, "leapfrog mid-sleep");
}

/// All cores quiescent at once: every core chases dependent DRAM misses,
/// so whole stretches have no runnable core and the scheduler jumps the
/// clock. Idle stall-counter replay must keep statistics identical.
#[test]
fn all_cores_quiescent_clock_jumps_match_lockstep() {
    let cfg = SystemConfig::tiny();
    // Strided dependent chains: each load's address depends on the
    // previous value, defeating the prefetcher and overlapping nothing.
    let chase = |id: u64| {
        let mut a = Asm::new(format!("chase-{id}"));
        let base = 0x60_0000u64 + id * 0x10_0000;
        let n = 64u64;
        // next[i] = address of element (i*17 mod n), a permutation cycle.
        let words: Vec<u64> = (0..n).map(|i| base + 8 * ((i * 17) % n)).collect();
        a.data(DataSegment::words(base, &words));
        let (p, i, cnt) = (Reg::x(1), Reg::x(2), Reg::x(3));
        a.li(p, base as i64);
        a.li(i, 0);
        a.li(cnt, 200);
        let top = a.here();
        a.ld(p, p, 0); // serialised: address depends on loaded value
        a.addi(i, i, 1);
        a.bne(i, cnt, top);
        a.halt();
        a.assemble()
    };
    let programs = vec![chase(0), chase(1), chase(2)];
    let (skip, lock) = pair(Scheme::ghost_minion(), cfg, programs);
    assert_equivalent(&skip, &lock, "all-quiescent jumps");
}

/// Cores halting at very different times: the scheduler must drop each
/// halted core from the schedule and keep the survivors exact.
#[test]
fn staggered_halts_match_lockstep() {
    let cfg = SystemConfig::tiny();
    let programs = vec![
        mshr_hammer(0, 2, 4, Pad::Seq(0)),    // halts early
        mshr_hammer(1, 30, 4, Pad::Time(12)), // keeps running long after
    ];
    let (skip, lock) = pair(Scheme::ghost_minion(), cfg, programs);
    assert_equivalent(&skip, &lock, "staggered halts");
}

/// A single-core run must degenerate to the plain jump path (tick,
/// then hop straight to `next_wake`) with no multicore bookkeeping
/// visible in any statistic — across scheme families with different
/// stall shapes, including the STT taint gate whose delays are settled
/// lazily by visibility parking.
#[test]
fn single_core_degenerates_to_jump_path() {
    let cfg = SystemConfig::tiny();
    let mut strict = Scheme::ghost_minion();
    strict.strict_fu_order = true;
    for scheme in [
        Scheme::unsafe_baseline(),
        Scheme::ghost_minion(),
        Scheme::invisispec_future(),
        Scheme::stt_spectre(),
        strict,
    ] {
        let (skip, lock) = pair(scheme, cfg, vec![mshr_hammer(0, 20, 5, Pad::Seq(0))]);
        assert_equivalent(&skip, &lock, &format!("single-core/{}", scheme.name()));
    }
}
