//! Cross-crate integration: every mitigation scheme must be functionally
//! transparent — same architectural results, different timing only —
//! across the whole workload suite, and random programs.

use ghostminion_repro::core::{Machine, Scheme, SystemConfig};
use ghostminion_repro::isa::{Asm, DataSegment, Program, Reg};
use ghostminion_repro::workloads::{spec2006_analogs, Scale};
use proptest::prelude::*;

fn final_regs(scheme: Scheme, prog: &Program) -> Vec<u64> {
    let mut m = Machine::new(scheme, SystemConfig::tiny(), vec![prog.clone()]);
    m.run(50_000_000);
    (0..32).map(|i| m.core(0).reg(Reg::x(i))).collect()
}

#[test]
fn spec_analogs_agree_across_all_schemes() {
    // Architectural accumulator values must match between the unsafe
    // baseline and every protected scheme.
    for w in spec2006_analogs(Scale::Test)
        .into_iter()
        .filter(|w| ["gamess", "hmmer", "bzip2", "omnetpp"].contains(&w.name))
    {
        let reference = final_regs(Scheme::unsafe_baseline(), &w.program);
        for scheme in Scheme::figure_lineup().into_iter().skip(1) {
            assert_eq!(
                final_regs(scheme, &w.program),
                reference,
                "{} diverges under {}",
                w.name,
                scheme.name()
            );
        }
    }
}

/// Builds a random but always-terminating program: straight-line ALU ops
/// over a seeded register file, a couple of counted loops, loads and
/// stores into a private arena, and data-dependent (but bounded)
/// branches.
fn random_program(ops: &[u8], seeds: &[u64]) -> Program {
    let mut a = Asm::new("random");
    let arena = 0x20_0000u64;
    let words: Vec<u64> = seeds.iter().cycle().take(64).copied().collect();
    a.data(DataSegment::words(arena, &words));
    a.li(Reg::x(20), arena as i64);
    for (i, &s) in seeds.iter().take(8).enumerate() {
        a.li(Reg::x(1 + i as u8), (s & 0xffff) as i64);
    }
    for (k, &op) in ops.iter().enumerate() {
        let rd = Reg::x(1 + (op % 8));
        let rs1 = Reg::x(1 + ((op >> 3) % 8));
        let rs2 = Reg::x(1 + ((op >> 5) % 4));
        match op % 11 {
            0 => a.add(rd, rs1, rs2),
            1 => a.sub(rd, rs1, rs2),
            2 => a.xor(rd, rs1, rs2),
            3 => a.mul(rd, rs1, rs2),
            4 => a.div(rd, rs1, rs2),
            5 => a.slli(rd, rs1, (op % 7) as i64),
            6 => {
                // Bounded load from the arena.
                a.andi(Reg::x(9), rs1, 0x1f8);
                a.add(Reg::x(9), Reg::x(9), Reg::x(20));
                a.ld(rd, Reg::x(9), 0);
            }
            7 => {
                a.andi(Reg::x(9), rs1, 0x1f8);
                a.add(Reg::x(9), Reg::x(9), Reg::x(20));
                a.st(rs2, Reg::x(9), 0);
            }
            8 => {
                // Data-dependent branch over one skipped instruction.
                let skip = a.label();
                a.andi(Reg::x(9), rs1, 1 + (k as i64 % 3));
                a.beq(Reg::x(9), Reg::ZERO, skip);
                a.addi(rd, rd, 1);
                a.bind(skip);
            }
            9 => a.fadd(Reg::f(1), rs1, rs2),
            _ => a.rem(rd, rs1, rs2),
        }
    }
    // A counted loop to exercise the predictor and squash paths.
    let (i, n) = (Reg::x(10), Reg::x(11));
    a.li(i, 0);
    a.li(n, 40);
    let top = a.here();
    a.addi(Reg::x(1), Reg::x(1), 3);
    a.addi(i, i, 1);
    a.bne(i, n, top);
    a.halt();
    a.assemble()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random programs produce identical architectural state under the
    /// unsafe baseline and under GhostMinion: the mitigation never
    /// changes semantics.
    #[test]
    fn random_programs_are_scheme_transparent(
        ops in proptest::collection::vec(any::<u8>(), 10..80),
        seeds in proptest::collection::vec(1u64..u64::MAX, 8),
    ) {
        let prog = random_program(&ops, &seeds);
        let reference = final_regs(Scheme::unsafe_baseline(), &prog);
        for scheme in [
            Scheme::ghost_minion(),
            Scheme::invisispec_future(),
            Scheme::stt_spectre(),
            Scheme::muontrap_flush(),
        ] {
            prop_assert_eq!(
                final_regs(scheme, &prog).clone(),
                reference.clone(),
                "scheme {} diverged", scheme.name()
            );
        }
    }

    /// Under GhostMinion, the Strictness-Order auditor must find no
    /// backwards-in-time flow from squashed to committed instructions,
    /// for any random program.
    #[test]
    fn random_programs_never_violate_strictness_order(
        ops in proptest::collection::vec(any::<u8>(), 10..80),
        seeds in proptest::collection::vec(1u64..u64::MAX, 8),
    ) {
        let prog = random_program(&ops, &seeds);
        let mut m = Machine::new(
            Scheme::ghost_minion(),
            SystemConfig::tiny(),
            vec![prog],
        );
        m.enable_auditor();
        m.run(50_000_000);
        let violations = m.auditor().expect("enabled").violations();
        prop_assert!(violations.is_empty(), "violations: {:?}", violations);
    }
}
