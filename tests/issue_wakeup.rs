//! Issue-wakeup equivalence: the event-driven issue stage (per-physical-
//! register wakeup lists feeding a maintained ready set) must be
//! indistinguishable from the linear IQ scan it replaced — same final
//! cycle count, same per-core pipeline statistics (including the §4.9
//! `strict_fu_delays` accounting the scan performs on *waiting*
//! non-pipelined entries), same memory counters, same architectural
//! state. [`IssueMode::Scan`] keeps the old scan alive as the oracle,
//! exactly as `run_lockstep` does for cycle skipping.

use ghostminion_repro::core::{Machine, MachineResult, Scheme, SystemConfig};
use ghostminion_repro::isa::{Asm, DataSegment, Program, Reg};
use ghostminion_repro::sim::IssueMode;
use ghostminion_repro::workloads::{Scale, Suite, WorkloadSet};
use proptest::prelude::*;

/// Runs the same machine twice: the production configuration (event
/// wakeup + cycle skipping) against the doubly-conservative oracle
/// (linear scan + lockstep), so any interaction between the two
/// mechanisms diverges here too.
fn pair(
    scheme: Scheme,
    cfg: SystemConfig,
    programs: Vec<Program>,
) -> (MachineResult, MachineResult) {
    let event = Machine::new(scheme, cfg, programs.clone()).run(cfg.max_cycles);
    let mut oracle = Machine::new(scheme, cfg, programs);
    oracle.set_issue_mode(IssueMode::Scan);
    let scan = oracle.run_lockstep(cfg.max_cycles);
    (event, scan)
}

fn assert_equivalent(scheme: Scheme, cfg: SystemConfig, programs: Vec<Program>, label: &str) {
    let (event, scan) = pair(scheme, cfg, programs);
    assert_eq!(event.cycles, scan.cycles, "{label}: cycle counts diverge");
    assert_eq!(
        event.core_stats, scan.core_stats,
        "{label}: per-core stats diverge"
    );
    assert_eq!(
        event.mem_stats, scan.mem_stats,
        "{label}: memory counters diverge"
    );
}

/// Real workloads through the real Table 1 machine, across scheme
/// families with very different issue-stage behaviour (plain OoO,
/// commit-time exposure loads, taint-gated issue, §4.9 strict FU
/// scheduling — whose blocked-entry accounting is the subtlest part of
/// the scan to reproduce).
#[test]
fn real_workloads_match_linear_scan_on_micro2021() {
    let mut strict = Scheme::ghost_minion();
    strict.strict_fu_order = true;
    let schemes = [
        Scheme::unsafe_baseline(),
        Scheme::ghost_minion(),
        Scheme::invisispec_future(),
        Scheme::stt_spectre(),
        strict,
    ];
    let set = WorkloadSet::new(Suite::Spec2006, Scale::Test);
    let unit = set
        .units
        .iter()
        .find(|u| u.name == "bzip2")
        .expect("bzip2 analog exists");
    for scheme in schemes {
        assert_equivalent(
            scheme,
            SystemConfig::micro2021(),
            unit.programs.clone(),
            &format!("bzip2/{}", scheme.name()),
        );
    }
}

/// The multicore path: wakeup lists are per core, and the quiescent-tick
/// memo (which the event engine leans on) must stay bit-identical under
/// cross-core cancellations.
#[test]
fn multicore_parsec_matches_linear_scan() {
    let set = WorkloadSet::new(Suite::Parsec, Scale::Test);
    let unit = &set.units[0];
    assert!(unit.programs.len() > 1, "parsec units are multi-threaded");
    assert_equivalent(
        Scheme::ghost_minion(),
        SystemConfig::micro2021(),
        unit.programs.clone(),
        &format!("{}/GhostMinion", unit.name),
    );
}

/// Squash recovery: a tight mispredicting loop with dependent divides
/// exercises wakeup-list cleanup (unrenamed registers, truncated ready
/// and non-pipelined lists) thousands of times.
#[test]
fn squash_heavy_loop_matches_linear_scan() {
    let mut a = Asm::new("squashy");
    let (i, n, v) = (Reg::x(1), Reg::x(2), Reg::x(3));
    a.li(i, 0);
    a.li(n, 400);
    let top = a.here();
    a.andi(v, i, 3);
    let skip = a.label();
    a.bne(v, Reg::ZERO, skip); // data-dependent, frequently mispredicted
    a.div(Reg::x(4), n, Reg::x(5)); // wrong-path divides wait in the IQ
    a.mul(Reg::x(5), Reg::x(4), v);
    a.bind(skip);
    a.addi(i, i, 1);
    a.bne(i, n, top);
    a.halt();
    let prog = a.assemble();
    let mut strict = Scheme::ghost_minion();
    strict.strict_fu_order = true;
    for scheme in [Scheme::unsafe_baseline(), strict] {
        assert_equivalent(
            scheme,
            SystemConfig::tiny(),
            vec![prog.clone()],
            &format!("squashy/{}", scheme.name()),
        );
    }
}

/// Same generator as the cycle-skipping suite: bounded loads and stores,
/// data-dependent branches, divides (non-pipelined FU occupancy), and a
/// final counted loop.
fn random_program(ops: &[u8], seeds: &[u64]) -> Program {
    let mut a = Asm::new("random");
    let arena = 0x20_0000u64;
    let words: Vec<u64> = seeds.iter().cycle().take(64).copied().collect();
    a.data(DataSegment::words(arena, &words));
    a.li(Reg::x(20), arena as i64);
    for (i, &s) in seeds.iter().take(8).enumerate() {
        a.li(Reg::x(1 + i as u8), (s & 0xffff) as i64);
    }
    for (k, &op) in ops.iter().enumerate() {
        let rd = Reg::x(1 + (op % 8));
        let rs1 = Reg::x(1 + ((op >> 3) % 8));
        let rs2 = Reg::x(1 + ((op >> 5) % 4));
        match op % 11 {
            0 => a.add(rd, rs1, rs2),
            1 => a.sub(rd, rs1, rs2),
            2 => a.xor(rd, rs1, rs2),
            3 => a.mul(rd, rs1, rs2),
            4 => a.div(rd, rs1, rs2),
            5 => a.slli(rd, rs1, (op % 7) as i64),
            6 => {
                a.andi(Reg::x(9), rs1, 0x1f8);
                a.add(Reg::x(9), Reg::x(9), Reg::x(20));
                a.ld(rd, Reg::x(9), 0);
            }
            7 => {
                a.andi(Reg::x(9), rs1, 0x1f8);
                a.add(Reg::x(9), Reg::x(9), Reg::x(20));
                a.st(rs2, Reg::x(9), 0);
            }
            8 => {
                let skip = a.label();
                a.andi(Reg::x(9), rs1, 1 + (k as i64 % 3));
                a.beq(Reg::x(9), Reg::ZERO, skip);
                a.addi(rd, rd, 1);
                a.bind(skip);
            }
            9 => a.fadd(Reg::f(1), rs1, rs2),
            _ => a.rem(rd, rs1, rs2),
        }
    }
    let (i, n) = (Reg::x(10), Reg::x(11));
    a.li(i, 0);
    a.li(n, 40);
    let top = a.here();
    a.addi(Reg::x(1), Reg::x(1), 3);
    a.addi(i, i, 1);
    a.bne(i, n, top);
    a.halt();
    a.assemble()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: for any program, wakeup-list issue never changes
    /// `MachineResult.cycles` (nor any statistic) under any scheme
    /// family, including §4.9 strict FU ordering, whose per-cycle
    /// strict-delay counters depend on *waiting* non-pipelined IQ
    /// entries the ready set alone would not visit.
    #[test]
    fn random_programs_match_linear_scan(
        ops in proptest::collection::vec(any::<u8>(), 10..80),
        seeds in proptest::collection::vec(1u64..u64::MAX, 8),
    ) {
        let prog = random_program(&ops, &seeds);
        let mut strict = Scheme::ghost_minion();
        strict.strict_fu_order = true;
        for scheme in [
            Scheme::unsafe_baseline(),
            Scheme::ghost_minion(),
            Scheme::invisispec_future(),
            Scheme::stt_spectre(),
            strict,
        ] {
            let cfg = SystemConfig::tiny();
            let (event, scan) = pair(scheme, cfg, vec![prog.clone()]);
            prop_assert_eq!(event.cycles, scan.cycles, "cycles diverge under {}", scheme.name());
            prop_assert_eq!(event.core_stats, scan.core_stats, "stats diverge under {}", scheme.name());
            prop_assert_eq!(event.mem_stats, scan.mem_stats, "mem counters diverge under {}", scheme.name());
        }
    }
}
