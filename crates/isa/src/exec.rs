//! Functional (value) semantics of the ALU and branch ops.
//!
//! The out-of-order core in `gm-sim` calls these from its execute stage;
//! keeping them here means the semantics are defined once, next to the
//! opcode definitions, and can be tested exhaustively without a pipeline.

use crate::Op;

fn f(bits: u64) -> f64 {
    f64::from_bits(bits)
}

fn b(v: f64) -> u64 {
    v.to_bits()
}

/// Evaluates a non-memory, non-control op over its operand values.
///
/// `a` and `b_` are the values of `rs1` and `rs2`; `imm` the immediate;
/// `cycle` the current cycle (for [`Op::Rdcycle`]). Division by zero
/// follows the RISC-V convention (`u64::MAX` quotient, dividend
/// remainder) so workloads cannot fault.
///
/// # Panics
///
/// Panics when called with a memory or control-flow op — those are
/// handled by the LSQ and branch unit, and routing them here is a core
/// bug.
pub fn alu_eval(op: Op, a: u64, b_: u64, imm: i64, cycle: u64) -> u64 {
    use Op::*;
    match op {
        Add => a.wrapping_add(b_),
        Sub => a.wrapping_sub(b_),
        And => a & b_,
        Or => a | b_,
        Xor => a ^ b_,
        Sll => a.wrapping_shl((b_ & 63) as u32),
        Srl => a.wrapping_shr((b_ & 63) as u32),
        Sra => ((a as i64).wrapping_shr((b_ & 63) as u32)) as u64,
        Slt => ((a as i64) < (b_ as i64)) as u64,
        Sltu => (a < b_) as u64,
        Addi => a.wrapping_add(imm as u64),
        Andi => a & imm as u64,
        Ori => a | imm as u64,
        Xori => a ^ imm as u64,
        Slli => a.wrapping_shl((imm & 63) as u32),
        Srli => a.wrapping_shr((imm & 63) as u32),
        Li => imm as u64,
        Mul => a.wrapping_mul(b_),
        Div => a.checked_div(b_).unwrap_or(u64::MAX),
        Rem => a.checked_rem(b_).unwrap_or(a),
        Fadd => b(f(a) + f(b_)),
        Fsub => b(f(a) - f(b_)),
        Fmul => b(f(a) * f(b_)),
        Fdiv => b(f(a) / f(b_)),
        Fsqrt => b(f(a).sqrt()),
        Rdcycle => cycle,
        Nop | Fence | Halt => 0,
        // Jumps write the link register: handled here so the execute stage
        // is uniform. `imm` is unused; the caller passes the return pc.
        Jal | Jalr => a, // caller passes return pc in `a` for link value
        Ld(_) | St(_) | Ll | Sc | Beq | Bne | Blt | Bge | Bltu => {
            panic!("alu_eval called on non-ALU op {op:?}")
        }
    }
}

/// Whether a conditional branch is taken, given its operand values.
///
/// # Panics
///
/// Panics for non-branch ops.
pub fn branch_taken(op: Op, a: u64, b_: u64) -> bool {
    match op {
        Op::Beq => a == b_,
        Op::Bne => a != b_,
        Op::Blt => (a as i64) < (b_ as i64),
        Op::Bge => (a as i64) >= (b_ as i64),
        Op::Bltu => a < b_,
        _ => panic!("branch_taken called on non-branch op {op:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic_wraps() {
        assert_eq!(alu_eval(Op::Add, u64::MAX, 1, 0, 0), 0);
        assert_eq!(alu_eval(Op::Sub, 0, 1, 0, 0), u64::MAX);
        assert_eq!(alu_eval(Op::Mul, 1 << 63, 2, 0, 0), 0);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(alu_eval(Op::Sll, 1, 64, 0, 0), 1); // 64 & 63 == 0
        assert_eq!(alu_eval(Op::Srl, 0x80, 4, 0, 0), 0x8);
        assert_eq!(alu_eval(Op::Sra, (-8i64) as u64, 1, 0, 0), (-4i64) as u64);
    }

    #[test]
    fn comparisons_signed_and_unsigned() {
        assert_eq!(alu_eval(Op::Slt, (-1i64) as u64, 0, 0, 0), 1);
        assert_eq!(alu_eval(Op::Sltu, (-1i64) as u64, 0, 0, 0), 0);
    }

    #[test]
    fn division_by_zero_follows_riscv() {
        assert_eq!(alu_eval(Op::Div, 42, 0, 0, 0), u64::MAX);
        assert_eq!(alu_eval(Op::Rem, 42, 0, 0, 0), 42);
        assert_eq!(alu_eval(Op::Div, 42, 5, 0, 0), 8);
        assert_eq!(alu_eval(Op::Rem, 42, 5, 0, 0), 2);
    }

    #[test]
    fn fp_roundtrips_through_bits() {
        let two = 2.0f64.to_bits();
        let three = 3.0f64.to_bits();
        assert_eq!(f64::from_bits(alu_eval(Op::Fadd, two, three, 0, 0)), 5.0);
        assert_eq!(f64::from_bits(alu_eval(Op::Fmul, two, three, 0, 0)), 6.0);
        assert_eq!(f64::from_bits(alu_eval(Op::Fdiv, three, two, 0, 0)), 1.5);
        assert_eq!(
            f64::from_bits(alu_eval(Op::Fsqrt, 4.0f64.to_bits(), 0, 0, 0)),
            2.0
        );
    }

    #[test]
    fn rdcycle_returns_cycle() {
        assert_eq!(alu_eval(Op::Rdcycle, 0, 0, 0, 1234), 1234);
    }

    #[test]
    fn immediates() {
        assert_eq!(alu_eval(Op::Li, 0, 0, -7, 0), (-7i64) as u64);
        assert_eq!(alu_eval(Op::Addi, 10, 0, -3, 0), 7);
        assert_eq!(alu_eval(Op::Slli, 1, 0, 12, 0), 4096);
    }

    #[test]
    fn branch_conditions() {
        assert!(branch_taken(Op::Beq, 5, 5));
        assert!(!branch_taken(Op::Beq, 5, 6));
        assert!(branch_taken(Op::Bne, 5, 6));
        assert!(branch_taken(Op::Blt, (-1i64) as u64, 0));
        assert!(!branch_taken(Op::Bltu, (-1i64) as u64, 0));
        assert!(branch_taken(Op::Bge, 3, 3));
    }

    #[test]
    #[should_panic(expected = "non-ALU")]
    fn alu_eval_rejects_loads() {
        let _ = alu_eval(Op::Ld(crate::MemSize::B8), 0, 0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "non-branch")]
    fn branch_taken_rejects_alu_ops() {
        let _ = branch_taken(Op::Add, 0, 0);
    }
}
