//! A small assembler DSL for building [`Program`]s in Rust code.
//!
//! Labels are created with [`Asm::label`], placed with [`Asm::bind`], and
//! may be referenced before they are bound; [`Asm::assemble`] patches all
//! forward references and validates the result.
//!
//! # Examples
//!
//! ```
//! use gm_isa::{Asm, Reg};
//!
//! let mut a = Asm::new("count-to-ten");
//! let (x1, x2) = (Reg::x(1), Reg::x(2));
//! a.li(x1, 0);
//! a.li(x2, 10);
//! let top = a.label();
//! a.bind(top);
//! a.addi(x1, x1, 1);
//! a.bne(x1, x2, top);
//! a.halt();
//! let prog = a.assemble();
//! assert_eq!(prog.len(), 5);
//! ```

use crate::{DataSegment, Inst, MemSize, Op, Program, Reg};

/// An opaque label handle; create with [`Asm::label`], place with
/// [`Asm::bind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builder for [`Program`]s. See the module docs for an example.
#[derive(Debug)]
pub struct Asm {
    insts: Vec<Inst>,
    // One entry per label: Some(pc) once bound.
    labels: Vec<Option<u64>>,
    // (inst index, label) pairs to patch at assemble time.
    fixups: Vec<(usize, Label)>,
    data: Vec<DataSegment>,
    init_regs: Vec<(Reg, u64)>,
    name: String,
}

impl Asm {
    /// Starts a new program with the given report name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            insts: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            data: Vec::new(),
            init_regs: Vec::new(),
            name: name.into(),
        }
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.insts.len() as u64);
    }

    /// Creates a label bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Current instruction index (the pc the next emitted instruction will
    /// occupy).
    pub fn pc(&self) -> u64 {
        self.insts.len() as u64
    }

    /// Adds an initial-memory segment.
    pub fn data(&mut self, seg: DataSegment) {
        self.data.push(seg);
    }

    /// Sets an initial register value.
    pub fn init(&mut self, reg: Reg, value: u64) {
        self.init_regs.push((reg, value));
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    fn emit_branch(&mut self, op: Op, rs1: Reg, rs2: Reg, target: Label) {
        self.fixups.push((self.insts.len(), target));
        self.insts.push(Inst::new(op, Reg::ZERO, rs1, rs2, 0));
    }

    /// Finalises the program, patching label references.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label is unbound, or if validation finds a
    /// control-flow target out of range.
    pub fn assemble(self) -> Program {
        let Asm {
            mut insts,
            labels,
            fixups,
            data,
            init_regs,
            name,
        } = self;
        for (idx, label) in fixups {
            let target = labels[label.0]
                .unwrap_or_else(|| panic!("label {label:?} referenced but never bound"));
            insts[idx].imm = target as i64;
        }
        let prog = Program {
            insts,
            data,
            init_regs,
            name,
        };
        if let Err(i) = prog.validate() {
            panic!("instruction {i} has an out-of-range control-flow target");
        }
        prog
    }

    // ---- integer ALU ----

    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::new(Op::Add, rd, rs1, rs2, 0));
    }
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::new(Op::Sub, rd, rs1, rs2, 0));
    }
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::new(Op::And, rd, rs1, rs2, 0));
    }
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::new(Op::Or, rd, rs1, rs2, 0));
    }
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::new(Op::Xor, rd, rs1, rs2, 0));
    }
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::new(Op::Sll, rd, rs1, rs2, 0));
    }
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::new(Op::Srl, rd, rs1, rs2, 0));
    }
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::new(Op::Slt, rd, rs1, rs2, 0));
    }
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::new(Op::Sltu, rd, rs1, rs2, 0));
    }
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Inst::new(Op::Addi, rd, rs1, Reg::ZERO, imm));
    }
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Inst::new(Op::Andi, rd, rs1, Reg::ZERO, imm));
    }
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Inst::new(Op::Ori, rd, rs1, Reg::ZERO, imm));
    }
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Inst::new(Op::Xori, rd, rs1, Reg::ZERO, imm));
    }
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Inst::new(Op::Slli, rd, rs1, Reg::ZERO, imm));
    }
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.emit(Inst::new(Op::Srli, rd, rs1, Reg::ZERO, imm));
    }
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.emit(Inst::new(Op::Li, rd, Reg::ZERO, Reg::ZERO, imm));
    }
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    // ---- multiply / divide ----

    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::new(Op::Mul, rd, rs1, rs2, 0));
    }
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::new(Op::Div, rd, rs1, rs2, 0));
    }
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::new(Op::Rem, rd, rs1, rs2, 0));
    }

    // ---- floating point ----

    pub fn fadd(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::new(Op::Fadd, rd, rs1, rs2, 0));
    }
    pub fn fsub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::new(Op::Fsub, rd, rs1, rs2, 0));
    }
    pub fn fmul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::new(Op::Fmul, rd, rs1, rs2, 0));
    }
    pub fn fdiv(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::new(Op::Fdiv, rd, rs1, rs2, 0));
    }
    pub fn fsqrt(&mut self, rd: Reg, rs1: Reg) {
        self.emit(Inst::new(Op::Fsqrt, rd, rs1, Reg::ZERO, 0));
    }

    // ---- memory ----

    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.emit(Inst::new(Op::Ld(MemSize::B8), rd, base, Reg::ZERO, offset));
    }
    pub fn ld_sized(&mut self, size: MemSize, rd: Reg, base: Reg, offset: i64) {
        self.emit(Inst::new(Op::Ld(size), rd, base, Reg::ZERO, offset));
    }
    pub fn st(&mut self, src: Reg, base: Reg, offset: i64) {
        self.emit(Inst::new(Op::St(MemSize::B8), Reg::ZERO, base, src, offset));
    }
    pub fn st_sized(&mut self, size: MemSize, src: Reg, base: Reg, offset: i64) {
        self.emit(Inst::new(Op::St(size), Reg::ZERO, base, src, offset));
    }
    pub fn ll(&mut self, rd: Reg, base: Reg) {
        self.emit(Inst::new(Op::Ll, rd, base, Reg::ZERO, 0));
    }
    pub fn sc(&mut self, rd: Reg, src: Reg, base: Reg) {
        self.emit(Inst::new(Op::Sc, rd, base, src, 0));
    }

    // ---- control flow ----

    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.emit_branch(Op::Beq, rs1, rs2, target);
    }
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.emit_branch(Op::Bne, rs1, rs2, target);
    }
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.emit_branch(Op::Blt, rs1, rs2, target);
    }
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.emit_branch(Op::Bge, rs1, rs2, target);
    }
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.emit_branch(Op::Bltu, rs1, rs2, target);
    }
    pub fn jal(&mut self, rd: Reg, target: Label) {
        self.fixups.push((self.insts.len(), target));
        self.insts
            .push(Inst::new(Op::Jal, rd, Reg::ZERO, Reg::ZERO, 0));
    }
    pub fn jalr(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.emit(Inst::new(Op::Jalr, rd, base, Reg::ZERO, offset));
    }
    /// Unconditional jump (jal with discarded link).
    pub fn j(&mut self, target: Label) {
        self.jal(Reg::ZERO, target);
    }

    // ---- miscellaneous ----

    pub fn rdcycle(&mut self, rd: Reg) {
        self.emit(Inst::new(Op::Rdcycle, rd, Reg::ZERO, Reg::ZERO, 0));
    }
    pub fn nop(&mut self) {
        self.emit(Inst::nop());
    }
    pub fn fence(&mut self) {
        self.emit(Inst::new(Op::Fence, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0));
    }
    pub fn halt(&mut self) {
        self.emit(Inst::new(Op::Halt, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new("t");
        let fwd = a.label();
        a.j(fwd); // forward reference
        let back = a.here();
        a.bind(fwd);
        a.beq(Reg::x(1), Reg::x(2), back); // backward reference
        a.halt();
        let p = a.assemble();
        assert_eq!(p.insts[0].imm, 1); // fwd bound at pc 1
        assert_eq!(p.insts[1].imm, 1); // back bound at pc 1
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics_at_assemble() {
        let mut a = Asm::new("t");
        let l = a.label();
        a.j(l);
        let _ = a.assemble();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new("t");
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn data_and_init_regs_carried_through() {
        let mut a = Asm::new("t");
        a.data(DataSegment::words(0x1000, &[1, 2, 3]));
        a.init(Reg::x(5), 0x1000);
        a.halt();
        let p = a.assemble();
        assert_eq!(p.data.len(), 1);
        assert_eq!(p.init_regs, vec![(Reg::x(5), 0x1000)]);
        assert_eq!(p.name, "t");
    }

    #[test]
    fn pc_tracks_emission() {
        let mut a = Asm::new("t");
        assert_eq!(a.pc(), 0);
        a.nop();
        a.nop();
        assert_eq!(a.pc(), 2);
    }

    #[test]
    fn store_encodes_data_in_rs2() {
        let mut a = Asm::new("t");
        a.st(Reg::x(3), Reg::x(4), 8);
        let p = a.assemble();
        assert_eq!(p.insts[0].rs2, Reg::x(3));
        assert_eq!(p.insts[0].rs1, Reg::x(4));
        assert_eq!(p.insts[0].imm, 8);
    }
}
