//! Opcodes and their static properties (functional-unit class, latency,
//! pipelining), mirroring the gem5 O3 configuration in the paper's Table 1.

use std::fmt;

/// Access width of a memory operation, in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemSize {
    B1,
    B2,
    B4,
    B8,
}

impl MemSize {
    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
            MemSize::B8 => 8,
        }
    }
}

/// Operation code.
///
/// Every op reads up to two registers (`rs1`, `rs2`), an immediate, and
/// writes at most one destination (`rd`). Branch targets are absolute
/// instruction indices carried in the immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    // ---- integer ALU (single-cycle, pipelined) ----
    /// `rd = rs1 + rs2`
    Add,
    /// `rd = rs1 - rs2`
    Sub,
    /// `rd = rs1 & rs2`
    And,
    /// `rd = rs1 | rs2`
    Or,
    /// `rd = rs1 ^ rs2`
    Xor,
    /// `rd = rs1 << (rs2 & 63)`
    Sll,
    /// `rd = rs1 >> (rs2 & 63)` (logical)
    Srl,
    /// `rd = (rs1 as i64) >> (rs2 & 63)`
    Sra,
    /// `rd = (rs1 as i64) < (rs2 as i64)`
    Slt,
    /// `rd = rs1 < rs2` (unsigned)
    Sltu,
    /// `rd = rs1 + imm`
    Addi,
    /// `rd = rs1 & imm`
    Andi,
    /// `rd = rs1 | imm`
    Ori,
    /// `rd = rs1 ^ imm`
    Xori,
    /// `rd = rs1 << imm`
    Slli,
    /// `rd = rs1 >> imm` (logical)
    Srli,
    /// `rd = imm` (load immediate)
    Li,

    // ---- integer multiply/divide (Mult/Div ALU pool) ----
    /// `rd = rs1 * rs2`; 3-cycle, pipelined.
    Mul,
    /// `rd = rs1 / rs2` (unsigned; `u64::MAX` on divide-by-zero);
    /// 12-cycle, **non-pipelined** — the SpectreRewind contention unit.
    Div,
    /// `rd = rs1 % rs2` (unsigned; `rs1` on divide-by-zero); non-pipelined.
    Rem,

    // ---- floating point (values are f64 bit patterns) ----
    /// `rd = rs1 +. rs2`; 4-cycle, pipelined.
    Fadd,
    /// `rd = rs1 -. rs2`; 4-cycle, pipelined.
    Fsub,
    /// `rd = rs1 *. rs2`; 4-cycle, pipelined.
    Fmul,
    /// `rd = rs1 /. rs2`; 20-cycle, **non-pipelined**.
    Fdiv,
    /// `rd = sqrt(rs1)`; 24-cycle, **non-pipelined**.
    Fsqrt,

    // ---- memory ----
    /// `rd = mem[rs1 + imm]` (zero-extended).
    Ld(MemSize),
    /// `mem[rs1 + imm] = rs2` (low bytes).
    St(MemSize),
    /// Load-linked: as `Ld(B8)`, and sets the reservation for the line.
    Ll,
    /// Store-conditional: if the reservation is intact, stores `rs2` and
    /// writes 0 to `rd`; otherwise writes 1 and stores nothing.
    Sc,

    // ---- control flow; target = absolute instruction index in `imm` ----
    /// Branch if `rs1 == rs2`.
    Beq,
    /// Branch if `rs1 != rs2`.
    Bne,
    /// Branch if `(rs1 as i64) < (rs2 as i64)`.
    Blt,
    /// Branch if `(rs1 as i64) >= (rs2 as i64)`.
    Bge,
    /// Branch if `rs1 < rs2` (unsigned).
    Bltu,
    /// Unconditional jump to `imm`; `rd = return pc + 1`.
    Jal,
    /// Indirect jump to instruction index `rs1 + imm`; `rd = return pc + 1`.
    Jalr,

    // ---- miscellaneous ----
    /// `rd = current cycle` — the attacker's timer (cf. `rdtsc` in §1.1).
    Rdcycle,
    /// No operation.
    Nop,
    /// Fence: does not issue until it is the oldest instruction, and
    /// blocks all younger instructions from issuing until it commits
    /// (lfence-style serialisation).
    Fence,
    /// Stop the hart; the simulator ends when `Halt` commits.
    Halt,
}

/// Functional-unit class an op issues to (Table 1: 6 Int ALUs, 4 FP ALUs,
/// 2 Mult/Div ALUs, plus cache ports for memory ops).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Single-cycle integer ALU; also executes branches and `rdcycle`.
    IntAlu,
    /// Pipelined integer multiplier (Mult/Div pool).
    IntMult,
    /// Non-pipelined integer divider (Mult/Div pool).
    IntDiv,
    /// Pipelined FP add/mul unit.
    FpAlu,
    /// Non-pipelined FP divider (Mult/Div pool).
    FpDiv,
    /// Non-pipelined FP square root (Mult/Div pool).
    FpSqrt,
    /// Cache read port.
    MemRead,
    /// Cache write port.
    MemWrite,
}

impl Op {
    /// Functional-unit class this op executes on.
    pub fn fu_class(self) -> FuClass {
        use Op::*;
        match self {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Addi | Andi | Ori
            | Xori | Slli | Srli | Li | Beq | Bne | Blt | Bge | Bltu | Jal | Jalr | Rdcycle
            | Nop | Fence | Halt => FuClass::IntAlu,
            Mul => FuClass::IntMult,
            Div | Rem => FuClass::IntDiv,
            Fadd | Fsub | Fmul => FuClass::FpAlu,
            Fdiv => FuClass::FpDiv,
            Fsqrt => FuClass::FpSqrt,
            Ld(_) | Ll => FuClass::MemRead,
            St(_) | Sc => FuClass::MemWrite,
        }
    }

    /// Execution latency in cycles, excluding memory time for loads/stores
    /// (latencies follow the gem5 O3 defaults the paper's setup uses).
    pub fn latency(self) -> u64 {
        match self.fu_class() {
            FuClass::IntAlu => 1,
            FuClass::IntMult => 3,
            FuClass::IntDiv => 12,
            FuClass::FpAlu => 4,
            FuClass::FpDiv => 20,
            FuClass::FpSqrt => 24,
            FuClass::MemRead | FuClass::MemWrite => 1, // address generation
        }
    }

    /// Whether the functional unit is pipelined. Non-pipelined units are
    /// occupied for the whole latency — the structural hazard exploited by
    /// SpectreRewind and scheduled in strictness order by §4.9.
    pub fn is_pipelined(self) -> bool {
        !matches!(
            self.fu_class(),
            FuClass::IntDiv | FuClass::FpDiv | FuClass::FpSqrt
        )
    }

    /// Returns `true` for loads (including load-linked).
    pub fn is_load(self) -> bool {
        matches!(self, Op::Ld(_) | Op::Ll)
    }

    /// Returns `true` for stores (including store-conditional).
    pub fn is_store(self) -> bool {
        matches!(self, Op::St(_) | Op::Sc)
    }

    /// Returns `true` for any memory operation.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Returns `true` for conditional branches.
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu)
    }

    /// Returns `true` for any control-flow op (branches and jumps).
    pub fn is_ctrl(self) -> bool {
        self.is_cond_branch() || matches!(self, Op::Jal | Op::Jalr)
    }

    /// Returns `true` if the op architecturally writes `rd`.
    pub fn writes_rd(self) -> bool {
        use Op::*;
        !matches!(
            self,
            St(_) | Beq | Bne | Blt | Bge | Bltu | Nop | Fence | Halt
        )
    }

    /// Returns `true` if the op reads `rs1`.
    pub fn reads_rs1(self) -> bool {
        use Op::*;
        !matches!(self, Li | Jal | Rdcycle | Nop | Fence | Halt)
    }

    /// Returns `true` if the op reads `rs2`.
    pub fn reads_rs2(self) -> bool {
        use Op::*;
        matches!(
            self,
            Add | Sub
                | And
                | Or
                | Xor
                | Sll
                | Srl
                | Sra
                | Slt
                | Sltu
                | Mul
                | Div
                | Rem
                | Fadd
                | Fsub
                | Fmul
                | Fdiv
                | St(_)
                | Sc
                | Beq
                | Bne
                | Blt
                | Bge
                | Bltu
        )
    }

    /// Memory access width, if this is a memory op.
    pub fn mem_size(self) -> Option<MemSize> {
        match self {
            Op::Ld(s) | Op::St(s) => Some(s),
            Op::Ll | Op::Sc => Some(MemSize::B8),
            _ => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Op::Ld(s) => return write!(f, "ld{}", s.bytes()),
            Op::St(s) => return write!(f, "st{}", s.bytes()),
            other => format!("{other:?}").to_lowercase(),
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_classification() {
        assert!(Op::Ld(MemSize::B8).is_load());
        assert!(Op::Ll.is_load());
        assert!(Op::St(MemSize::B1).is_store());
        assert!(Op::Sc.is_store());
        assert!(!Op::Add.is_mem());
        assert_eq!(Op::Ll.mem_size(), Some(MemSize::B8));
        assert_eq!(Op::Add.mem_size(), None);
    }

    #[test]
    fn ctrl_classification() {
        assert!(Op::Beq.is_cond_branch());
        assert!(Op::Jalr.is_ctrl());
        assert!(!Op::Jal.is_cond_branch());
        assert!(!Op::Add.is_ctrl());
    }

    #[test]
    fn nonpipelined_units_match_paper() {
        // §4.9: "functional units that are not pipelined (in our case, the
        // IntDiv, FloatDiv, and FloatSqrt units)".
        assert!(!Op::Div.is_pipelined());
        assert!(!Op::Rem.is_pipelined());
        assert!(!Op::Fdiv.is_pipelined());
        assert!(!Op::Fsqrt.is_pipelined());
        assert!(Op::Mul.is_pipelined());
        assert!(Op::Add.is_pipelined());
        assert!(Op::Fadd.is_pipelined());
    }

    #[test]
    fn register_read_write_sets() {
        assert!(Op::Add.writes_rd() && Op::Add.reads_rs1() && Op::Add.reads_rs2());
        assert!(Op::Addi.reads_rs1() && !Op::Addi.reads_rs2());
        assert!(!Op::St(MemSize::B8).writes_rd());
        assert!(Op::St(MemSize::B8).reads_rs2()); // store data
        assert!(!Op::Li.reads_rs1());
        assert!(Op::Jalr.reads_rs1() && Op::Jalr.writes_rd());
        assert!(!Op::Beq.writes_rd());
        assert!(Op::Sc.writes_rd()); // success flag
    }

    #[test]
    fn latencies_are_positive_and_divides_are_long() {
        assert_eq!(Op::Add.latency(), 1);
        assert!(Op::Div.latency() > Op::Mul.latency());
        assert!(Op::Fsqrt.latency() >= Op::Fdiv.latency());
    }

    #[test]
    fn mem_size_bytes() {
        assert_eq!(MemSize::B1.bytes(), 1);
        assert_eq!(MemSize::B8.bytes(), 8);
    }

    #[test]
    fn display_is_lowercase_mnemonic() {
        assert_eq!(Op::Add.to_string(), "add");
        assert_eq!(Op::Ld(MemSize::B4).to_string(), "ld4");
        assert_eq!(Op::St(MemSize::B8).to_string(), "st8");
        assert_eq!(Op::Fsqrt.to_string(), "fsqrt");
    }
}
