//! A single decoded instruction.

use crate::{Op, Reg};
use std::fmt;

/// A decoded instruction: opcode, register operands and immediate.
///
/// Fields that an opcode does not use are ignored (conventionally
/// [`Reg::ZERO`] / 0). Branch and jump targets are absolute instruction
/// indices carried in `imm`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Inst {
    pub op: Op,
    pub rd: Reg,
    pub rs1: Reg,
    pub rs2: Reg,
    pub imm: i64,
}

impl Inst {
    /// Builds an instruction; prefer the [`crate::Asm`] DSL in workload
    /// code.
    pub fn new(op: Op, rd: Reg, rs1: Reg, rs2: Reg, imm: i64) -> Self {
        Self {
            op,
            rd,
            rs1,
            rs2,
            imm,
        }
    }

    /// A no-op instruction.
    pub fn nop() -> Self {
        Self::new(Op::Nop, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0)
    }

    /// The destination register, if this op writes one. The zero register
    /// never counts as a real destination.
    pub fn dest(&self) -> Option<Reg> {
        if self.op.writes_rd() && !self.rd.is_zero() {
            Some(self.rd)
        } else {
            None
        }
    }

    /// Source registers actually read by this op (zero register excluded —
    /// it is constant and creates no dependence).
    pub fn sources(&self) -> impl Iterator<Item = Reg> {
        let s1 = (self.op.reads_rs1() && !self.rs1.is_zero()).then_some(self.rs1);
        let s2 = (self.op.reads_rs2() && !self.rs2.is_zero()).then_some(self.rs2);
        s1.into_iter().chain(s2)
    }

    /// The branch/jump target as an instruction index, for direct
    /// control-flow ops.
    pub fn direct_target(&self) -> Option<u64> {
        if self.op.is_cond_branch() || self.op == Op::Jal {
            Some(self.imm as u64)
        } else {
            None
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Op::*;
        match self.op {
            Nop | Fence | Halt => write!(f, "{}", self.op),
            Li => write!(f, "li {}, {}", self.rd, self.imm),
            Rdcycle => write!(f, "rdcycle {}", self.rd),
            Ld(_) | Ll => write!(f, "{} {}, {}({})", self.op, self.rd, self.imm, self.rs1),
            St(_) | Sc => write!(f, "{} {}, {}({})", self.op, self.rs2, self.imm, self.rs1),
            Beq | Bne | Blt | Bge | Bltu => {
                write!(f, "{} {}, {}, @{}", self.op, self.rs1, self.rs2, self.imm)
            }
            Jal => write!(f, "jal {}, @{}", self.rd, self.imm),
            Jalr => write!(f, "jalr {}, {}({})", self.rd, self.imm, self.rs1),
            Addi | Andi | Ori | Xori | Slli | Srli => {
                write!(f, "{} {}, {}, {}", self.op, self.rd, self.rs1, self.imm)
            }
            _ => write!(f, "{} {}, {}, {}", self.op, self.rd, self.rs1, self.rs2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemSize;

    #[test]
    fn dest_excludes_zero_register_and_non_writers() {
        let add = Inst::new(Op::Add, Reg::x(1), Reg::x(2), Reg::x(3), 0);
        assert_eq!(add.dest(), Some(Reg::x(1)));
        let addz = Inst::new(Op::Add, Reg::ZERO, Reg::x(2), Reg::x(3), 0);
        assert_eq!(addz.dest(), None);
        let st = Inst::new(Op::St(MemSize::B8), Reg::ZERO, Reg::x(1), Reg::x(2), 0);
        assert_eq!(st.dest(), None);
    }

    #[test]
    fn sources_reflect_op_and_skip_zero() {
        let add = Inst::new(Op::Add, Reg::x(1), Reg::x(2), Reg::ZERO, 0);
        let srcs: Vec<Reg> = add.sources().collect();
        assert_eq!(srcs, vec![Reg::x(2)]);
        let li = Inst::new(Op::Li, Reg::x(1), Reg::ZERO, Reg::ZERO, 42);
        assert_eq!(li.sources().count(), 0);
    }

    #[test]
    fn direct_target_for_branches_and_jal_only() {
        let b = Inst::new(Op::Beq, Reg::ZERO, Reg::x(1), Reg::x(2), 17);
        assert_eq!(b.direct_target(), Some(17));
        let j = Inst::new(Op::Jal, Reg::x(1), Reg::ZERO, Reg::ZERO, 9);
        assert_eq!(j.direct_target(), Some(9));
        let jr = Inst::new(Op::Jalr, Reg::x(1), Reg::x(2), Reg::ZERO, 0);
        assert_eq!(jr.direct_target(), None);
    }

    #[test]
    fn display_formats() {
        let ld = Inst::new(Op::Ld(MemSize::B8), Reg::x(1), Reg::x(2), Reg::ZERO, 16);
        assert_eq!(ld.to_string(), "ld8 x1, 16(x2)");
        let b = Inst::new(Op::Bne, Reg::ZERO, Reg::x(1), Reg::x(2), 3);
        assert_eq!(b.to_string(), "bne x1, x2, @3");
    }
}
