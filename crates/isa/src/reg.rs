//! Architectural registers.

use std::fmt;

/// Number of architectural registers: 32 integer (`x0`–`x31`, with `x0`
/// hardwired to zero) followed by 32 floating-point (`f0`–`f31`).
pub const NUM_ARCH_REGS: usize = 64;

/// An architectural register.
///
/// A single flat namespace keeps the rename machinery simple: indices
/// 0–31 are the integer registers, 32–63 the floating-point registers.
/// Values are always 64-bit (`u64`); FP ops interpret them as `f64` bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The integer zero register; reads as 0, writes are discarded.
    pub const ZERO: Reg = Reg(0);

    /// Integer register `xN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn x(n: u8) -> Reg {
        assert!(n < 32, "integer register index out of range");
        Reg(n)
    }

    /// Floating-point register `fN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn f(n: u8) -> Reg {
        assert!(n < 32, "fp register index out of range");
        Reg(32 + n)
    }

    /// Returns `true` for the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` for floating-point registers.
    pub fn is_fp(self) -> bool {
        self.0 >= 32
    }

    /// Flat index into the architectural register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fp() {
            write!(f, "f{}", self.0 - 32)
        } else {
            write!(f, "x{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_map_to_flat_indices() {
        assert_eq!(Reg::x(5).index(), 5);
        assert_eq!(Reg::f(5).index(), 37);
        assert_eq!(Reg::ZERO, Reg::x(0));
    }

    #[test]
    fn classification() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::x(1).is_zero());
        assert!(Reg::f(0).is_fp());
        assert!(!Reg::x(31).is_fp());
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::x(7).to_string(), "x7");
        assert_eq!(Reg::f(31).to_string(), "f31");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn x_rejects_large_index() {
        let _ = Reg::x(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn f_rejects_large_index() {
        let _ = Reg::f(32);
    }
}
