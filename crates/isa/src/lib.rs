//! The instruction set of the GhostMinion reproduction.
//!
//! The paper evaluates GhostMinion in gem5 running Aarch64 binaries. We
//! cannot ship SPEC binaries, so this crate defines a small, RISC-style
//! instruction set that the cycle-level core in `gm-sim` executes both
//! *functionally* (values) and *temporally* (cycles). The set is chosen so
//! that every microarchitectural behaviour the paper depends on is
//! expressible:
//!
//! * loads/stores of 1–8 bytes with register+immediate addressing (cache
//!   and MSHR behaviour, speculative fills, data-dependent addresses for
//!   Spectre gadgets);
//! * conditional branches and indirect jumps (misspeculation, branch
//!   predictor training, BTB attacks);
//! * pipelined and **non-pipelined** arithmetic (integer divide, FP divide,
//!   FP square root) — the structural-hazard channel SpectreRewind uses;
//! * `rdcycle`, the in-simulation timer attackers use to measure channels;
//! * load-linked/store-conditional, so the Parsec-analog workloads can
//!   build real spinlocks over the coherence protocol.
//!
//! Programs are built with the [`Asm`] assembler DSL and carry initial
//! data segments, so workloads are self-contained values.

mod asm;
mod exec;
mod inst;
mod op;
mod program;
mod reg;

pub use asm::{Asm, Label};
pub use exec::{alu_eval, branch_taken};
pub use inst::Inst;
pub use op::{FuClass, MemSize, Op};
pub use program::{DataSegment, Program};
pub use reg::{Reg, NUM_ARCH_REGS};

/// Byte address of the first instruction; instruction `i` occupies
/// `ITEXT_BASE + 4*i`. Kept well away from workload data so instruction
/// and data footprints never alias in the caches.
pub const ITEXT_BASE: u64 = 0x4000_0000;

/// Size of one instruction in bytes (fixed-width encoding).
pub const INST_BYTES: u64 = 4;

/// Byte address of instruction index `pc`.
pub fn pc_to_addr(pc: u64) -> u64 {
    ITEXT_BASE + pc * INST_BYTES
}
