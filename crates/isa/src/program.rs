//! Executable programs: an instruction sequence plus initial data.

use crate::{Inst, Reg};
use std::fmt;
use std::sync::Arc;

/// A contiguous block of initial memory contents.
///
/// The bytes are reference-counted: workload images run to multiple
/// MiB and every (scheme × experiment) job starts from the same one,
/// so cloning a program — which the bench runner does per job — shares
/// the image instead of copying it. The functional memory keeps the
/// sharing end-to-end ([`SparseMem::write_bytes_shared`] installs the
/// same `Arc` as a copy-on-write extent).
///
/// [`SparseMem::write_bytes_shared`]: ../gm_mem/struct.SparseMem.html
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataSegment {
    /// Byte address of the first byte.
    pub base: u64,
    /// The bytes to place there before execution.
    pub bytes: Arc<[u8]>,
}

impl DataSegment {
    /// A segment of `count` little-endian u64 words starting at `base`.
    pub fn words(base: u64, words: &[u64]) -> Self {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        Self {
            base,
            bytes: bytes.into(),
        }
    }

    /// Exclusive end address of the segment.
    pub fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }
}

/// A self-contained executable program for the simulated machine: the
/// instruction stream, initial data segments, and initial register values.
///
/// Workload generators in `gm-workloads` produce these; the machine in
/// `ghostminion` runs them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// The instruction stream; instruction `i` lives at pc `i`.
    pub insts: Vec<Inst>,
    /// Initial memory image.
    pub data: Vec<DataSegment>,
    /// Initial architectural register values, applied before execution.
    pub init_regs: Vec<(Reg, u64)>,
    /// Human-readable name (workload identifier in reports).
    pub name: String,
}

impl Program {
    /// Creates an empty program with the given report name.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Fetches the instruction at `pc`, or `None` past the end.
    pub fn fetch(&self, pc: u64) -> Option<Inst> {
        self.insts.get(pc as usize).copied()
    }

    /// Validates static well-formedness: all direct control-flow targets
    /// must be in range. Returns the offending instruction index on error.
    pub fn validate(&self) -> Result<(), usize> {
        for (i, inst) in self.insts.iter().enumerate() {
            if let Some(t) = inst.direct_target() {
                if t as usize >= self.insts.len() {
                    return Err(i);
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program {} ({} insts)", self.name, self.insts.len())?;
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{i:5}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Reg};

    #[test]
    fn data_segment_words_little_endian() {
        let seg = DataSegment::words(0x100, &[0x0102_0304_0506_0708]);
        assert_eq!(seg.bytes[0], 0x08);
        assert_eq!(seg.bytes[7], 0x01);
        assert_eq!(seg.end(), 0x108);
    }

    #[test]
    fn fetch_in_and_out_of_range() {
        let mut p = Program::named("t");
        p.insts.push(Inst::nop());
        assert_eq!(p.fetch(0), Some(Inst::nop()));
        assert_eq!(p.fetch(1), None);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn validate_catches_wild_branch() {
        let mut p = Program::named("t");
        p.insts
            .push(Inst::new(Op::Beq, Reg::ZERO, Reg::ZERO, Reg::ZERO, 99));
        assert_eq!(p.validate(), Err(0));
        p.insts[0].imm = 0;
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn display_lists_instructions() {
        let mut p = Program::named("demo");
        p.insts.push(Inst::nop());
        let s = p.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("nop"));
    }
}
