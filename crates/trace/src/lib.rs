#![warn(missing_docs)]

//! Pipeline-trace sinks over the engine's [`TraceSink`] hooks.
//!
//! Two consumers of the per-instruction lifecycle events `gm-sim`
//! emits (see [`gm_sim::TraceEvent`]):
//!
//! * [`O3PipeViewSink`] streams a gem5 `O3PipeView`-compatible text
//!   trace, directly loadable in the Konata pipeline viewer;
//! * [`SummarySink`] folds the event stream into a guest-cycle
//!   attribution report — per functional-unit class, the cycles lost
//!   to FU waits, STT taint parking, store-forward blocking, and
//!   squashed work.
//!
//! [`Tee`] fans one event stream into several sinks, and
//! [`validate_o3`] is the strict parser CI runs over emitted traces.
//!
//! # Trace format
//!
//! Each retired (or squashed) instruction is one 7-line group:
//!
//! ```text
//! O3PipeView:fetch:<tick>:0x<addr>:0:<sn>:<disasm>
//! O3PipeView:decode:<tick>
//! O3PipeView:rename:<tick>
//! O3PipeView:dispatch:<tick>
//! O3PipeView:issue:<tick>
//! O3PipeView:complete:<tick>
//! O3PipeView:retire:<tick>:store:<store-tick>
//! ```
//!
//! Ticks are **1-based simulated cycles** (`cycle + 1`), so `0`
//! unambiguously means "never reached that stage" — squashed
//! instructions carry `retire` tick 0, and gem5 tools read the same
//! convention. `<sn>` is a file-global instruction number assigned in
//! rename order across all cores.

use gm_isa::{pc_to_addr, FuClass};
use gm_sim::{TraceEvent, TraceSink};
use std::cell::RefCell;
use std::collections::HashMap;
use std::io::{self, Write};
use std::rc::Rc;

/// Tick value meaning "the instruction never reached this stage".
const NEVER: u64 = 0;

/// Converts a simulated cycle to a trace tick (1-based; see module
/// docs).
fn tick(cycle: u64) -> u64 {
    cycle + 1
}

// ---- O3PipeView emission ----

/// One in-flight instruction's recorded stage ticks.
#[derive(Clone, Debug)]
struct O3Rec {
    sn: u64,
    pc: u64,
    disasm: String,
    is_store: bool,
    fetch: u64,
    decode: u64,
    rename: u64,
    dispatch: u64,
    issue: u64,
    complete: u64,
}

/// Streams a gem5 `O3PipeView` text trace (Konata-loadable) to a
/// writer.
///
/// Groups are written when an instruction retires or is squashed, so
/// each instruction's seven lines are contiguous even in multicore
/// traces. Instructions squashed before rename never acquired a
/// sequence number and do not appear (they exist only as fetch-stage
/// bubbles).
pub struct O3PipeViewSink<W: Write> {
    out: W,
    live: HashMap<(usize, u64), O3Rec>,
    next_sn: u64,
    err: Option<io::Error>,
}

impl<W: Write> O3PipeViewSink<W> {
    /// Creates a sink writing the trace to `out` (wrap files in a
    /// `BufWriter`; the sink writes line-at-a-time).
    pub fn new(out: W) -> Self {
        Self {
            out,
            live: HashMap::new(),
            next_sn: 0,
            err: None,
        }
    }

    /// Number of instructions currently tracked (renamed, not yet
    /// retired or squashed).
    pub fn in_flight(&self) -> usize {
        self.live.len()
    }

    fn write_group(&mut self, rec: &O3Rec, retire: u64) {
        if self.err.is_some() {
            return;
        }
        let store = if rec.is_store && retire != NEVER {
            retire
        } else {
            NEVER
        };
        let r = write!(
            self.out,
            "O3PipeView:fetch:{}:0x{:08x}:0:{}:{}\n\
             O3PipeView:decode:{}\n\
             O3PipeView:rename:{}\n\
             O3PipeView:dispatch:{}\n\
             O3PipeView:issue:{}\n\
             O3PipeView:complete:{}\n\
             O3PipeView:retire:{}:store:{}\n",
            rec.fetch,
            pc_to_addr(rec.pc),
            rec.sn,
            rec.disasm,
            rec.decode,
            rec.rename,
            rec.dispatch,
            rec.issue,
            rec.complete,
            retire,
            store,
        );
        if let Err(e) = r {
            self.err = Some(e);
        }
    }

    /// Writes any still-in-flight instructions as squashed groups
    /// (simulation aborted mid-window), flushes the writer, and
    /// reports the first I/O error encountered while streaming.
    pub fn finish(&mut self) -> io::Result<()> {
        let mut rest: Vec<O3Rec> = self.live.drain().map(|(_, r)| r).collect();
        rest.sort_by_key(|r| r.sn);
        for rec in rest {
            self.write_group(&rec, NEVER);
        }
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

impl<W: Write> TraceSink for O3PipeViewSink<W> {
    fn event(&mut self, cycle: u64, core: usize, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Rename {
                seq,
                pc,
                op,
                fetched_at,
            } => {
                let sn = self.next_sn;
                self.next_sn += 1;
                self.live.insert(
                    (core, seq),
                    O3Rec {
                        sn,
                        pc,
                        disasm: format!("{op:?}"),
                        is_store: op.is_store(),
                        fetch: tick(fetched_at),
                        decode: tick(cycle),
                        rename: tick(cycle),
                        dispatch: NEVER,
                        issue: NEVER,
                        complete: NEVER,
                    },
                );
            }
            TraceEvent::Dispatch { seq } => {
                if let Some(r) = self.live.get_mut(&(core, seq)) {
                    r.dispatch = tick(cycle);
                }
            }
            TraceEvent::Issue { seq } => {
                if let Some(r) = self.live.get_mut(&(core, seq)) {
                    r.issue = tick(cycle);
                }
            }
            TraceEvent::Writeback { seq } => {
                if let Some(r) = self.live.get_mut(&(core, seq)) {
                    r.complete = tick(cycle);
                }
            }
            TraceEvent::Commit { seq, .. } => {
                if let Some(rec) = self.live.remove(&(core, seq)) {
                    self.write_group(&rec, tick(cycle));
                }
            }
            TraceEvent::Squash { seq, .. } => {
                if let Some(rec) = self.live.remove(&(core, seq)) {
                    self.write_group(&rec, NEVER);
                }
            }
            _ => {}
        }
    }
}

// ---- guest-cycle attribution ----

/// All functional-unit classes, in report order.
const CLASSES: [FuClass; 8] = [
    FuClass::IntAlu,
    FuClass::IntMult,
    FuClass::IntDiv,
    FuClass::FpAlu,
    FuClass::FpDiv,
    FuClass::FpSqrt,
    FuClass::MemRead,
    FuClass::MemWrite,
];

fn class_index(c: FuClass) -> usize {
    CLASSES.iter().position(|&x| x == c).expect("known class")
}

fn class_name(c: FuClass) -> &'static str {
    match c {
        FuClass::IntAlu => "IntAlu",
        FuClass::IntMult => "IntMult",
        FuClass::IntDiv => "IntDiv",
        FuClass::FpAlu => "FpAlu",
        FuClass::FpDiv => "FpDiv",
        FuClass::FpSqrt => "FpSqrt",
        FuClass::MemRead => "MemRead",
        FuClass::MemWrite => "MemWrite",
    }
}

/// Per-class accumulated attribution (cycles and counts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCycles {
    /// Instructions of this class that committed.
    pub committed: u64,
    /// Instructions of this class squashed after rename.
    pub squashed: u64,
    /// Cycles between operands-ready and issue (FU / port contention,
    /// fences, strict-FU ordering).
    pub fu_wait: u64,
    /// Cycles loads spent parked by the STT taint gate.
    pub stt_delay: u64,
    /// Cycles loads spent blocked on an older store with an unknown or
    /// partially overlapping address.
    pub store_block: u64,
    /// Cycles of squashed work: squash cycle minus fetch cycle, summed
    /// over squashed instructions.
    pub squash_cost: u64,
}

/// Per-instruction state the summary tracks between events.
#[derive(Clone, Copy, Debug)]
struct LiveInst {
    class: FuClass,
    fetched_at: u64,
    ready_at: Option<u64>,
    park_at: Option<u64>,
    block_at: Option<u64>,
}

/// Folds the event stream into a guest-cycle attribution report: for
/// each functional-unit class, where its instructions' simulated
/// cycles went — waiting for a functional unit, parked by the STT
/// taint gate, blocked behind an unresolved store, or thrown away by a
/// squash.
///
/// Intervals are measured between lifecycle edges of the same dynamic
/// instruction, so the report is exact (not sampled) and deterministic.
#[derive(Clone, Debug, Default)]
pub struct SummarySink {
    live: HashMap<(usize, u64), LiveInst>,
    by_class: [ClassCycles; CLASSES.len()],
    /// Instructions fetched, including never-renamed fetch bubbles.
    pub fetched: u64,
    /// Squashes by cause name (`mispredict` / `halt-drain`).
    pub squashes_by_cause: [(&'static str, u64); 2],
}

impl SummarySink {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            squashes_by_cause: [("mispredict", 0), ("halt-drain", 0)],
            ..Self::default()
        }
    }

    /// The accumulated attribution for one class.
    pub fn class(&self, c: FuClass) -> &ClassCycles {
        &self.by_class[class_index(c)]
    }

    /// Total committed instructions across classes.
    pub fn committed(&self) -> u64 {
        self.by_class.iter().map(|c| c.committed).sum()
    }

    /// Total cycles attributed to any stall cause.
    pub fn attributed(&self) -> u64 {
        self.by_class
            .iter()
            .map(|c| c.fu_wait + c.stt_delay + c.store_block + c.squash_cost)
            .sum()
    }

    fn settle_block(acc: &mut ClassCycles, li: &mut LiveInst, cycle: u64) {
        if let Some(b) = li.block_at.take() {
            acc.store_block += cycle - b;
        }
    }

    /// Renders the attribution table. `cycles` is the run's final
    /// cycle count (for the caption); pass the machine result's
    /// `cycles`.
    pub fn render(&self, cycles: u64) -> String {
        let mut t = gm_stats::Table::new(vec![
            "class".into(),
            "committed".into(),
            "squashed".into(),
            "fu_wait".into(),
            "stt_delay".into(),
            "store_block".into(),
            "squash_cost".into(),
        ]);
        let mut total = ClassCycles::default();
        for (i, acc) in self.by_class.iter().enumerate() {
            if *acc == ClassCycles::default() {
                continue;
            }
            t.row(vec![
                class_name(CLASSES[i]).into(),
                acc.committed.to_string(),
                acc.squashed.to_string(),
                acc.fu_wait.to_string(),
                acc.stt_delay.to_string(),
                acc.store_block.to_string(),
                acc.squash_cost.to_string(),
            ]);
            total.committed += acc.committed;
            total.squashed += acc.squashed;
            total.fu_wait += acc.fu_wait;
            total.stt_delay += acc.stt_delay;
            total.store_block += acc.store_block;
            total.squash_cost += acc.squash_cost;
        }
        t.row(vec![
            "total".into(),
            total.committed.to_string(),
            total.squashed.to_string(),
            total.fu_wait.to_string(),
            total.stt_delay.to_string(),
            total.store_block.to_string(),
            total.squash_cost.to_string(),
        ]);
        let causes = self
            .squashes_by_cause
            .iter()
            .map(|(n, c)| format!("{n}={c}"))
            .collect::<Vec<_>>()
            .join(" ");
        format!(
            "guest-cycle attribution over {cycles} cycles \
             ({} fetched, squashes: {causes})\n{}",
            self.fetched,
            t.render()
        )
    }
}

impl TraceSink for SummarySink {
    fn event(&mut self, cycle: u64, core: usize, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Fetch { .. } => self.fetched += 1,
            TraceEvent::Rename {
                seq,
                op,
                fetched_at,
                ..
            } => {
                self.live.insert(
                    (core, seq),
                    LiveInst {
                        class: op.fu_class(),
                        fetched_at,
                        ready_at: None,
                        park_at: None,
                        block_at: None,
                    },
                );
            }
            TraceEvent::Ready { seq } => {
                if let Some(li) = self.live.get_mut(&(core, seq)) {
                    li.ready_at = Some(cycle);
                }
            }
            TraceEvent::Issue { seq } => {
                if let Some(li) = self.live.get_mut(&(core, seq)) {
                    if let Some(r) = li.ready_at {
                        self.by_class[class_index(li.class)].fu_wait += cycle - r;
                    }
                }
            }
            TraceEvent::MemPark { seq } => {
                if let Some(li) = self.live.get_mut(&(core, seq)) {
                    let acc = &mut self.by_class[class_index(li.class)];
                    Self::settle_block(acc, li, cycle);
                    li.park_at = Some(cycle);
                }
            }
            TraceEvent::MemUnpark { seq } => {
                if let Some(li) = self.live.get_mut(&(core, seq)) {
                    if let Some(p) = li.park_at.take() {
                        self.by_class[class_index(li.class)].stt_delay += cycle - p;
                    }
                }
            }
            TraceEvent::MemBlock { seq, .. } => {
                if let Some(li) = self.live.get_mut(&(core, seq)) {
                    let acc = &mut self.by_class[class_index(li.class)];
                    Self::settle_block(acc, li, cycle);
                    li.block_at = Some(cycle);
                }
            }
            TraceEvent::MemSend { seq, .. } | TraceEvent::MemForward { seq } => {
                if let Some(li) = self.live.get_mut(&(core, seq)) {
                    let acc = &mut self.by_class[class_index(li.class)];
                    Self::settle_block(acc, li, cycle);
                }
            }
            TraceEvent::Commit { seq, .. } => {
                if let Some(mut li) = self.live.remove(&(core, seq)) {
                    let acc = &mut self.by_class[class_index(li.class)];
                    Self::settle_block(acc, &mut li, cycle);
                    acc.committed += 1;
                }
            }
            TraceEvent::Squash { seq, cause, .. } => {
                if let Some(mut li) = self.live.remove(&(core, seq)) {
                    let acc = &mut self.by_class[class_index(li.class)];
                    Self::settle_block(acc, &mut li, cycle);
                    if let Some(p) = li.park_at.take() {
                        acc.stt_delay += cycle - p;
                    }
                    acc.squashed += 1;
                    acc.squash_cost += cycle - li.fetched_at;
                    let slot = match cause {
                        gm_sim::SquashCause::Mispredict => 0,
                        gm_sim::SquashCause::HaltDrain => 1,
                    };
                    self.squashes_by_cause[slot].1 += 1;
                }
            }
            _ => {}
        }
    }
}

// ---- fan-out ----

/// Forwards every event to several sinks, letting one traced run feed
/// both a streamed trace file and an in-memory summary. Holds the same
/// shared handles the machine's cores hold, so callers keep their own
/// concrete handles for post-run access.
pub struct Tee {
    sinks: Vec<Rc<RefCell<dyn TraceSink>>>,
}

impl Tee {
    /// Creates a tee over the given sinks; events are forwarded in
    /// order.
    pub fn new(sinks: Vec<Rc<RefCell<dyn TraceSink>>>) -> Self {
        Self { sinks }
    }
}

impl TraceSink for Tee {
    fn event(&mut self, cycle: u64, core: usize, ev: &TraceEvent) {
        for s in &self.sinks {
            s.borrow_mut().event(cycle, core, ev);
        }
    }
}

// ---- validation ----

/// What [`validate_o3`] found in a well-formed trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct O3Report {
    /// Instruction groups in the trace.
    pub instructions: u64,
    /// Groups with a nonzero retire tick.
    pub retired: u64,
    /// Groups with retire tick 0 (squashed or aborted in flight).
    pub squashed: u64,
}

fn parse_tick(line: &str, stage: &str, lineno: usize) -> Result<u64, String> {
    let prefix = format!("O3PipeView:{stage}:");
    let rest = line
        .strip_prefix(&prefix)
        .ok_or_else(|| format!("line {lineno}: expected `{prefix}<tick>`, got `{line}`"))?;
    rest.parse::<u64>()
        .map_err(|_| format!("line {lineno}: non-numeric {stage} tick `{rest}`"))
}

/// Strictly validates an O3PipeView trace produced by
/// [`O3PipeViewSink`]: 7-line groups, numeric ticks, monotone
/// non-decreasing stage ticks, zeros only as an unreached suffix, and
/// file-unique instruction numbers. Returns counts on success.
pub fn validate_o3(text: &str) -> Result<O3Report, String> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() % 7 != 0 {
        return Err(format!(
            "trace has {} lines, not a multiple of 7",
            lines.len()
        ));
    }
    let mut seen_sn = std::collections::HashSet::new();
    let mut report = O3Report::default();
    for (g, group) in lines.chunks(7).enumerate() {
        let base = g * 7 + 1;
        let fetch_fields: Vec<&str> = group[0].splitn(7, ':').collect();
        if fetch_fields.len() != 7 || fetch_fields[0] != "O3PipeView" || fetch_fields[1] != "fetch"
        {
            return Err(format!("line {base}: malformed fetch line `{}`", group[0]));
        }
        let fetch: u64 = fetch_fields[2]
            .parse()
            .map_err(|_| format!("line {base}: non-numeric fetch tick"))?;
        if !fetch_fields[3].starts_with("0x")
            || u64::from_str_radix(&fetch_fields[3][2..], 16).is_err()
        {
            return Err(format!(
                "line {base}: malformed pc field `{}`",
                fetch_fields[3]
            ));
        }
        let sn: u64 = fetch_fields[5]
            .parse()
            .map_err(|_| format!("line {base}: non-numeric instruction number"))?;
        if !seen_sn.insert(sn) {
            return Err(format!("line {base}: duplicate instruction number {sn}"));
        }
        if fetch_fields[6].is_empty() {
            return Err(format!("line {base}: empty disasm"));
        }
        let decode = parse_tick(group[1], "decode", base + 1)?;
        let rename = parse_tick(group[2], "rename", base + 2)?;
        let dispatch = parse_tick(group[3], "dispatch", base + 3)?;
        let issue = parse_tick(group[4], "issue", base + 4)?;
        let complete = parse_tick(group[5], "complete", base + 5)?;
        let retire_fields: Vec<&str> = group[6].splitn(5, ':').collect();
        if retire_fields.len() != 5
            || retire_fields[0] != "O3PipeView"
            || retire_fields[1] != "retire"
            || retire_fields[3] != "store"
        {
            return Err(format!(
                "line {}: malformed retire line `{}`",
                base + 6,
                group[6]
            ));
        }
        let retire: u64 = retire_fields[2]
            .parse()
            .map_err(|_| format!("line {}: non-numeric retire tick", base + 6))?;
        let store: u64 = retire_fields[4]
            .parse()
            .map_err(|_| format!("line {}: non-numeric store tick", base + 6))?;
        // Stage ticks must be non-decreasing where reached, and zeros
        // (unreached) must form a suffix of the pipeline order.
        let stages = [fetch, decode, rename, dispatch, issue, complete, retire];
        let mut prev = 0u64;
        let mut dead = false;
        for (si, &t) in stages.iter().enumerate() {
            let name = [
                "fetch", "decode", "rename", "dispatch", "issue", "complete", "retire",
            ][si];
            if t == NEVER {
                // `retire` may be 0 after a completed writeback
                // (squashed instruction); earlier stages may not
                // restart once unreached.
                if name != "retire" {
                    dead = true;
                }
                continue;
            }
            if dead {
                return Err(format!(
                    "group at line {base}: stage `{name}` reached after an unreached stage"
                ));
            }
            if t < prev {
                return Err(format!(
                    "group at line {base}: stage `{name}` tick {t} precedes {prev}"
                ));
            }
            prev = t;
        }
        if store != NEVER && store != retire {
            return Err(format!(
                "group at line {base}: store tick {store} disagrees with retire {retire}"
            ));
        }
        report.instructions += 1;
        if retire == NEVER {
            report.squashed += 1;
        } else {
            report.retired += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_isa::Op;
    use gm_sim::SquashCause;

    fn rename_ev(seq: u64, op: Op, fetched_at: u64) -> TraceEvent {
        TraceEvent::Rename {
            seq,
            pc: seq,
            op,
            fetched_at,
        }
    }

    /// Drives a synthetic single-instruction lifecycle through the O3
    /// sink and validates the emitted group.
    #[test]
    fn o3_sink_emits_valid_groups() {
        let mut sink = O3PipeViewSink::new(Vec::new());
        sink.event(2, 0, &rename_ev(1, Op::Add, 0));
        sink.event(2, 0, &TraceEvent::Dispatch { seq: 1 });
        sink.event(2, 0, &TraceEvent::Ready { seq: 1 });
        sink.event(3, 0, &TraceEvent::Issue { seq: 1 });
        sink.event(4, 0, &TraceEvent::Writeback { seq: 1 });
        sink.event(
            5,
            0,
            &TraceEvent::Commit {
                seq: 1,
                pc: 1,
                op: Op::Add,
            },
        );
        // A second instruction squashed while waiting.
        sink.event(3, 0, &rename_ev(2, Op::Mul, 2));
        sink.event(3, 0, &TraceEvent::Dispatch { seq: 2 });
        sink.event(
            6,
            0,
            &TraceEvent::Squash {
                seq: 2,
                pc: 2,
                op: Op::Mul,
                cause: SquashCause::Mispredict,
            },
        );
        sink.finish().unwrap();
        let text = String::from_utf8(std::mem::take(&mut sink.out)).unwrap();
        let report = validate_o3(&text).expect("trace validates");
        assert_eq!(report.instructions, 2);
        assert_eq!(report.retired, 1);
        assert_eq!(report.squashed, 1);
        assert!(text.contains("O3PipeView:retire:6:store:0"));
        assert!(text.contains("O3PipeView:retire:0:store:0"));
    }

    #[test]
    fn o3_store_carries_retire_tick() {
        let mut sink = O3PipeViewSink::new(Vec::new());
        sink.event(0, 0, &rename_ev(1, Op::St(gm_isa::MemSize::B8), 0));
        sink.event(0, 0, &TraceEvent::Dispatch { seq: 1 });
        sink.event(1, 0, &TraceEvent::Issue { seq: 1 });
        sink.event(2, 0, &TraceEvent::Writeback { seq: 1 });
        sink.event(
            9,
            0,
            &TraceEvent::Commit {
                seq: 1,
                pc: 1,
                op: Op::St(gm_isa::MemSize::B8),
            },
        );
        sink.finish().unwrap();
        let text = String::from_utf8(std::mem::take(&mut sink.out)).unwrap();
        assert!(text.contains("O3PipeView:retire:10:store:10"));
        validate_o3(&text).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_o3("O3PipeView:fetch:1\n").is_err());
        let mut sink = O3PipeViewSink::new(Vec::new());
        sink.event(0, 0, &rename_ev(1, Op::Add, 0));
        sink.event(
            1,
            0,
            &TraceEvent::Commit {
                seq: 1,
                pc: 1,
                op: Op::Add,
            },
        );
        sink.finish().unwrap();
        let good = String::from_utf8(std::mem::take(&mut sink.out)).unwrap();
        let tampered = good.replace("O3PipeView:decode:1", "O3PipeView:decode:x");
        assert!(validate_o3(&tampered).is_err());
    }

    /// The summary attributes the interval arithmetic exactly.
    #[test]
    fn summary_attributes_intervals() {
        let mut s = SummarySink::new();
        // A load: ready at 4, issued at 9 (5 cycles fu_wait), parked
        // 10..=17 (7 cycles stt), sent, committed.
        s.event(
            0,
            0,
            &TraceEvent::Fetch {
                pc: 1,
                op: Op::Ld(gm_isa::MemSize::B8),
            },
        );
        s.event(2, 0, &rename_ev(1, Op::Ld(gm_isa::MemSize::B8), 0));
        s.event(4, 0, &TraceEvent::Ready { seq: 1 });
        s.event(9, 0, &TraceEvent::Issue { seq: 1 });
        s.event(10, 0, &TraceEvent::MemPark { seq: 1 });
        s.event(17, 0, &TraceEvent::MemUnpark { seq: 1 });
        s.event(17, 0, &TraceEvent::MemSend { seq: 1, addr: 8 });
        s.event(25, 0, &TraceEvent::Writeback { seq: 1 });
        s.event(
            26,
            0,
            &TraceEvent::Commit {
                seq: 1,
                pc: 1,
                op: Op::Ld(gm_isa::MemSize::B8),
            },
        );
        let acc = s.class(FuClass::MemRead);
        assert_eq!(acc.committed, 1);
        assert_eq!(acc.fu_wait, 5);
        assert_eq!(acc.stt_delay, 7);
        assert_eq!(acc.store_block, 0);
        assert_eq!(s.fetched, 1);
        assert_eq!(s.committed(), 1);
        assert_eq!(s.attributed(), 12);
        let rendered = s.render(30);
        assert!(rendered.contains("MemRead"));
        assert!(rendered.contains("total"));
    }

    /// Squash settles parked intervals and records thrown-away work.
    #[test]
    fn summary_settles_on_squash() {
        let mut s = SummarySink::new();
        s.event(3, 1, &rename_ev(5, Op::Ld(gm_isa::MemSize::B8), 1));
        s.event(
            4,
            1,
            &TraceEvent::MemBlock {
                seq: 5,
                store_seq: 4,
            },
        );
        s.event(
            12,
            1,
            &TraceEvent::Squash {
                seq: 5,
                pc: 5,
                op: Op::Ld(gm_isa::MemSize::B8),
                cause: SquashCause::HaltDrain,
            },
        );
        let acc = s.class(FuClass::MemRead);
        assert_eq!(acc.squashed, 1);
        assert_eq!(acc.store_block, 8);
        assert_eq!(acc.squash_cost, 11);
        assert_eq!(s.squashes_by_cause[1], ("halt-drain", 1));
    }

    #[test]
    fn tee_forwards_to_all_sinks() {
        let a = Rc::new(RefCell::new(SummarySink::new()));
        let b = Rc::new(RefCell::new(SummarySink::new()));
        let mut tee = Tee::new(vec![a.clone(), b.clone()]);
        tee.event(0, 0, &TraceEvent::Fetch { pc: 0, op: Op::Add });
        assert_eq!(a.borrow().fetched, 1);
        assert_eq!(b.borrow().fetched, 1);
    }
}
