//! SpectreRewind: a backwards-in-time channel through the non-pipelined
//! integer divider (§2.2).
//!
//! A bounds-check-bypass gadget transiently reads a secret bit and, if it
//! is set, issues a burst of divides. Those divides occupy the two
//! Mult/Div units, delaying an **older** (committed!) divide whose
//! operands arrive mid-burst. The attacker times the older divide: no
//! cache state is involved, so cache-centric defences miss this channel;
//! §4.9's strictness-ordered FU scheduling closes it.

use crate::AttackOutcome;
use ghostminion::{Machine, Scheme, SystemConfig};
use gm_isa::{Asm, DataSegment, MemSize, Reg};
use gm_sim::MemoryBackend;

const TRAIN_CALLS: i64 = 48;
const SIZE_ADDR: u64 = 0x0010_0000;
const BITS: u64 = 0x0011_0000; // victim bit array; secret bit out of bounds
const SECRET_OFF: u64 = 0x200;
const OPERAND: u64 = 0x0012_0000; // L2-resident operand for the older divide
const RESULT: u64 = 0x0040_0000;
const L1_ALIAS_STRIDE: u64 = 32 * 1024;

fn program(secret_bit: u8) -> gm_isa::Program {
    assert!(secret_bit <= 1);
    let mut a = Asm::new("spectre-rewind");
    a.data(DataSegment::words(SIZE_ADDR, &[16]));
    let mut bits = vec![0u8; (SECRET_OFF + 1) as usize];
    // The victim legitimately runs the divide path for some inputs, so
    // the burst code is warm in the instruction hierarchy.
    bits[3] = 1;
    bits[7] = 1;
    bits[SECRET_OFF as usize] = secret_bit;
    a.data(DataSegment {
        base: BITS,
        bytes: bits.into(),
    });
    a.data(DataSegment::words(OPERAND, &[982_451_653]));

    let (x, ra) = (Reg::x(10), Reg::x(1));
    let (size, b, t) = (Reg::x(11), Reg::x(12), Reg::x(13));
    let (i, n) = (Reg::x(14), Reg::x(15));
    let (t0, t1, s, q, seven) = (Reg::x(16), Reg::x(17), Reg::x(18), Reg::x(19), Reg::x(20));

    let gadget = a.label();
    let main = a.label();
    a.j(main);

    // ---- victim gadget ----
    // if (x < size) { if (bits[x]) { divide burst } }
    a.bind(gadget);
    a.emit(gm_isa::Inst::new(
        gm_isa::Op::Ld(MemSize::B8),
        size,
        Reg::ZERO,
        Reg::ZERO,
        SIZE_ADDR as i64,
    ));
    let skip = a.label();
    let no_divs = a.label();
    a.bge(x, size, skip);
    a.addi(t, x, BITS as i64);
    a.ld_sized(MemSize::B1, b, t, 0);
    a.beq(b, Reg::ZERO, no_divs);
    // Divide burst: contends for the 2 Mult/Div units (12 cycles each,
    // non-pipelined).
    for k in 0..6u8 {
        a.div(Reg::x(24), Reg::x(21 + (k % 3)), Reg::x(20));
    }
    a.bind(no_divs);
    a.bind(skip);
    a.jalr(Reg::ZERO, ra, 0);

    a.bind(main);
    a.li(seven, 7);
    a.li(Reg::x(21), 1_000_003);
    a.li(Reg::x(22), 2_000_003);
    a.li(Reg::x(23), 3_000_017);
    // Warm the secret line (victim's own use) and the operand line into
    // the L2 (touch, then evict from L1 only).
    a.li(t, (BITS + SECRET_OFF) as i64);
    a.ld_sized(MemSize::B1, Reg::x(24), t, 0);
    a.li(t, OPERAND as i64);
    a.ld(Reg::x(24), t, 0);

    // Train the bounds check (bits[0..16] are all zero: the burst never
    // runs architecturally).
    a.li(i, 0);
    a.li(n, TRAIN_CALLS);
    let train = a.here();
    a.andi(x, i, 15);
    a.jal(ra, gadget);
    a.addi(i, i, 1);
    a.bne(i, n, train);

    // Evict OPERAND and SIZE from the L1 so both resolve via the L2:
    // the older divide's operand arrives while the transient burst is
    // still occupying the dividers.
    for base in [OPERAND, SIZE_ADDR] {
        for k in 1..=2u64 {
            a.li(t, (base + k * L1_ALIAS_STRIDE) as i64);
            a.ld(Reg::x(24), t, 0);
            a.fence(); // commit each eviction before the next
        }
    }

    // ---- the measured sequence ----
    a.rdcycle(t0);
    a.li(t, OPERAND as i64);
    a.ld(s, t, 0); // L2 hit: ~22 cycles
    a.div(q, s, seven); // the OLDER divide (program order before the call)
    a.li(x, SECRET_OFF as i64);
    a.jal(ra, gadget); // mispredicted: transient burst runs concurrently
    a.xor(Reg::x(25), q, q); // consume q
    a.fence();
    a.rdcycle(t1);
    a.sub(t, t1, t0);
    a.li(Reg::x(26), RESULT as i64);
    a.st(t, Reg::x(26), 0);
    a.halt();
    a.assemble()
}

fn measure(scheme: Scheme, bit: u8) -> u64 {
    let mut m = Machine::new(scheme, SystemConfig::micro2021(), vec![program(bit)]);
    m.run(20_000_000);
    m.mem().read_value(RESULT, 8)
}

/// Distinguishes the planted secret bit by timing the older divide.
/// `leaked` is true iff the two bit values are separable by more than 4
/// cycles.
pub fn spectre_rewind(scheme: Scheme) -> AttackOutcome {
    let t0 = measure(scheme, 0);
    let t1 = measure(scheme, 1);
    let delta = t1.abs_diff(t0);
    AttackOutcome {
        scheme: scheme.name(),
        leaked: delta > 4,
        evidence: format!("older-divide time: bit0={t0} bit1={t1} (delta {delta})"),
    }
}
