//! Speculative-interference-style MSHR contention channel.
//!
//! A transient burst of loads, gated on a secret bit, fills all four L1D
//! MSHRs. An **older** load whose address arrives mid-burst then finds no
//! MSHR and is delayed — a backwards-in-time timing change on an
//! instruction that commits. Rollback and invisible-fill defences do not
//! help (no cache *state* is involved); GhostMinion's leapfrogging (§4.5)
//! lets the older load steal an MSHR back, restoring its timing.

use crate::AttackOutcome;
use ghostminion::{Machine, Scheme, SystemConfig};
use gm_isa::{Asm, DataSegment, MemSize, Reg};
use gm_sim::MemoryBackend;

const TRAIN_CALLS: i64 = 48;
const SIZE_ADDR: u64 = 0x0010_0000;
const BITS: u64 = 0x0011_0000;
const SECRET_OFF: u64 = 0x200;
const PTR_ADDR: u64 = 0x0012_0000; // holds the older load's target address
/// Older load's (cold) target; chosen to sit on DRAM bank 5, away from
/// the burst lines' banks, so bank conflicts don't mask the MSHR channel.
const TARGET: u64 = 0x0100_a000;
/// Burst base; per-`x` region so training-time (architectural) bursts
/// touch different lines than the attack-time (transient) burst.
const BURST: u64 = 0x0200_0000;
/// Per-burst-load stride: staggers DRAM banks (9 rows apart).
const BURST_STEP: u64 = 0x1_2000;
const RESULT: u64 = 0x0040_0000;
/// L2 is 2 MiB 8-way => 4096 sets: lines 256 KiB apart share an L2 set
/// (and, since 256 KiB is a multiple of 32 KiB, an L1 set too).
const L2_ALIAS_STRIDE: u64 = 256 * 1024;

pub(crate) fn program_for_debug(bit: u8) -> gm_isa::Program {
    program(bit)
}

fn program(secret_bit: u8) -> gm_isa::Program {
    assert!(secret_bit <= 1);
    let mut a = Asm::new("spec-interference");
    a.data(DataSegment::words(SIZE_ADDR, &[16]));
    let mut bits = vec![0u8; (SECRET_OFF + 1) as usize];
    // The victim legitimately runs the burst path for some inputs, so its
    // code is warm in the instruction hierarchy (it is real victim code,
    // not attacker-injected).
    bits[3] = 1;
    bits[7] = 1;
    bits[SECRET_OFF as usize] = secret_bit;
    a.data(DataSegment {
        base: BITS,
        bytes: bits.into(),
    });
    a.data(DataSegment::words(PTR_ADDR, &[TARGET]));

    let (x, ra) = (Reg::x(10), Reg::x(1));
    let (size, b, t) = (Reg::x(11), Reg::x(12), Reg::x(13));
    let (i, n) = (Reg::x(14), Reg::x(15));
    let (t0, t1, p, v) = (Reg::x(16), Reg::x(17), Reg::x(18), Reg::x(19));

    let gadget = a.label();
    let main = a.label();
    a.j(main);

    // ---- victim gadget: transient load burst when bits[x] is set ----
    a.bind(gadget);
    a.emit(gm_isa::Inst::new(
        gm_isa::Op::Ld(MemSize::B8),
        size,
        Reg::ZERO,
        Reg::ZERO,
        SIZE_ADDR as i64,
    ));
    let skip = a.label();
    let no_burst = a.label();
    a.bge(x, size, skip);
    a.addi(t, x, BITS as i64);
    a.ld_sized(MemSize::B1, b, t, 0);
    a.beq(b, Reg::ZERO, no_burst);
    // Four independent cold loads (per-x region, bank-staggered):
    // occupy every L1D MSHR.
    a.slli(Reg::x(24), x, 16);
    a.addi(Reg::x(24), Reg::x(24), BURST as i64);
    for k in 0..5i64 {
        a.ld(Reg::x(25), Reg::x(24), k * BURST_STEP as i64);
    }
    a.bind(no_burst);
    a.bind(skip);
    a.jalr(Reg::ZERO, ra, 0);

    a.bind(main);
    // Victim warm-up of the secret line and pointer line.
    a.li(t, (BITS + SECRET_OFF) as i64);
    a.ld_sized(MemSize::B1, Reg::x(24), t, 0);
    a.li(t, PTR_ADDR as i64);
    a.ld(Reg::x(24), t, 0);

    // Train the bounds check.
    a.li(i, 0);
    a.li(n, TRAIN_CALLS);
    let train = a.here();
    a.andi(x, i, 15);
    a.jal(ra, gadget);
    a.addi(i, i, 1);
    a.bne(i, n, train);

    // Evict SIZE_ADDR all the way to DRAM (9 aliases sharing its L1 and
    // L2 sets): the bounds check then resolves only after ~a full memory
    // latency, leaving the transient burst in flight the whole time.
    for k in 1..=9u64 {
        a.li(t, (SIZE_ADDR + k * L2_ALIAS_STRIDE) as i64);
        a.ld(Reg::x(24), t, 0);
        // Serialise evictions: each must commit (and under GhostMinion,
        // be moved into the L1/L2) before the next, or they contend for
        // the same minion set and are lost (§6.4).
        a.fence();
    }

    // ---- measured sequence ----
    a.rdcycle(t0);
    a.li(t, PTR_ADDR as i64);
    a.ld(p, t, 0); // address arrives via the L2 (~22 cycles)

    // Short dependent chain: v's address is ready a few cycles after p's
    // MSHR frees, so the retrying burst loads re-occupy the file first.
    a.addi(p, p, 0);
    a.addi(p, p, 0);
    a.addi(p, p, 0);
    a.ld(v, p, 0); // the OLDER load (cold line, needs an MSHR)
    a.li(x, SECRET_OFF as i64);
    a.jal(ra, gadget); // transient burst runs concurrently
    a.xor(Reg::x(25), v, v); // consume v
    a.fence();
    a.rdcycle(t1);
    a.sub(t, t1, t0);
    a.li(Reg::x(26), RESULT as i64);
    a.st(t, Reg::x(26), 0);
    a.halt();
    a.assemble()
}

fn measure(scheme: Scheme, bit: u8) -> u64 {
    let mut m = Machine::new(scheme, SystemConfig::micro2021(), vec![program(bit)]);
    m.run(20_000_000);
    m.mem().read_value(RESULT, 8)
}

/// Distinguishes the planted secret bit by timing the older load.
/// `leaked` is true iff the two bit values are separable by more than 8
/// cycles.
pub fn speculative_interference(scheme: Scheme) -> AttackOutcome {
    let t0 = measure(scheme, 0);
    let t1 = measure(scheme, 1);
    let delta = t1.abs_diff(t0);
    AttackOutcome {
        scheme: scheme.name(),
        leaked: delta > 8,
        evidence: format!("older-load time: bit0={t0} bit1={t1} (delta {delta})"),
    }
}
