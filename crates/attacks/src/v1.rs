//! Spectre v1: bounds-check bypass with an evict-and-time cache channel.
//!
//! The whole attack — victim gadget, predictor training, eviction,
//! transient access and timing probe — is one program for the simulated
//! machine, mirroring the in-address-space sandbox threat model (§1.1).

use crate::AttackOutcome;
use ghostminion::{Machine, Scheme, SystemConfig};
use gm_isa::{Asm, DataSegment, MemSize, Reg};
use gm_sim::MemoryBackend;

/// Branch-predictor training calls before each malicious one.
const TRAIN_CALLS: i64 = 12;

/// Layout (line-aligned, far apart so only intended aliasing occurs).
const SIZE_ADDR: u64 = 0x0010_0000; // array1_size, in its own line
const ARRAY1: u64 = 0x0011_0000; // 16 valid byte entries
const SECRET_OFF: u64 = 0x200; // out-of-bounds offset of the secret
const ARRAY2: u64 = 0x0020_0000; // probe array: 256 lines
const PROBE_ORD: u64 = 0x0030_0000; // shuffled probe order
const RESULTS: u64 = 0x0040_0000; // per-guess timings
/// L1D is 64 KiB 2-way => 512 sets: lines 32 KiB apart share a set.
const L1_ALIAS_STRIDE: u64 = 32 * 1024;

fn probe_order(salt: u64) -> Vec<u64> {
    // Pseudo-random permutation of 0..256 (Fisher–Yates with an LCG), so
    // probing has no learnable stride for the prefetcher. `salt` varies
    // the order between attempts: a guess probed in the very first rounds
    // (before the bounds-check bias is established) can miss its signal,
    // so the harness retries with a different order.
    let mut v: Vec<u64> = (0..256).collect();
    let mut state = 0x1234_5678_9abc_def0u64 ^ (salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    for i in (1..256usize).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

pub(crate) fn program_for_debug(secret: u8) -> gm_isa::Program {
    attack_program(secret, 0)
}

/// Builds the attack program with `secret` planted out of bounds.
fn attack_program(secret: u8, salt: u64) -> gm_isa::Program {
    let mut a = Asm::new("spectre-v1");

    a.data(DataSegment::words(SIZE_ADDR, &[16]));
    // array1: the 16 valid entries hold 0, so training-time transient
    // transmissions only ever touch probe line 0, which the verdict
    // excludes. The secret sits out of bounds.
    let mut arr1 = vec![0u8; (SECRET_OFF + 1) as usize];
    arr1[SECRET_OFF as usize] = secret;
    a.data(DataSegment {
        base: ARRAY1,
        bytes: arr1.into(),
    });
    a.data(DataSegment::words(PROBE_ORD, &probe_order(salt)));

    let (x, ra) = (Reg::x(10), Reg::x(1));
    let (size, b, t) = (Reg::x(11), Reg::x(12), Reg::x(13));
    let (i, n) = (Reg::x(14), Reg::x(15));
    let (t0, t1, g, ord, addr, v, d) = (
        Reg::x(16),
        Reg::x(17),
        Reg::x(18),
        Reg::x(19),
        Reg::x(20),
        Reg::x(21),
        Reg::x(22),
    );

    let gadget = a.label();
    let after_setup = a.label();
    a.j(after_setup);

    // ---- victim gadget: if (x < array1_size) use(array2[array1[x]<<6]) ----
    a.bind(gadget);
    a.emit(gm_isa::Inst::new(
        gm_isa::Op::Ld(MemSize::B8),
        size,
        Reg::ZERO,
        Reg::ZERO,
        SIZE_ADDR as i64,
    ));
    let skip = a.label();
    a.bge(x, size, skip); // bounds check — the mispredicted branch
    a.addi(t, x, ARRAY1 as i64);
    a.ld_sized(MemSize::B1, b, t, 0); // array1[x] (transiently: the secret)
    a.slli(t, b, 6);
    a.addi(t, t, ARRAY2 as i64);
    a.ld(Reg::x(23), t, 0); // transmit: touch array2[b*64]
    a.bind(skip);
    a.jalr(Reg::ZERO, ra, 0);

    a.bind(after_setup);
    // Victim warm-up: the secret line is in cache from the victim's own
    // legitimate use (standard Spectre PoC precondition).
    a.li(t, (ARRAY1 + SECRET_OFF) as i64);
    a.ld_sized(MemSize::B1, Reg::x(24), t, 0);

    // One guess is probed per trigger: the transiently-touched line is
    // timed right after the transient fill settles, so the attack also
    // works against small speculative structures (e.g. MuonTrap's L0
    // filter cache) that a long probe sweep would churn.
    let (chunk, nchunks) = (Reg::x(25), Reg::x(26));
    a.li(chunk, 0);
    a.li(nchunks, 256);
    let chunk_top = a.here();

    // ---- train the bounds check in-bounds ----
    a.li(i, 0);
    a.li(n, TRAIN_CALLS);
    let train = a.here();
    a.andi(x, i, 15);
    a.jal(ra, gadget);
    a.addi(i, i, 1);
    a.bne(i, n, train);

    // ---- evict array1_size from the L1 (2 aliases beat 2 ways) ----
    a.li(t, (SIZE_ADDR + L1_ALIAS_STRIDE) as i64);
    a.ld(Reg::x(24), t, 0);
    a.fence(); // commit each eviction before the next
    a.li(t, (SIZE_ADDR + 2 * L1_ALIAS_STRIDE) as i64);
    a.ld(Reg::x(24), t, 0);
    a.fence();

    // Inject the round number's bits into the global branch history, so
    // the global predictor component sees a fresh context each round and
    // cannot learn the malicious call (the standard history
    // re-randomisation trick in Spectre PoCs).
    for bit in 0..8i64 {
        let skip_bit = a.label();
        a.srli(t, chunk, bit);
        a.andi(t, t, 1);
        a.beq(t, Reg::ZERO, skip_bit);
        a.nop();
        a.bind(skip_bit);
    }

    // ---- the malicious call ----
    a.li(x, SECRET_OFF as i64);
    a.jal(ra, gadget);
    a.fence();

    // Let the transient fill land before probing: the probe must not
    // coalesce on the still-in-flight miss and read miss latency.
    a.li(t, 150);
    let settle = a.here();
    a.addi(t, t, -1);
    a.bne(t, Reg::ZERO, settle);
    a.fence();

    // ---- evict-and-time probe for this round's guess ----
    a.mv(i, chunk);
    a.addi(n, i, 1);
    let probe = a.here();
    a.slli(ord, i, 3);
    a.addi(ord, ord, PROBE_ORD as i64);
    a.ld(g, ord, 0); // guess index (shuffled)
    a.slli(addr, g, 6);
    a.addi(addr, addr, ARRAY2 as i64);
    a.fence();
    a.rdcycle(t0);
    a.ld(v, addr, 0);
    a.fence();
    a.rdcycle(t1);
    a.sub(d, t1, t0);
    a.slli(t, g, 3);
    a.addi(t, t, RESULTS as i64);
    a.st(d, t, 0);
    a.addi(i, i, 1);
    a.bne(i, n, probe);

    a.addi(chunk, chunk, 1);
    a.bne(chunk, nchunks, chunk_top);
    a.halt();
    a.assemble()
}

fn run(scheme: Scheme, secret: u8) -> (u8, Vec<u64>) {
    run_salted(scheme, secret, 0)
}

fn run_salted(scheme: Scheme, secret: u8, salt: u64) -> (u8, Vec<u64>) {
    let prog = attack_program(secret, salt);
    let mut m = Machine::new(scheme, SystemConfig::micro2021(), vec![prog]);
    m.run(20_000_000);
    let timings: Vec<u64> = (0..256)
        .map(|g| m.mem().read_value(RESULTS + g * 8, 8))
        .collect();
    // Ignore guess 0 (touched by training transmissions).
    let (argmin, &min) = timings
        .iter()
        .enumerate()
        .skip(1)
        .min_by_key(|(_, &t)| t)
        .expect("non-empty");
    let mut sorted: Vec<u64> = timings[1..].to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    // Signal: the fastest probe is clearly below the median.
    let distinguishable = min + 10 < median;
    let leaked_byte = if distinguishable { argmin as u8 } else { 0 };
    (leaked_byte, timings)
}

/// Attempts to leak one secret byte; `leaked` is true iff the recovered
/// byte matches the planted secret with a clear timing signal.
pub fn spectre_v1(scheme: Scheme) -> AttackOutcome {
    let secret = 0x47; // 'G'
    let (got, timings) = run(scheme, secret);
    let leaked = got == secret;
    let t_secret = timings[secret as usize];
    let t_other = timings[(secret as usize + 13) % 256];
    AttackOutcome {
        scheme: scheme.name(),
        leaked,
        evidence: format!(
            "planted {secret:#04x}, recovered {got:#04x}; probe(secret)={t_secret} \
             probe(other)={t_other}"
        ),
    }
}

/// Leaks a whole string one byte per machine run (the classic PoC loop),
/// retrying each byte with a different probe order when the timing signal
/// is inconclusive. Returns `(recovered, planted)`.
pub fn spectre_v1_string(scheme: Scheme, secret: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let recovered = secret
        .iter()
        .map(|&b| {
            (0..4)
                .map(|salt| run_salted(scheme, b, salt).0)
                .find(|&got| got != 0)
                .unwrap_or(0)
        })
        .collect();
    (recovered, secret.to_vec())
}
