//! Spectre-family attacks run against the simulated microarchitecture —
//! the security litmus tests for the paper's threat model (§1.1).
//!
//! Each attack is a real program in the simulator's ISA: the attacker
//! trains the branch predictor, triggers transient execution with real
//! secret data, and measures timing with `rdcycle`. The harness then
//! checks whether the secret was recovered.
//!
//! Three channels, matching the paper's motivation:
//!
//! * [`spectre_v1`] — the classic bounds-check-bypass cache channel
//!   (Kocher et al.): a transient out-of-bounds load indexes a probe
//!   array; evict-and-time recovers the byte.
//! * [`spectre_rewind`] — the backwards-in-time structural-hazard
//!   channel (Fustos et al., §2.2): transient divides, gated on a secret
//!   bit, contend with an *older* in-flight divide whose completion time
//!   the attacker measures. Closed by §4.9 strictness-ordered FU
//!   scheduling.
//! * [`speculative_interference`] — the MSHR-occupancy channel (Behnia
//!   et al.): transient loads, gated on a secret bit, consume MSHRs and
//!   delay an older load. Closed by leapfrogging (§4.5).

mod interference;
mod rewind;
mod v1;

pub use interference::speculative_interference;
pub use rewind::spectre_rewind;
pub use v1::{spectre_v1, spectre_v1_string};

/// Test/debug hook: exposes the interference attack program.
#[doc(hidden)]
pub fn __intf_program_for_debug(bit: u8) -> gm_isa::Program {
    interference::program_for_debug(bit)
}

/// Test/debug hook: exposes the Spectre v1 attack program.
#[doc(hidden)]
pub fn __v1_program_for_debug(secret: u8) -> gm_isa::Program {
    v1::program_for_debug(secret)
}

use ghostminion::Scheme;

/// Outcome of one attack attempt.
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    /// Scheme the attack ran against.
    pub scheme: &'static str,
    /// Whether the attacker recovered the secret.
    pub leaked: bool,
    /// Human-readable evidence (timings, recovered values).
    pub evidence: String,
}

/// Runs all three attacks against `scheme` and returns the outcomes in
/// order (v1, rewind, interference).
pub fn run_all(scheme: Scheme) -> Vec<AttackOutcome> {
    vec![
        spectre_v1(scheme),
        spectre_rewind(scheme),
        speculative_interference(scheme),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectre_v1_leaks_on_unsafe_baseline() {
        let o = spectre_v1(Scheme::unsafe_baseline());
        assert!(o.leaked, "unsafe must leak: {}", o.evidence);
    }

    #[test]
    fn spectre_v1_defeated_by_ghostminion() {
        let o = spectre_v1(Scheme::ghost_minion());
        assert!(!o.leaked, "GhostMinion must not leak: {}", o.evidence);
    }

    #[test]
    fn spectre_v1_defeated_by_dminion_timeless_too() {
        // Classic forward-in-time Spectre is already stopped by a wiped,
        // untimestamped minion (Fig. 9's DMinion-Timeless)...
        let o = spectre_v1(Scheme::dminion_timeless());
        assert!(!o.leaked, "{}", o.evidence);
    }

    #[test]
    fn spectre_v1_leaks_on_muontrap_base() {
        // ...but MuonTrap without flush retains speculative data past the
        // squash, so the classic channel remains for a same-address-space
        // attacker (MuonTrap targets cross-process attacks).
        let o = spectre_v1(Scheme::muontrap());
        assert!(o.leaked, "{}", o.evidence);
    }

    #[test]
    fn spectre_v1_defeated_by_muontrap_flush() {
        let o = spectre_v1(Scheme::muontrap_flush());
        assert!(!o.leaked, "{}", o.evidence);
    }

    #[test]
    fn spectre_v1_defeated_by_invisispec_and_stt() {
        for s in [
            Scheme::invisispec_spectre(),
            Scheme::invisispec_future(),
            Scheme::stt_spectre(),
            Scheme::stt_future(),
        ] {
            let o = spectre_v1(s);
            assert!(!o.leaked, "{} must not leak: {}", o.scheme, o.evidence);
        }
    }

    #[test]
    fn rewind_leaks_without_strict_fu_order() {
        let o = spectre_rewind(Scheme::ghost_minion());
        assert!(
            o.leaked,
            "GhostMinion without §4.9 FU ordering leaves the divider channel: {}",
            o.evidence
        );
    }

    #[test]
    fn rewind_closed_by_strict_fu_order() {
        let mut s = Scheme::ghost_minion();
        s.strict_fu_order = true;
        let o = spectre_rewind(s);
        assert!(!o.leaked, "{}", o.evidence);
    }

    #[test]
    fn interference_leaks_on_unsafe() {
        let o = speculative_interference(Scheme::unsafe_baseline());
        assert!(o.leaked, "{}", o.evidence);
    }

    #[test]
    fn interference_closed_by_ghostminion_leapfrogging() {
        let o = speculative_interference(Scheme::ghost_minion());
        assert!(!o.leaked, "{}", o.evidence);
    }

    #[test]
    fn string_recovery_on_unsafe() {
        let (recovered, secret) = spectre_v1_string(Scheme::unsafe_baseline(), b"GHOST");
        assert_eq!(recovered, secret, "full string must leak byte by byte");
    }
}
