//! The reorder buffer.
//!
//! Entries are identified by their global sequence number (`seq`), which
//! doubles as the paper's Temporal-Order timestamp: rename allocates
//! sequence numbers in (speculative) program order, exactly as §4.4
//! assigns timestamps at issue into the pipeline.

use crate::bpred::RasCheckpoint;
use crate::regfile::PhysReg;
use gm_isa::{Inst, Op};
use std::collections::VecDeque;

/// Execution status of a ROB entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RobStatus {
    /// Waiting in the issue queue (or LSQ) for operands/resources.
    Waiting,
    /// Issued to a functional unit or the memory system.
    Issued,
    /// Result produced; may commit when it reaches the head.
    Done,
}

/// One in-flight instruction.
#[derive(Clone, Debug)]
pub struct RobEntry {
    /// Global sequence number == Temporal-Order timestamp.
    pub seq: u64,
    /// Instruction index in the program.
    pub pc: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// Pipeline progress of this entry.
    pub status: RobStatus,
    /// New physical destination, if any.
    pub phys_rd: Option<PhysReg>,
    /// Previous mapping of the destination (squash/commit bookkeeping).
    pub old_phys_rd: Option<PhysReg>,
    /// Cycle the result becomes available.
    pub done_at: u64,
    /// Computed result value (for destination writeback at writeback
    /// time; loads fill this from memory).
    pub result: u64,
    // ---- control flow ----
    /// Predicted direction for conditional branches (or `true` for
    /// unconditional).
    pub pred_taken: bool,
    /// Predicted next pc.
    pub pred_target: u64,
    /// Global-history snapshot for repair/training.
    pub ghist_before: u64,
    /// RAS repair checkpoint for call/return instructions.
    pub ras_cp: Option<RasCheckpoint>,
    /// Set at resolution when prediction was wrong.
    pub mispredicted: bool,
    /// Resolved direction (conditional branches).
    pub taken: bool,
    /// Resolved next pc.
    pub actual_target: u64,
    // ---- memory ----
    /// Line address the instruction was fetched from (IMinion commit
    /// notification, §4.8).
    pub fetch_line: u64,
    /// Load/store queue slot, identified by seq (the queues are searched
    /// by seq).
    pub is_mem: bool,
    /// For loads: the resolved byte address (after AGU).
    pub mem_addr: Option<u64>,
    /// STT: whether this load was issued while speculative (its dest is
    /// tainted).
    pub issued_speculatively: bool,
    /// STT: whether the computed result derives from tainted sources.
    pub result_tainted: bool,
}

impl RobEntry {
    fn new(seq: u64, pc: u64, inst: Inst, fetch_line: u64) -> Self {
        Self {
            seq,
            pc,
            inst,
            status: RobStatus::Waiting,
            phys_rd: None,
            old_phys_rd: None,
            done_at: 0,
            result: 0,
            pred_taken: false,
            pred_target: pc + 1,
            ghist_before: 0,
            ras_cp: None,
            mispredicted: false,
            taken: false,
            actual_target: pc + 1,
            fetch_line,
            is_mem: inst.op.is_mem(),
            mem_addr: None,
            issued_speculatively: false,
            result_tainted: false,
        }
    }
}

/// The reorder buffer: a bounded FIFO of in-flight instructions ordered
/// by sequence number.
///
/// Three sorted watch lists mirror the entries so the per-cycle ordering
/// queries the issue and LSQ stages ask — "is there an older unresolved
/// branch / pending memory op / fence?" — are O(1) reads of the oldest
/// watched seq instead of prefix scans of the whole buffer.
#[derive(Clone, Debug)]
pub struct Rob {
    entries: VecDeque<RobEntry>,
    /// The entries' seqs, mirrored densely: `seqs[i] == entries[i].seq`.
    /// Seq lookups binary-search this deque instead of `entries` — the
    /// whole window is a handful of cache lines, versus one line per
    /// probed ~200-byte entry.
    seqs: VecDeque<u64>,
    capacity: usize,
    /// Seqs of control-flow entries whose status is not yet `Done`.
    unresolved_ctrl: Vec<u64>,
    /// Seqs of memory entries whose status is not yet `Done`.
    unresolved_mem: Vec<u64>,
    /// Seqs of in-flight fences (watched until commit, not completion).
    fences: Vec<u64>,
    /// `done_at` of the head entry when its status is [`RobStatus::Done`],
    /// else `u64::MAX` (including when the buffer is empty). Maintained by
    /// [`Rob::set_done_at`] and every operation that changes which entry
    /// is at the front, so commit gating ([`Rob::head_ready`]) and wake
    /// computation ([`Rob::head_done_at`]) never re-probe `entries.front()`.
    head_done_at: u64,
}

/// Removes `seq` from a sorted watch list, if present.
fn unwatch(list: &mut Vec<u64>, seq: u64) {
    if let Ok(i) = list.binary_search(&seq) {
        list.remove(i);
    }
}

impl Rob {
    /// Creates an empty ROB with the given capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB needs at least one entry");
        Self {
            entries: VecDeque::with_capacity(capacity),
            seqs: VecDeque::with_capacity(capacity),
            capacity,
            unresolved_ctrl: Vec::new(),
            unresolved_mem: Vec::new(),
            fences: Vec::new(),
            head_done_at: u64::MAX,
        }
    }

    /// Remaining capacity.
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Number of in-flight instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ROB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Allocates an entry at the tail.
    ///
    /// # Panics
    ///
    /// Panics when full (caller must check [`Rob::free`]) or when `seq`
    /// does not exceed the current tail (program order violation).
    pub fn push(&mut self, seq: u64, pc: u64, inst: Inst, fetch_line: u64) -> &mut RobEntry {
        assert!(self.free() > 0, "ROB overflow");
        if let Some(tail) = self.entries.back() {
            assert!(seq > tail.seq, "sequence numbers must be monotonic");
        }
        if inst.op.is_ctrl() {
            self.unresolved_ctrl.push(seq);
        }
        if inst.op.is_mem() {
            self.unresolved_mem.push(seq);
        }
        if inst.op == Op::Fence {
            self.fences.push(seq);
        }
        self.seqs.push_back(seq);
        self.entries
            .push_back(RobEntry::new(seq, pc, inst, fetch_line));
        self.entries.back_mut().expect("just pushed")
    }

    /// Looks up an entry by sequence number.
    pub fn get(&self, seq: u64) -> Option<&RobEntry> {
        self.index_of(seq).map(|i| &self.entries[i])
    }

    /// Mutable lookup by sequence number.
    ///
    /// Callers must not set `status` to [`RobStatus::Done`] through this
    /// handle — that is [`Rob::set_done`]/[`Rob::set_done_at`]'s job, and
    /// going around them would leave the watch lists and the cached
    /// [`Rob::head_done_at`] stale.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        self.index_of(seq).map(move |i| &mut self.entries[i])
    }

    fn index_of(&self, seq: u64) -> Option<usize> {
        // Seqs are allocated consecutively, so `seq - front` is the
        // exact index unless a squash gap sits in between — check that
        // guess first and fall back to binary search over the dense
        // mirror only when a gap (or absence) disproves it.
        let &front = self.seqs.front()?;
        if let Some(guess) = seq.checked_sub(front) {
            let guess = guess as usize;
            if guess < self.seqs.len() && self.seqs[guess] == seq {
                return Some(guess);
            }
        }
        self.seqs.binary_search(&seq).ok()
    }

    /// Position of the entry with sequence `seq`, for repeated O(1)
    /// access through [`Rob::at`]/[`Rob::at_mut`] — one search where a
    /// `get`/`get_mut` pair would do two. Positions are stable until the
    /// buffer's membership changes (push, pop, squash of *older-or-equal*
    /// entries; squashing strictly younger entries keeps `i` valid).
    pub fn find(&self, seq: u64) -> Option<usize> {
        self.index_of(seq)
    }

    /// The entry at position `i` (see [`Rob::find`]).
    pub fn at(&self, i: usize) -> &RobEntry {
        &self.entries[i]
    }

    /// Mutable entry at position `i` (see [`Rob::find`]).
    ///
    /// The same caveat as [`Rob::get_mut`] applies: never set `status` to
    /// [`RobStatus::Done`] through this handle.
    pub fn at_mut(&mut self, i: usize) -> &mut RobEntry {
        &mut self.entries[i]
    }

    /// [`Rob::set_done`] for an already-located entry: marks position
    /// `i` done at `now` and releases it from the ordering watch lists
    /// its op is actually on.
    pub fn set_done_at(&mut self, i: usize, now: u64) {
        let e = &mut self.entries[i];
        e.status = RobStatus::Done;
        e.done_at = now;
        if i == 0 {
            self.head_done_at = now;
        }
        let e = &self.entries[i];
        let (seq, op) = (e.seq, e.inst.op);
        if op.is_ctrl() {
            unwatch(&mut self.unresolved_ctrl, seq);
        }
        if op.is_mem() {
            unwatch(&mut self.unresolved_mem, seq);
        }
    }

    /// The oldest entry.
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Whether the head entry has a result ready to commit at `now`:
    /// its status is [`RobStatus::Done`] and `done_at <= now`. O(1) —
    /// reads the maintained cache instead of probing `entries.front()`.
    /// `now` must be below `u64::MAX` (the not-done sentinel); cycle
    /// counts are bounded by `max_cycles` in practice.
    pub fn head_ready(&self, now: u64) -> bool {
        debug_assert_eq!(
            self.head_done_at,
            match self.entries.front() {
                Some(e) if e.status == RobStatus::Done => e.done_at,
                _ => u64::MAX,
            },
            "head_done_at cache out of sync"
        );
        self.head_done_at <= now
    }

    /// The head entry's `done_at` when it is [`RobStatus::Done`], else
    /// `u64::MAX` (also when empty). O(1) companion to
    /// [`Rob::head_ready`] for wake computation.
    pub fn head_done_at(&self) -> u64 {
        self.head_done_at
    }

    /// Recomputes the cached head-done timestamp from the current front
    /// entry. Called whenever a different entry (or none) becomes the
    /// head.
    fn refresh_head_done(&mut self) {
        self.head_done_at = match self.entries.front() {
            Some(e) if e.status == RobStatus::Done => e.done_at,
            _ => u64::MAX,
        };
    }

    /// Removes and returns the oldest entry (commit).
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        self.unwatch_head()?;
        self.seqs.pop_front();
        let head = self.entries.pop_front();
        self.refresh_head_done();
        head
    }

    /// Removes the oldest entry without moving it out — the cheap commit
    /// path for callers that already read what they need from
    /// [`Rob::head`] (a `RobEntry` is a couple of hundred bytes; the
    /// copy [`Rob::pop_head`] returns is pure memcpy traffic when it is
    /// immediately dropped).
    pub fn drop_head(&mut self) {
        self.unwatch_head().expect("drop_head on an empty ROB");
        self.seqs.pop_front();
        self.entries.pop_front();
        self.refresh_head_done();
    }

    /// Releases the head from the ordering watch lists it is still on.
    /// A committing entry is `Done`, so the ctrl/mem lists were already
    /// pruned by `set_done`; fences stay watched until here.
    fn unwatch_head(&mut self) -> Option<()> {
        let head = self.entries.front()?;
        let (seq, op) = (head.seq, head.inst.op);
        if op.is_ctrl() {
            unwatch(&mut self.unresolved_ctrl, seq);
        }
        if op.is_mem() {
            unwatch(&mut self.unresolved_mem, seq);
        }
        if op == Op::Fence {
            unwatch(&mut self.fences, seq);
        }
        Some(())
    }

    /// Marks `seq` as executed: sets its status to [`RobStatus::Done`]
    /// with result time `now` and releases it from the ordering watch
    /// lists. Returns the entry for further writeback bookkeeping, or
    /// `None` if it was squashed while in flight.
    pub fn set_done(&mut self, seq: u64, now: u64) -> Option<&mut RobEntry> {
        let i = self.index_of(seq)?;
        self.set_done_at(i, now);
        Some(&mut self.entries[i])
    }

    /// Removes every entry with `seq > above`, youngest first, invoking
    /// `on_squash` for each (rename rollback). Returns how many were
    /// squashed.
    pub fn squash_above(&mut self, above: u64, mut on_squash: impl FnMut(&RobEntry)) -> usize {
        for list in [
            &mut self.unresolved_ctrl,
            &mut self.unresolved_mem,
            &mut self.fences,
        ] {
            while list.last().is_some_and(|&s| s > above) {
                list.pop();
            }
        }
        let mut n = 0;
        while self.entries.back().is_some_and(|e| e.seq > above) {
            let e = self.entries.pop_back().expect("checked non-empty");
            self.seqs.pop_back();
            on_squash(&e);
            n += 1;
        }
        // Squash removes from the tail, so the head (and its cached
        // done-at) only changes when the whole window is emptied.
        if self.entries.is_empty() {
            self.head_done_at = u64::MAX;
        }
        n
    }

    /// Iterates oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Whether any entry older than `seq` satisfies `pred`.
    pub fn any_older(&self, seq: u64, pred: impl FnMut(&RobEntry) -> bool) -> bool {
        self.entries.iter().take_while(|e| e.seq < seq).any(pred)
    }

    /// Whether a control-flow entry older than `seq` has not produced
    /// its result yet. O(1): reads the oldest watched seq.
    pub fn older_unresolved_ctrl(&self, seq: u64) -> bool {
        self.unresolved_ctrl.first().is_some_and(|&s| s < seq)
    }

    /// Whether a memory entry older than `seq` has not completed yet.
    /// O(1): reads the oldest watched seq.
    pub fn older_pending_mem(&self, seq: u64) -> bool {
        self.unresolved_mem.first().is_some_and(|&s| s < seq)
    }

    /// Whether a fence older than `seq` is still in flight (fences are
    /// watched until they commit). O(1): reads the oldest watched seq.
    pub fn older_fence(&self, seq: u64) -> bool {
        self.fences.first().is_some_and(|&s| s < seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_isa::Inst;

    /// A finite "any time" for readiness probes — `u64::MAX` is the
    /// cache's not-done sentinel and not a valid `now`.
    const FOREVER: u64 = u64::MAX - 1;

    fn rob3() -> Rob {
        let mut r = Rob::new(8);
        for seq in [10, 11, 12] {
            r.push(seq, seq, Inst::nop(), 0);
        }
        r
    }

    #[test]
    fn push_lookup_and_capacity() {
        let mut r = Rob::new(2);
        assert_eq!(r.free(), 2);
        r.push(1, 0, Inst::nop(), 0);
        assert_eq!(r.free(), 1);
        assert!(r.get(1).is_some());
        assert!(r.get(2).is_none());
        r.push(5, 1, Inst::nop(), 0);
        assert_eq!(r.free(), 0);
        assert_eq!(r.get(5).unwrap().pc, 1);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut r = Rob::new(1);
        r.push(1, 0, Inst::nop(), 0);
        r.push(2, 1, Inst::nop(), 0);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn non_monotonic_seq_panics() {
        let mut r = Rob::new(4);
        r.push(5, 0, Inst::nop(), 0);
        r.push(5, 1, Inst::nop(), 0);
    }

    #[test]
    fn commit_pops_in_order() {
        let mut r = rob3();
        assert_eq!(r.pop_head().unwrap().seq, 10);
        assert_eq!(r.head().unwrap().seq, 11);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn squash_above_removes_youngest_first() {
        let mut r = rob3();
        let mut order = Vec::new();
        let n = r.squash_above(10, |e| order.push(e.seq));
        assert_eq!(n, 2);
        assert_eq!(order, vec![12, 11], "youngest squashed first");
        assert_eq!(r.len(), 1);
        assert!(r.get(11).is_none());
        assert!(r.get(10).is_some());
    }

    #[test]
    fn squash_above_tail_is_noop() {
        let mut r = rob3();
        assert_eq!(r.squash_above(99, |_| panic!("nothing to squash")), 0);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn any_older_scans_strictly_older() {
        let mut r = rob3();
        r.set_done(10, 0);
        assert!(!r.any_older(11, |e| e.status != RobStatus::Done));
        assert!(r.any_older(12, |e| e.status != RobStatus::Done)); // 11 waiting
        assert!(!r.any_older(10, |_| true), "head has nothing older");
    }

    #[test]
    fn watch_lists_answer_ordering_queries_in_o1() {
        use gm_isa::{Op, Reg};
        let mut r = Rob::new(8);
        let inst = |op| Inst::new(op, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0);
        r.push(10, 0, inst(Op::Beq), 0); // ctrl
        r.push(11, 1, inst(Op::Ld(gm_isa::MemSize::B8)), 0); // mem
        r.push(12, 2, inst(Op::Fence), 0);
        r.push(13, 3, Inst::nop(), 0);
        assert!(r.older_unresolved_ctrl(11));
        assert!(!r.older_unresolved_ctrl(10), "nothing older than head");
        assert!(r.older_pending_mem(13));
        assert!(!r.older_pending_mem(11));
        assert!(r.older_fence(13));
        assert!(!r.older_fence(12));

        // Completion releases ctrl/mem watches...
        assert!(r.set_done(10, 5).is_some());
        assert!(!r.older_unresolved_ctrl(13));
        assert!(r.set_done(11, 6).is_some());
        assert!(!r.older_pending_mem(13));
        // ...but fences stay watched until they commit.
        assert!(r.set_done(12, 7).is_some());
        assert!(r.older_fence(13));
        r.pop_head(); // 10
        r.pop_head(); // 11
        r.pop_head(); // 12 — fence leaves the window
        assert!(!r.older_fence(13));
    }

    #[test]
    fn squash_prunes_watch_lists() {
        use gm_isa::{Op, Reg};
        let mut r = Rob::new(8);
        let inst = |op| Inst::new(op, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0);
        r.push(10, 0, Inst::nop(), 0);
        r.push(11, 1, inst(Op::Beq), 0);
        r.push(12, 2, inst(Op::Ld(gm_isa::MemSize::B8)), 0);
        r.push(13, 3, inst(Op::Fence), 0);
        r.squash_above(10, |_| {});
        assert!(!r.older_unresolved_ctrl(u64::MAX));
        assert!(!r.older_pending_mem(u64::MAX));
        assert!(!r.older_fence(u64::MAX));
        // set_done on a squashed seq reports the miss.
        assert!(r.set_done(12, 9).is_none());
    }

    #[test]
    fn head_ready_tracks_head_completion() {
        let mut r = rob3();
        assert!(!r.head_ready(FOREVER), "waiting head is never ready");
        assert_eq!(r.head_done_at(), u64::MAX);

        // A non-head completion leaves the head cache untouched...
        r.set_done(11, 3);
        assert!(!r.head_ready(FOREVER));
        // ...while a head completion publishes its done-at.
        r.set_done(10, 5);
        assert_eq!(r.head_done_at(), 5);
        assert!(!r.head_ready(4), "result not available yet");
        assert!(r.head_ready(5));

        // Commit promotes the already-done successor into the cache.
        r.pop_head();
        assert_eq!(r.head_done_at(), 3);
        assert!(r.head_ready(3));
        r.drop_head();
        assert!(!r.head_ready(FOREVER), "12 is still waiting");
        r.set_done(12, 9);
        r.pop_head();
        assert_eq!(r.head_done_at(), u64::MAX, "empty ROB is never ready");
    }

    #[test]
    fn head_ready_survives_squash() {
        let mut r = rob3();
        r.set_done(10, 2);
        r.squash_above(10, |_| {});
        assert!(r.head_ready(2), "tail squash keeps the done head");
        r.squash_above(0, |_| {});
        assert_eq!(r.head_done_at(), u64::MAX, "full squash clears the cache");
        // Refill after the squash: the fresh head starts un-done.
        r.push(20, 0, Inst::nop(), 0);
        assert!(!r.head_ready(FOREVER));
        r.set_done(20, 7);
        assert_eq!(r.head_done_at(), 7);
    }

    #[test]
    fn lookup_after_commits_and_squashes() {
        let mut r = rob3();
        r.pop_head();
        r.squash_above(11, |_| {});
        assert!(r.get(10).is_none());
        assert!(r.get(12).is_none());
        assert_eq!(r.get(11).unwrap().seq, 11);
        // Push a new post-squash seq with a gap.
        r.push(20, 7, Inst::nop(), 0);
        assert_eq!(r.get(20).unwrap().pc, 7);
    }
}
