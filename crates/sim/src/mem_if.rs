//! The interface between the core and the memory system.
//!
//! `gm-sim` is mitigation-agnostic; every scheme in the paper (GhostMinion
//! and all baselines) is a different implementation of [`MemoryBackend`]
//! in the `ghostminion` crate. The interface is shaped by the paper's
//! mechanisms:
//!
//! * loads carry a **timestamp** (`ts`) so the backend can apply
//!   TimeGuarding and leapfrogging;
//! * loads can be **cancelled in flight** when an older request leapfrogs
//!   them out of an MSHR (§4.5) — the core drains
//!   [`MemoryBackend::take_cancellations`] each cycle and replays;
//! * **commit notifications** let the backend move data from a
//!   GhostMinion into the L1 (§4.3), run InvisiSpec-style exposure loads,
//!   or train prefetchers non-speculatively (§4.7);
//! * **squash notifications** wipe speculative state above a timestamp
//!   (§4.2, footnote 2).

/// Identifies an in-flight load issued to the backend, so a leapfrog
/// cancellation can be routed back to the owning load-queue entry.
pub type Ticket = u64;

/// What kind of access a request is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Data load (speculative at issue time).
    Load,
    /// Data store (non-speculative: performed at commit).
    Store,
    /// Instruction fetch.
    Ifetch,
}

/// A memory request from the core.
#[derive(Clone, Copy, Debug)]
pub struct MemReq {
    /// Issuing core index.
    pub core: usize,
    /// Byte address.
    pub addr: u64,
    /// Access size in bytes (1–8); ignored for ifetch (whole line).
    pub size: u64,
    /// Temporal-Order timestamp: the instruction's sequence number.
    pub ts: u64,
    /// Program counter of the instruction (prefetcher training index).
    pub pc: u64,
    /// Current cycle.
    pub now: u64,
    /// `true` while the instruction may still be squashed. Commit-time
    /// requests pass `false` and must never touch speculative structures.
    pub speculative: bool,
    /// What kind of access this is.
    pub kind: AccessKind,
}

/// Backend response to a timed load/ifetch request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadResp {
    /// The access was accepted; data is usable at cycle `at`. `ticket`
    /// identifies it for possible later cancellation, and
    /// `filled_locally` reports whether the data was retained in a
    /// core-local speculative structure (it may not be, e.g. a
    /// TimeGuarded GhostMinion fill that found no legal slot, §4.4).
    Done {
        /// Cycle at which the data becomes usable.
        at: u64,
        /// Handle for a later leapfrog cancellation.
        ticket: Ticket,
        /// Whether the data was retained in a core-local speculative
        /// structure.
        filled_locally: bool,
    },
    /// No resources (e.g. all MSHRs held by requests this one must not
    /// displace); retry no earlier than `at`.
    Retry {
        /// Earliest cycle at which the core should retry.
        at: u64,
    },
}

impl LoadResp {
    /// The completion cycle for accepted accesses.
    pub fn done_at(&self) -> Option<u64> {
        match self {
            LoadResp::Done { at, .. } => Some(*at),
            LoadResp::Retry { .. } => None,
        }
    }
}

/// The memory system a core talks to. Implemented per mitigation scheme
/// by the `ghostminion` crate; a trivial fixed-latency implementation
/// lives in this crate's tests.
pub trait MemoryBackend {
    /// Issues a (speculative) data load.
    fn load(&mut self, req: &MemReq) -> LoadResp;

    /// Notifies that a load is committing. Returns the cycle at which the
    /// commit may proceed (≥ `req.now`); schemes whose commit path is off
    /// the critical path return `req.now` unchanged, whereas e.g.
    /// InvisiSpec's exposure load returns a later cycle.
    fn commit_load(&mut self, req: &MemReq) -> u64;

    /// Performs a store at commit: timing (write-allocate, coherence
    /// upgrade) and the functional write of `value`. Does not block
    /// commit; contention appears through shared MSHR/bus state.
    fn store_commit(&mut self, req: &MemReq, value: u64);

    /// Issues an instruction fetch for the line containing `req.addr`.
    fn ifetch(&mut self, req: &MemReq) -> LoadResp;

    /// Notifies that an instruction fetched from `line_addr` committed,
    /// so an instruction-side minion may promote the line (§4.8).
    fn commit_ifetch(&mut self, core: usize, line_addr: u64, now: u64);

    /// Squash: wipe core-local speculative state with timestamp strictly
    /// greater than `above_ts` (§4.2: timing-invariant single-cycle wipe).
    /// `max_ts` is the youngest squashed timestamp (for order auditing).
    fn squash(&mut self, core: usize, above_ts: u64, max_ts: u64, now: u64);

    /// Drains tickets of in-flight loads the backend cancelled (leapfrog
    /// steals, §4.5). The core replays those loads.
    fn take_cancellations(&mut self, core: usize) -> Vec<Ticket>;

    /// Whether `core` may have cancellations waiting — the one channel
    /// through which the backend pushes events *at* a core. A quiescent
    /// core re-ticks early only when this returns `true`, so backends
    /// that can answer cheaply should override it; the conservative
    /// default keeps unoptimised backends correct (the core simply
    /// re-runs its stages every cycle, as it always did).
    fn cancellations_pending(&self, _core: usize) -> bool {
        true
    }

    /// Functional read with no timing side effects (used for load values
    /// and by test oracles).
    fn read_value(&self, addr: u64, size: u64) -> u64;

    /// Functional write with no timing side effects (used to set up
    /// initial program data).
    fn write_value(&mut self, addr: u64, value: u64, size: u64);

    /// Bulk functional write of a whole byte slice (program-image
    /// installation). Semantically identical to a loop of
    /// [`write_value`](Self::write_value) calls — the default *is* that
    /// loop — but backends with a line-granular functional memory
    /// should override it: installing a multi-MiB data segment word by
    /// word through dynamic dispatch costs more than simulating the
    /// program that uses it.
    fn write_bytes(&mut self, base: u64, bytes: &[u8]) {
        let mut addr = base;
        for chunk in bytes.chunks(8) {
            let mut v = 0u64;
            for (i, b) in chunk.iter().enumerate() {
                v |= (*b as u64) << (8 * i);
            }
            self.write_value(addr, v, chunk.len() as u64);
            addr += chunk.len() as u64;
        }
    }

    /// Like [`write_bytes`](Self::write_bytes), but the image arrives
    /// as a shared reference-counted slice. Backends whose functional
    /// memory can alias it (copy-on-write) should override this to
    /// install the `Arc` itself — program images are the bulk of a
    /// machine's construction cost, and most workloads never store
    /// into them. The default copies.
    fn write_bytes_shared(&mut self, base: u64, bytes: &std::sync::Arc<[u8]>) {
        self.write_bytes(base, bytes);
    }

    /// Sets a load-linked reservation for `core` on `addr`'s line,
    /// tagged with the LL's sequence number.
    fn ll_reserve(&mut self, core: usize, addr: u64, ts: u64);

    /// Attempts a store-conditional with sequence `ts`: returns `true`
    /// (and consumes the reservation) if a reservation from an *older*
    /// load-linked is intact. Requiring `ll_ts < ts` prevents a
    /// speculative LL from a later loop iteration re-arming the
    /// reservation after a remote store cleared it.
    fn sc_try(&mut self, core: usize, addr: u64, ts: u64) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn done_at_extracts_completion() {
        let d = LoadResp::Done {
            at: 42,
            ticket: 1,
            filled_locally: true,
        };
        assert_eq!(d.done_at(), Some(42));
        assert_eq!(LoadResp::Retry { at: 9 }.done_at(), None);
    }
}
