//! The out-of-order pipeline engine.
//!
//! Stage order within one [`Core::tick`] is writeback → commit → issue →
//! LSQ → rename → fetch, so results produced in cycle *n* can wake
//! dependents issuing in cycle *n* (back-to-back execution), and resources
//! freed by commit are reusable the same cycle.
//!
//! Speculation is real: fetch follows the branch predictor, wrong-path
//! instructions execute with real values (reading real memory through the
//! backend, which is precisely how Spectre gadgets obtain secrets), and a
//! resolved misprediction squashes younger instructions, rolls back the
//! rename map youngest-first, repairs predictor history, and notifies the
//! memory backend so it can wipe speculative state above the squashing
//! timestamp (§4.2).

use crate::bpred::{BranchUpdate, TournamentPredictor};
use crate::config::{CoreConfig, TaintMode};
use crate::fu::FuPool;
use crate::lsq::{ForwardResult, LoadQueue, LoadState, StoreQueue};
use crate::mem_if::{AccessKind, LoadResp, MemReq, MemoryBackend};
use crate::regfile::{PhysReg, RegFile};
use crate::rob::{Rob, RobStatus};
use crate::trace::{SquashCause, TraceEvent, TraceSink};
use crate::wakeup::WakeupTable;
use gm_isa::{alu_eval, branch_taken, pc_to_addr, FuClass, Inst, Op, Program, Reg};
use gm_mem::line_addr;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::rc::Rc;

/// Data-cache ports: loads/stores the LSQ may send to memory per cycle.
const MEM_PORTS: usize = 2;

/// An instruction-cache response within this many cycles of `now` is
/// treated as pipelined (no fetch stall); anything slower stalls fetch.
const IFETCH_PIPELINED: u64 = 3;

/// Cycles with no commit before the engine assumes deadlock and panics.
const DEADLOCK_CYCLES: u64 = 200_000;

#[derive(Clone, Debug)]
struct Fetched {
    pc: u64,
    inst: Inst,
    pred_taken: bool,
    pred_target: u64,
    ghist_before: u64,
    ras_cp: Option<crate::bpred::RasCheckpoint>,
    avail_at: u64,
    fetch_line: u64,
    /// Cycle the frontend fetched this instruction (trace only).
    fetched_at: u64,
}

#[derive(Clone, Copy, Debug)]
struct IqEntry {
    seq: u64,
    srcs: [Option<PhysReg>; 2],
    class: FuClass,
}

const EV_EXEC: u64 = 0;
const EV_LOAD: u64 = 1;

/// Dispatches one pipeline stage behind its pending-work predicate,
/// recording run/skip counts and stage wall-time when the `stage-prof`
/// feature is enabled (and compiling down to a bare `if` when it is
/// not).
macro_rules! gated_stage {
    ($stage:ident, $pred:expr, $body:block) => {
        #[cfg(feature = "stage-prof")]
        {
            if $pred {
                let __stage_start = std::time::Instant::now();
                $body
                crate::prof::record_run(crate::prof::Stage::$stage, __stage_start.elapsed());
            } else {
                crate::prof::record_skip(crate::prof::Stage::$stage);
            }
        }
        #[cfg(not(feature = "stage-prof"))]
        {
            if $pred $body
        }
    };
}

/// Which issue-stage implementation a core runs.
///
/// Both are bit-identical; the linear scan is kept as the oracle the
/// wakeup-equivalence tests compare against (the same role
/// [`Core::run_lockstep`] plays for cycle skipping).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IssueMode {
    /// Event-driven: writeback wakes the IQ slots waiting on the
    /// produced register, and issue selects (oldest-first) from a
    /// maintained ready set — O(instructions woken + issued).
    #[default]
    Event,
    /// Reference: scan the whole IQ every cycle re-checking every
    /// entry's source ready bits — O(IQ occupancy).
    Scan,
}

/// What one [`Core::tick`] did, for the cycle-skipping run loops.
///
/// A tick makes *progress* when it changes any observable state: pops a
/// writeback event, commits, issues, touches the memory backend, renames,
/// or fetches. A tick with no progress is *quiescent*; re-ticking a
/// quiescent core before `next_wake` is guaranteed to be quiescent again
/// with identical per-cycle stall counters, so the run loop may jump
/// `now` straight to `next_wake` after calling
/// [`Core::account_idle_cycles`] for the elided cycles. This is what
/// makes the skipping engine bit-identical to the per-cycle engine
/// (cycle counts, every statistic, every memory-system interaction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TickOutcome {
    /// Whether any state changed this cycle.
    pub progress: bool,
    /// Earliest cycle at which state *can* change again. `now + 1` after
    /// a progress tick; `u64::MAX` once halted. Always bounded by the
    /// deadlock deadline, so a stuck core still panics at the same cycle
    /// the per-cycle engine would.
    pub next_wake: u64,
}

/// Aggregate per-core statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles this core has ticked (including replayed quiescent ones).
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions fetched (including later-squashed wrong path).
    pub fetched: u64,
    /// Instructions squashed by misprediction recovery.
    pub squashed: u64,
    /// Branch mispredictions taken.
    pub mispredicts: u64,
    /// Loads committed.
    pub loads_committed: u64,
    /// Stores committed.
    pub stores_committed: u64,
    /// Loads satisfied by store-queue forwarding.
    pub load_forwards: u64,
    /// Loads delayed by the STT taint gate.
    pub stt_delays: u64,
    /// Non-pipelined ops delayed by strictness-ordered FU scheduling.
    pub strict_fu_delays: u64,
    /// Loads replayed after a leapfrog cancellation.
    pub load_replays: u64,
    /// Loads rejected with Retry (MSHR pressure).
    pub load_retries: u64,
}

impl CoreStats {
    /// Instructions per cycle over the committed stream.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// One simulated out-of-order core.
pub struct Core {
    cfg: CoreConfig,
    id: usize,
    program: Program,
    bpred: TournamentPredictor,
    regs: RegFile,
    rob: Rob,
    iq: Vec<IqEntry>,
    lq: LoadQueue,
    sq: StoreQueue,
    fu: FuPool,
    fetch_pc: u64,
    fetch_queue: VecDeque<Fetched>,
    cur_fetch_line: Option<u64>,
    fetch_stall_until: u64,
    next_seq: u64,
    halted: bool,
    // (time, seq, kind, ticket) min-heap.
    events: BinaryHeap<Reverse<(u64, u64, u64, u64)>>,
    stall_commit_until: u64,
    /// Load at the ROB head whose commit_load was already issued, with
    /// the cycle it becomes committable (commit_load is called once).
    pending_commit: Option<(u64, u64)>,
    last_commit_cycle: u64,
    last_committed_iline: u64,
    stats: CoreStats,
    /// Which issue-stage implementation to run (Event in production;
    /// Scan is the equivalence-test oracle).
    issue_mode: IssueMode,
    /// Per-physical-register lists of IQ entries waiting on that value.
    wakeup: WakeupTable,
    /// Seqs of IQ entries whose sources are all ready, sorted (so issue
    /// selects oldest-first, exactly like the linear scan did).
    ready_seqs: Vec<u64>,
    /// Seqs of non-pipelined (IntDiv/FpDiv/FpSqrt) IQ entries, sorted.
    /// Under §4.9 strict FU ordering these drive the blocked/strict
    /// accounting even while their sources are not ready.
    nonpipe_seqs: Vec<u64>,
    /// Reusable wakeup drain buffer (no per-writeback allocation).
    scratch_woken: Vec<u64>,
    /// Reusable issue visit list (no per-cycle allocation).
    scratch_visit: Vec<u64>,
    /// Reusable list of seqs issued this cycle (no per-cycle allocation).
    scratch_issued: Vec<u64>,
    /// Loads currently in [`LoadState::Ready`] — the LSQ send stage and
    /// `next_wake` scan the LQ only when this is non-zero, so a queue
    /// full of in-flight loads costs nothing per cycle. Maintained at
    /// every `Ready` transition (AGU, send, forward, cancel-replay) and
    /// recounted after a squash.
    lq_ready: usize,
    /// Whether the current tick changed state (see [`TickOutcome`]).
    tick_progress: bool,
    /// After a quiescent tick: the cycle it reported as `next_wake`.
    /// Until then, re-ticking is guaranteed to be quiescent with
    /// identical per-cycle stall counters (see [`TickOutcome`]), so —
    /// unless the backend has a cancellation waiting, the one channel
    /// that can change this core's state from outside — `tick` replays
    /// the stall counters and returns the cached outcome without
    /// re-running the stages.
    quiet_until: u64,
    /// Whether the quiescence memo above may be used. Disabled by the
    /// lockstep reference loops so the oracle really re-runs every
    /// stage every cycle.
    tick_memo: bool,
    /// Strictness-blocked non-pipelined ops counted this tick.
    idle_strict_fu_delays: u64,
    /// Seqs of STT-parked loads (see [`LoadEntry::parked`]), sorted
    /// ascending. Because visibility is monotone in age — an older load
    /// has a subset of a younger load's possible blockers — the visible
    /// parked loads are always a prefix, so the unpark check is O(1) per
    /// stage run until something actually unparks.
    parked_seqs: Vec<u64>,
    /// Whether the busy path dispatches only stages whose pending-work
    /// predicate holds (see [`Core::tick`]). Disabled by the lockstep
    /// oracles so every stage body really runs every cycle.
    stage_gating: bool,
    /// Earliest future `retry_at` among [`LoadState::Ready`] loads —
    /// `u64::MAX` when none is backing off. Never later than the true
    /// minimum (a too-early wake only re-runs a quiescent tick; a
    /// too-late one would miss the retry): a scheduled retry lowers it
    /// immediately, and it is recomputed exactly whenever the LSQ send
    /// pass scans the whole queue — which every quiescent tick with
    /// `lq_ready > 0` does, so `next_wake` always reads an exact value
    /// without the O(lq) rescan it used to perform.
    lq_retry_min: u64,
    /// Observer of per-instruction lifecycle edges (see
    /// [`TraceSink`]). `None` in production: every hook is then a
    /// single branch and no event is ever constructed. Hooks only
    /// *read* engine state, so an installed sink provably cannot
    /// perturb simulation (pinned by the trace-neutrality oracle
    /// tests).
    trace: Option<Rc<RefCell<dyn TraceSink>>>,
}

impl Core {
    /// Builds a core at reset, about to fetch `program` from pc 0.
    ///
    /// Initial register values from the program are applied; initial data
    /// segments must be installed into the backend by the caller (see
    /// [`Core::install_program_data`]).
    pub fn new(id: usize, cfg: CoreConfig, program: Program) -> Self {
        cfg.validate();
        if let Err(i) = program.validate() {
            panic!(
                "program {:?} has invalid control target at {i}",
                program.name
            );
        }
        let mut regs = RegFile::new(cfg.int_regs, cfg.fp_regs);
        for &(r, v) in &program.init_regs {
            let p = regs.lookup(r);
            regs.write(p, v);
        }
        Self {
            bpred: TournamentPredictor::new(cfg.bpred),
            regs,
            rob: Rob::new(cfg.rob_entries),
            iq: Vec::with_capacity(cfg.iq_entries),
            lq: LoadQueue::new(cfg.lq_entries),
            sq: StoreQueue::new(cfg.sq_entries),
            fu: FuPool::new(cfg.int_alu, cfg.fp_alu, cfg.muldiv),
            fetch_pc: 0,
            fetch_queue: VecDeque::new(),
            cur_fetch_line: None,
            fetch_stall_until: 0,
            next_seq: 1,
            halted: false,
            events: BinaryHeap::new(),
            stall_commit_until: 0,
            pending_commit: None,
            last_commit_cycle: 0,
            last_committed_iline: u64::MAX,
            stats: CoreStats::default(),
            issue_mode: IssueMode::Event,
            wakeup: WakeupTable::new(cfg.int_regs + cfg.fp_regs),
            ready_seqs: Vec::with_capacity(cfg.iq_entries),
            nonpipe_seqs: Vec::with_capacity(cfg.iq_entries),
            scratch_woken: Vec::new(),
            scratch_visit: Vec::with_capacity(cfg.iq_entries),
            scratch_issued: Vec::with_capacity(cfg.issue_width),
            lq_ready: 0,
            tick_progress: false,
            quiet_until: 0,
            tick_memo: true,
            idle_strict_fu_delays: 0,
            parked_seqs: Vec::new(),
            stage_gating: true,
            lq_retry_min: u64::MAX,
            trace: None,
            cfg,
            id,
            program,
        }
    }

    /// Writes the program's initial data segments into the backend's
    /// functional memory. Call once before the first tick.
    pub fn install_program_data(&self, mem: &mut dyn MemoryBackend) {
        for seg in &self.program.data {
            mem.write_bytes_shared(seg.base, &seg.bytes);
        }
    }

    /// Whether `Halt` has committed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// This core's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Selects the issue-stage implementation. [`IssueMode::Event`] is
    /// the default; [`IssueMode::Scan`] is the linear-scan oracle the
    /// equivalence tests run against. Call before the first tick.
    pub fn set_issue_mode(&mut self, mode: IssueMode) {
        self.issue_mode = mode;
    }

    /// Installs a trace sink observing this core's per-instruction
    /// lifecycle edges (see [`TraceSink`]). Cores sharing a machine may
    /// share one sink through clones of the same `Rc` handle. Call
    /// before the first tick; tracing never changes simulated
    /// behaviour.
    pub fn set_trace(&mut self, sink: Rc<RefCell<dyn TraceSink>>) {
        self.trace = Some(sink);
    }

    /// Delivers one trace event if a sink is installed. The closure
    /// defers event construction, so the untraced path is a lone
    /// branch.
    #[inline]
    fn emit(&self, now: u64, make: impl FnOnce() -> TraceEvent) {
        if let Some(t) = &self.trace {
            t.borrow_mut().event(now, self.id, &make());
        }
    }

    /// Writes a result register and wakes the IQ entries waiting on it.
    /// Every in-flight result write must go through here (initial-state
    /// writes in [`Core::new`] predate the first dispatch and need not).
    fn write_reg(&mut self, p: PhysReg, val: u64, now: u64) {
        self.regs.write(p, val);
        if !self.wakeup.is_empty(p) {
            self.wake_waiters(p, now);
        }
    }

    /// Drains `p`'s wakeup list: every waiter whose sources are now all
    /// ready moves into the sorted ready set. Waiters that no longer
    /// resolve in the IQ were squashed after registering — their records
    /// are dropped here (seqs are never reused, so a stale seq cannot
    /// alias a live entry).
    fn wake_waiters(&mut self, p: PhysReg, now: u64) {
        let mut woken = std::mem::take(&mut self.scratch_woken);
        woken.clear();
        self.wakeup.drain_into(p, &mut woken);
        for &seq in &woken {
            let Ok(qi) = self.iq.binary_search_by_key(&seq, |q| q.seq) else {
                continue; // squashed while waiting
            };
            let q = &self.iq[qi];
            if q.srcs.iter().flatten().all(|&s| self.regs.is_ready(s)) {
                // An entry waiting on the same register through both
                // source slots is drained twice; insert it once.
                if let Err(pos) = self.ready_seqs.binary_search(&seq) {
                    self.ready_seqs.insert(pos, seq);
                    self.emit(now, || TraceEvent::Ready { seq });
                }
            }
        }
        self.scratch_woken = woken;
    }

    /// Architectural (committed) value of register `r`.
    ///
    /// Only meaningful when the pipeline is drained (halted); mid-flight
    /// it reflects the most recent rename.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs.read(self.regs.lookup(r))
    }

    /// Whether the writeback stage has an event due at `now`.
    #[inline]
    fn writeback_pending(&self, now: u64) -> bool {
        matches!(self.events.peek(), Some(&Reverse((t, _, _, _))) if t <= now)
    }

    /// Whether the commit stage can retire anything at `now`: the head
    /// is `Done` with its result available (cached in the ROB) and no
    /// commit-time stall is in force. Exactly the first-iteration break
    /// conditions of [`Core::commit`].
    #[inline]
    fn commit_pending(&self, now: u64) -> bool {
        self.stall_commit_until <= now && self.rob.head_ready(now)
    }

    /// Whether the issue stage can have any observable effect this
    /// cycle. In event mode that is the maintained ready set (plus,
    /// under §4.9 strict ordering, waiting non-pipelined entries, whose
    /// mere presence counts delay statistics) — the same condition
    /// [`Core::issue_event`] early-returns on. The scan oracle visits
    /// every IQ entry by definition, so it is gated only on IQ
    /// occupancy.
    #[inline]
    fn issue_pending(&self) -> bool {
        match self.issue_mode {
            IssueMode::Event => {
                !self.ready_seqs.is_empty()
                    || (self.cfg.strict_fu_order && !self.nonpipe_seqs.is_empty())
            }
            IssueMode::Scan => !self.iq.is_empty(),
        }
    }

    /// Whether the LSQ stage has candidates: a `Ready` unparked load
    /// (sendable, retrying, or waiting on a store — `lq_ready` counts
    /// all three; a forward-blocked load released by a store drain this
    /// cycle is still counted) or a parked STT load whose visibility
    /// must be re-checked.
    #[inline]
    fn lsq_pending(&self) -> bool {
        self.lq_ready > 0 || !self.parked_seqs.is_empty()
    }

    /// Whether rename can dispatch at least one instruction: an
    /// available fetch-queue head and ROB/IQ space. Exactly the
    /// first-iteration break conditions of [`Core::rename`] (per-op
    /// LQ/SQ/free-register checks stay in the body).
    #[inline]
    fn rename_pending(&self, now: u64) -> bool {
        self.fetch_queue.front().is_some_and(|f| f.avail_at <= now)
            && self.rob.free() > 0
            && self.iq.len() < self.cfg.iq_entries
    }

    /// Whether fetch may run: no fetch stall in force and buffer space
    /// available. Exactly the entry checks of [`Core::fetch`].
    #[inline]
    fn fetch_pending(&self, now: u64) -> bool {
        self.fetch_stall_until <= now && self.fetch_queue.len() < self.cfg.fetch_buffer
    }

    /// Advances one cycle against `mem`, reporting whether the cycle
    /// changed state and when the next one can.
    ///
    /// The busy path is *stage-gated*: each stage has a cheap
    /// pending-work predicate maintained by the structures it reads
    /// (`writeback_pending` … `fetch_pending` above), and only stages
    /// whose predicate holds are dispatched. Every predicate is exactly
    /// the stage body's own entry condition — a skipped stage would
    /// have returned without touching state — so gating is
    /// bit-identical to running everything (asserted against
    /// [`Core::disable_stage_gating`]d oracles by
    /// `tests/cycle_skipping.rs`). `Core::next_wake` is built from
    /// the same predicates, so gating and wake computation share one
    /// source of truth.
    pub fn tick(&mut self, mem: &mut dyn MemoryBackend, now: u64) -> TickOutcome {
        if self.halted {
            return TickOutcome {
                progress: false,
                next_wake: u64::MAX,
            };
        }
        if self.tick_memo && now < self.quiet_until && !mem.cancellations_pending(self.id) {
            // Still inside a known-quiescent stretch: replay one cycle's
            // stall counters (exactly what re-running the stages would
            // count) and return the cached outcome.
            self.stats.cycles = now + 1;
            self.stats.strict_fu_delays += self.idle_strict_fu_delays;
            return TickOutcome {
                progress: false,
                next_wake: self.quiet_until,
            };
        }
        self.quiet_until = 0;
        self.tick_progress = false;
        self.idle_strict_fu_delays = 0;
        self.stats.cycles = now + 1;
        self.fu.new_cycle();
        self.drain_cancellations(mem, now);
        let gate = self.stage_gating;
        gated_stage!(Writeback, !gate || self.writeback_pending(now), {
            self.writeback(mem, now)
        });
        gated_stage!(Commit, !gate || self.commit_pending(now), {
            self.commit(mem, now)
        });
        gated_stage!(Issue, !gate || self.issue_pending(), { self.issue(now) });
        gated_stage!(Lsq, !gate || self.lsq_pending(), {
            self.lsq_tick(mem, now)
        });
        gated_stage!(Rename, !gate || self.rename_pending(now), {
            self.rename(now)
        });
        gated_stage!(Fetch, !gate || self.fetch_pending(now), {
            self.fetch(mem, now)
        });
        if now.saturating_sub(self.last_commit_cycle) > DEADLOCK_CYCLES {
            panic!(
                "core {} deadlocked: no commit since cycle {} (now {now}); \
                 head={:?}",
                self.id,
                self.last_commit_cycle,
                self.rob.head().map(|e| (e.seq, e.pc, e.inst, e.status))
            );
        }
        let next_wake = if self.tick_progress {
            now + 1
        } else {
            let wake = self.next_wake(now);
            self.quiet_until = wake;
            wake
        };
        TickOutcome {
            progress: self.tick_progress,
            next_wake,
        }
    }

    /// Earliest cycle after a quiescent tick at `now` at which any stage
    /// predicate can flip — the wake times of exactly the quantities the
    /// stage gates in [`Core::tick`] test: the writeback event heap,
    /// fetch/commit stalls, a done-but-future ROB head (the same cached
    /// timestamp [`Core::commit_pending`] reads), the frontend delay of
    /// the next rename candidate, the maintained minimum load-retry
    /// backoff (O(1), no queue scan), and the non-pipelined FU busy
    /// times. The deadlock deadline bounds the result so a wedged core
    /// still panics exactly where the per-cycle engine does.
    fn next_wake(&self, now: u64) -> u64 {
        let mut wake = self.last_commit_cycle + DEADLOCK_CYCLES + 1;
        if let Some(&Reverse((t, _, _, _))) = self.events.peek() {
            wake = wake.min(t);
        }
        if self.fetch_stall_until > now {
            wake = wake.min(self.fetch_stall_until);
        }
        if self.stall_commit_until > now {
            wake = wake.min(self.stall_commit_until);
        }
        let head_done_at = self.rob.head_done_at();
        if head_done_at != u64::MAX && head_done_at > now {
            wake = wake.min(head_done_at);
        }
        if let Some(f) = self.fetch_queue.front() {
            if f.avail_at > now {
                wake = wake.min(f.avail_at);
            }
        }
        // A quiescent tick with lq_ready > 0 always completed a full LSQ
        // scan (no send means no port cutoff), which recomputed
        // lq_retry_min exactly; parked loads never carry future retries
        // (the retry check precedes the park gate), so nothing is lost
        // against the old whole-queue scan.
        if self.lq_ready > 0 && self.lq_retry_min > now {
            wake = wake.min(self.lq_retry_min);
        }
        if !self.iq.is_empty() {
            let free = self.fu.muldiv_next_free();
            if free > now {
                wake = wake.min(free);
            }
        }
        wake.max(now + 1)
    }

    /// Replays the per-cycle stall counters for `cycles` elided
    /// quiescent cycles, so skipping is invisible in the statistics.
    /// (STT delays need no replay: parked loads settle their whole
    /// waiting interval in one lazy addition — see
    /// `LoadEntry::parked`.)
    pub fn account_idle_cycles(&mut self, cycles: u64) {
        self.stats.strict_fu_delays += self.idle_strict_fu_delays * cycles;
    }

    /// Runs until halt or `max_cycles`, returning the final cycle count.
    ///
    /// Quiescent stretches (all stages stalled on memory or long-latency
    /// units) are skipped in one jump; results are bit-identical to
    /// [`Core::run_lockstep`].
    pub fn run(&mut self, mem: &mut dyn MemoryBackend, max_cycles: u64) -> u64 {
        self.install_program_data(mem);
        let mut now = 0;
        while !self.halted && now < max_cycles {
            let outcome = self.tick(mem, now);
            now += 1;
            if !outcome.progress && outcome.next_wake > now {
                let target = outcome.next_wake.min(max_cycles);
                if target > now {
                    self.account_idle_cycles(target - now);
                    now = target;
                }
            }
        }
        assert!(
            self.halted,
            "program did not halt within {max_cycles} cycles"
        );
        now
    }

    /// Disables the quiescent-tick memo so every `tick` really re-runs
    /// the pipeline stages. The lockstep oracles use this to stay an
    /// independent reference for the cycle-skipping equivalence tests.
    pub fn disable_tick_memo(&mut self) {
        self.tick_memo = false;
        self.quiet_until = 0;
    }

    /// Disables the busy-path stage gating so every `tick` dispatches
    /// every stage body unconditionally. The lockstep oracles use this
    /// (alongside [`Core::disable_tick_memo`]) so the stage-gating
    /// equivalence tests compare against a loop with no shortcut at
    /// all.
    pub fn disable_stage_gating(&mut self) {
        self.stage_gating = false;
    }

    /// Reference run loop that ticks every cycle (no skipping). Kept as
    /// the oracle for the cycle-skipping equivalence tests.
    pub fn run_lockstep(&mut self, mem: &mut dyn MemoryBackend, max_cycles: u64) -> u64 {
        self.disable_tick_memo();
        self.disable_stage_gating();
        self.install_program_data(mem);
        let mut now = 0;
        while !self.halted && now < max_cycles {
            self.tick(mem, now);
            now += 1;
        }
        assert!(
            self.halted,
            "program did not halt within {max_cycles} cycles"
        );
        now
    }

    // ---- cancellations (leapfrogging, §4.5) ----

    fn drain_cancellations(&mut self, mem: &mut dyn MemoryBackend, _now: u64) {
        let cancelled = mem.take_cancellations(self.id);
        if cancelled.is_empty() {
            return;
        }
        self.tick_progress = true;
        for ticket in cancelled {
            if self.lq.cancel_ticket(ticket).is_some() {
                self.stats.load_replays += 1;
                self.lq_ready += 1;
            }
        }
    }

    // ---- writeback ----

    fn writeback(&mut self, mem: &mut dyn MemoryBackend, now: u64) {
        while let Some(&Reverse((t, _, _, _))) = self.events.peek() {
            if t > now {
                break;
            }
            let Reverse((_, seq, kind, ticket)) = self.events.pop().expect("peeked");
            self.tick_progress = true;
            match kind {
                EV_EXEC => self.complete_exec(mem, seq, now),
                EV_LOAD => self.complete_load(seq, ticket, now),
                _ => unreachable!("unknown event kind"),
            }
        }
    }

    fn complete_exec(&mut self, mem: &mut dyn MemoryBackend, seq: u64, now: u64) {
        let Some(ri) = self.rob.find(seq) else {
            return; // squashed while in flight
        };
        self.rob.set_done_at(ri, now);
        self.emit(now, || TraceEvent::Writeback { seq });
        let e = self.rob.at(ri);
        let inst = e.inst;
        let result = e.result;
        let result_tainted = e.result_tainted;
        let phys_rd = e.phys_rd;
        if let (Some(_rd), Some(p)) = (inst.dest(), phys_rd) {
            if inst.op != Op::Sc {
                // Store-conditionals resolve at commit.
                self.write_reg(p, result, now);
                self.regs.set_taint(p, result_tainted);
            }
        }
        if inst.op.is_ctrl() {
            self.resolve_branch(mem, ri, now);
        }
    }

    fn complete_load(&mut self, seq: u64, ticket: u64, now: u64) {
        let Some(li) = self.lq.find(seq) else {
            return; // squashed
        };
        let le = self.lq.at(li);
        match le.state {
            LoadState::InFlight { ticket: t } if t == ticket => {}
            LoadState::Done if le.forwarded && ticket == u64::MAX => {}
            _ => return, // cancelled and re-issued, or stale
        }
        let value = le.value;
        let le = self.lq.at_mut(li);
        le.state = LoadState::Done;
        le.done_at = now;
        let taint_mode = self.cfg.taint_mode;
        let Some(ri) = self.rob.find(seq) else {
            return;
        };
        self.rob.set_done_at(ri, now);
        self.emit(now, || TraceEvent::Writeback { seq });
        let e = self.rob.at_mut(ri);
        e.result = value;
        let phys_rd = e.phys_rd;
        let speculative = e.issued_speculatively;
        if let Some(p) = phys_rd {
            let tainted = taint_mode.is_some() && speculative;
            self.write_reg(p, value, now);
            self.regs.set_taint(p, tainted);
        }
    }

    /// `ri` is the ROB position of the resolving branch (see
    /// [`Rob::find`]); squashing only removes younger entries, so it
    /// stays valid throughout.
    fn resolve_branch(&mut self, mem: &mut dyn MemoryBackend, ri: usize, now: u64) {
        let e = self.rob.at(ri);
        let mispredict = if e.taken != e.pred_taken {
            true
        } else {
            e.taken && e.actual_target != e.pred_target
        };
        if !mispredict {
            return;
        }
        let (seq, inst, ghist_before, taken, target) =
            (e.seq, e.inst, e.ghist_before, e.taken, e.actual_target);
        self.rob.at_mut(ri).mispredicted = true;
        self.stats.mispredicts += 1;
        self.squash_after(mem, seq, target, now, SquashCause::Mispredict);
        if inst.op.is_cond_branch() {
            self.bpred.repair_ghist(ghist_before, taken);
        } else {
            self.bpred.restore_ghist(ghist_before);
        }
    }

    fn squash_after(
        &mut self,
        mem: &mut dyn MemoryBackend,
        seq: u64,
        redirect_pc: u64,
        now: u64,
        cause: SquashCause,
    ) {
        let max_ts = self.next_seq.saturating_sub(1);
        let regs = &mut self.regs;
        let bpred = &mut self.bpred;
        let wakeup = &mut self.wakeup;
        let trace = self.trace.as_deref();
        let core_id = self.id;
        let n = self.rob.squash_above(seq, |e| {
            if let (Some(rd), Some(new), Some(old)) = (e.inst.dest(), e.phys_rd, e.old_phys_rd) {
                regs.unrename(rd, new, old);
                // A freed register never gets written; anything still on
                // its wakeup list was younger and is being squashed too.
                wakeup.clear(new);
            }
            if let Some(cp) = e.ras_cp {
                bpred.ras_restore(cp);
            }
            if let Some(t) = trace {
                t.borrow_mut().event(
                    now,
                    core_id,
                    &TraceEvent::Squash {
                        seq: e.seq,
                        pc: e.pc,
                        op: e.inst.op,
                        cause,
                    },
                );
            }
        });
        self.stats.squashed += n as u64;
        self.iq.retain(|q| q.seq <= seq);
        self.ready_seqs
            .truncate(self.ready_seqs.partition_point(|&s| s <= seq));
        self.nonpipe_seqs
            .truncate(self.nonpipe_seqs.partition_point(|&s| s <= seq));
        // Squashed parked loads settle their STT delay now: the per-cycle
        // gate would have counted them every cycle up to (but excluding)
        // this one — the squash removes them before this cycle's LSQ scan.
        while let Some(&s) = self.parked_seqs.last() {
            if s <= seq {
                break;
            }
            self.parked_seqs.pop();
            let le = self.lq.get(s).expect("parked load still queued");
            self.stats.stt_delays += (now - le.parked_since) - le.park_deficit;
        }
        self.lq.squash_above(seq);
        // Membership changed: rebuild both the ready census and the
        // retry horizon from the surviving loads in one pass.
        let (lq_ready, lq_retry_min) = self.lq.ready_stats(now);
        self.lq_ready = lq_ready;
        self.lq_retry_min = lq_retry_min;
        self.sq.squash_above(seq);
        self.fetch_queue.clear();
        self.cur_fetch_line = None;
        self.fetch_pc = redirect_pc;
        self.fetch_stall_until = self.fetch_stall_until.max(now + 1);
        mem.squash(self.id, seq, max_ts, now);
    }

    // ---- commit ----

    fn commit(&mut self, mem: &mut dyn MemoryBackend, now: u64) {
        for _ in 0..self.cfg.commit_width {
            if self.stall_commit_until > now {
                break;
            }
            // One cached comparison covers "empty", "not done", and
            // "done in the future" at once (see [`Rob::head_ready`]).
            if !self.rob.head_ready(now) {
                break;
            }
            let head = self.rob.head().expect("ready head exists");
            let seq = head.seq;
            let inst = head.inst;
            let fetch_line = head.fetch_line;
            let mem_addr = head.mem_addr;
            // Past the gates something always changes: a commit, a halt,
            // or a commit-time stall being installed.
            self.tick_progress = true;

            match inst.op {
                Op::Ld(_) | Op::Ll => {
                    let addr = mem_addr.expect("committing load has an address");
                    match self.pending_commit {
                        Some((s, _)) if s == seq => {
                            // commit_load already ran; the stall expired.
                            self.pending_commit = None;
                        }
                        _ => {
                            let req = MemReq {
                                core: self.id,
                                addr,
                                size: inst.op.mem_size().expect("load").bytes(),
                                ts: seq,
                                pc: head.pc,
                                now,
                                speculative: false,
                                kind: AccessKind::Load,
                            };
                            let ready = mem.commit_load(&req);
                            if ready > now {
                                // Scheme requires a commit-time memory
                                // action (e.g. InvisiSpec validation or a
                                // §4.6 coherence replay): stall once.
                                self.pending_commit = Some((seq, ready));
                                self.stall_commit_until = ready;
                                break;
                            }
                        }
                    }
                    self.lq.pop_head(seq);
                    self.stats.loads_committed += 1;
                }
                Op::St(_) | Op::Sc => {
                    let addr = mem_addr.expect("committing store has an address");
                    let entry = self.sq.pop_head(seq);
                    // The drained store no longer shadows older stores
                    // (or memory) from the loads it partially overlapped.
                    self.lq.unblock_store(seq);
                    let data = entry.data.expect("resolved store");
                    let req = MemReq {
                        core: self.id,
                        addr,
                        size: inst.op.mem_size().expect("store").bytes(),
                        ts: seq,
                        pc: head.pc,
                        now,
                        speculative: false,
                        kind: AccessKind::Store,
                    };
                    if inst.op == Op::Sc {
                        let ok = mem.sc_try(self.id, addr, seq);
                        if ok {
                            mem.store_commit(&req, data);
                        }
                        let phys_rd = self.rob.head().expect("still head").phys_rd;
                        if let Some(p) = phys_rd {
                            // The SC result register may have waiters in
                            // the IQ (it only resolves here, at commit).
                            self.write_reg(p, if ok { 0 } else { 1 }, now);
                            self.regs.set_taint(p, false);
                        }
                    } else {
                        mem.store_commit(&req, data);
                    }
                    self.stats.stores_committed += 1;
                }
                Op::Halt => {
                    // Drain the wrong-path tail fetched past the halt so
                    // the rename map reflects architectural state.
                    let pc = head.pc;
                    self.squash_after(mem, seq, pc, now, SquashCause::HaltDrain);
                    self.halted = true;
                }
                _ => {}
            }

            let head = self.rob.head().expect("still head");
            if inst.op.is_cond_branch() {
                self.bpred.train(&BranchUpdate {
                    pc: head.pc,
                    taken: head.taken,
                    ghist_before: head.ghist_before,
                    target: head.actual_target,
                });
            } else if inst.op == Op::Jalr {
                self.bpred.btb_insert(head.pc, head.actual_target);
            }

            if fetch_line != self.last_committed_iline {
                mem.commit_ifetch(self.id, fetch_line, now);
                self.last_committed_iline = fetch_line;
            }

            let head = self.rob.head().expect("present");
            if let (Some(rd), Some(old)) = (head.inst.dest(), head.old_phys_rd) {
                self.regs.release(rd, old);
            }
            let pc = head.pc;
            self.emit(now, || TraceEvent::Commit {
                seq,
                pc,
                op: inst.op,
            });
            self.rob.drop_head();
            self.stats.committed += 1;
            self.last_commit_cycle = now;
            if self.halted {
                break;
            }
        }
    }

    // ---- issue ----

    fn older_unresolved_branch(&self, seq: u64) -> bool {
        self.rob.older_unresolved_ctrl(seq)
    }

    fn older_pending_mem(&self, seq: u64) -> bool {
        self.rob.older_pending_mem(seq)
    }

    fn older_pending_fence(&self, seq: u64) -> bool {
        self.rob.older_fence(seq)
    }

    fn issue(&mut self, now: u64) {
        match self.issue_mode {
            IssueMode::Event => self.issue_event(now),
            IssueMode::Scan => self.issue_scan(now),
        }
    }

    /// One visited IQ slot's trip through the issue checks. Shared by
    /// both issue implementations so the per-entry semantics — strict-FU
    /// gating, FU availability, fence serialisation, AGU vs ALU issue —
    /// cannot drift between them. Returns `true` when the entry issued
    /// (the caller tombstones the slot).
    ///
    /// `qi` indexes `self.iq`; `issued`/`blocked_nonpipelined` carry the
    /// per-cycle scan state across visited entries.
    fn try_issue_entry(
        &mut self,
        qi: usize,
        now: u64,
        issued: &mut usize,
        blocked_nonpipelined: &mut usize,
    ) -> bool {
        let q = self.iq[qi];
        let ready = q.srcs.iter().flatten().all(|&p| self.regs.is_ready(p));
        let nonpipelined = matches!(q.class, FuClass::IntDiv | FuClass::FpDiv | FuClass::FpSqrt);
        // §4.9: strictness-ordered scheduling of non-pipelined units —
        // an op may not overtake an older, not-yet-issued op that may
        // use the same unit (all such ops share the Mult/Div pool).
        if self.cfg.strict_fu_order && nonpipelined && *blocked_nonpipelined > 0 {
            self.stats.strict_fu_delays += 1;
            self.idle_strict_fu_delays += 1;
            *blocked_nonpipelined += 1;
            return false;
        }
        if !ready || !self.fu.can_issue(q.class, now) {
            if nonpipelined {
                *blocked_nonpipelined += 1;
            }
            return false;
        }
        let ri = self.rob.find(q.seq).expect("IQ entry has live ROB entry");
        let inst = self.rob.at(ri).inst;

        // Fences issue only from the ROB head, and serialise: no
        // younger instruction may issue until the fence commits
        // (lfence-style, which also makes rdcycle measurements
        // well-defined for the attack harness).
        if inst.op == Op::Fence && self.rob.head().map(|h| h.seq) != Some(q.seq) {
            return false;
        }
        if inst.op != Op::Fence && self.older_pending_fence(q.seq) {
            return false;
        }

        let v1 = q.srcs[0].map_or(0, |p| self.regs.read(p));
        let v2 = q.srcs[1].map_or(0, |p| self.regs.read(p));
        let taint = self.cfg.taint_mode.is_some()
            && q.srcs.iter().flatten().any(|&p| self.regs.is_tainted(p));
        let latency = inst.op.latency();
        self.fu.issue(q.class, now, latency);
        *issued += 1;
        self.tick_progress = true;
        self.emit(now, || TraceEvent::Issue { seq: q.seq });

        if inst.op.is_mem() {
            // AGU: resolve the address; the LSQ takes over next phase.
            let addr = v1.wrapping_add(inst.imm as u64);
            let e = self.rob.at_mut(ri);
            e.status = RobStatus::Issued;
            e.mem_addr = Some(addr);
            if inst.op.is_load() {
                let le = self.lq.get_mut(q.seq).expect("allocated at rename");
                le.addr = Some(addr);
                le.state = LoadState::Ready;
                le.addr_tainted = taint;
                self.lq_ready += 1;
            } else {
                self.sq.resolve(q.seq, addr, v2);
                // The store's address is now visible to the forward
                // check: wake the loads it was blocking.
                self.lq.unblock_store(q.seq);
                // Stores complete once resolved; data drains at commit.
                self.events
                    .push(Reverse((now + latency, q.seq, EV_EXEC, 0)));
            }
            return true;
        }

        // Non-memory ops: compute the result now; it becomes visible
        // at writeback (now + latency).
        let e = self.rob.at_mut(ri);
        e.status = RobStatus::Issued;
        e.result_tainted = taint;
        if inst.op.is_ctrl() {
            let (taken, target) = match inst.op {
                Op::Jal => (true, inst.imm as u64),
                Op::Jalr => (true, v1.wrapping_add(inst.imm as u64)),
                _ => {
                    let t = branch_taken(inst.op, v1, v2);
                    (t, if t { inst.imm as u64 } else { e.pc + 1 })
                }
            };
            e.taken = taken;
            e.actual_target = target;
            e.result = e.pc + 1; // link value for jal/jalr
        } else {
            e.result = alu_eval(inst.op, v1, v2, inst.imm, now);
        }
        self.events
            .push(Reverse((now + latency, q.seq, EV_EXEC, 0)));
        true
    }

    /// Event-driven issue: visits only the entries that can matter this
    /// cycle — the maintained ready set, plus (under §4.9 strict FU
    /// ordering) the waiting non-pipelined entries, whose presence gates
    /// and counts younger non-pipelined ops exactly as the linear scan's
    /// `blocked_nonpipelined` bookkeeping did. Both lists are sorted, so
    /// the merged visit order is the scan's oldest-first order and the
    /// selection is bit-identical.
    fn issue_event(&mut self, now: u64) {
        let strict = self.cfg.strict_fu_order;
        if self.ready_seqs.is_empty() && (!strict || self.nonpipe_seqs.is_empty()) {
            return;
        }
        let mut visit = std::mem::take(&mut self.scratch_visit);
        visit.clear();
        if strict {
            // Merge the two sorted lists, deduplicating ready
            // non-pipelined entries (they appear in both).
            let (mut i, mut j) = (0, 0);
            while i < self.ready_seqs.len() || j < self.nonpipe_seqs.len() {
                let a = self.ready_seqs.get(i).copied().unwrap_or(u64::MAX);
                let b = self.nonpipe_seqs.get(j).copied().unwrap_or(u64::MAX);
                visit.push(a.min(b));
                i += usize::from(a <= b);
                j += usize::from(b <= a);
            }
        } else {
            // Waiting non-pipelined entries have no observable effect
            // without strict ordering; only ready entries are visited.
            visit.extend_from_slice(&self.ready_seqs);
        }

        let mut issued = 0;
        let mut blocked_nonpipelined = 0usize;
        let mut issued_seqs = std::mem::take(&mut self.scratch_issued);
        issued_seqs.clear();
        // Resolve each visited seq with a forward cursor: both `visit`
        // and `self.iq` are seq-sorted, and tombstoning is deferred to
        // the sweep below, so the walk never revisits a slot.
        let mut qi = 0usize;
        for &seq in &visit {
            if issued >= self.cfg.issue_width {
                break;
            }
            while self.iq[qi].seq < seq {
                qi += 1;
            }
            debug_assert_eq!(self.iq[qi].seq, seq, "visit lists track live IQ entries");
            let cur = qi;
            qi += 1;
            if self.try_issue_entry(cur, now, &mut issued, &mut blocked_nonpipelined) {
                self.iq[cur].seq = u64::MAX;
                issued_seqs.push(seq);
            }
        }
        if issued > 0 {
            self.iq.retain(|q| q.seq != u64::MAX);
            self.ready_seqs.retain(|s| !issued_seqs.contains(s));
            self.nonpipe_seqs.retain(|s| !issued_seqs.contains(s));
        }
        self.scratch_issued = issued_seqs;
        self.scratch_visit = visit;
    }

    /// Reference issue: the pre-wakeup linear scan over the whole IQ.
    /// Kept as the oracle for the wakeup-equivalence tests.
    fn issue_scan(&mut self, now: u64) {
        let mut issued = 0;
        let mut blocked_nonpipelined = 0usize;
        for qi in 0..self.iq.len() {
            if issued >= self.cfg.issue_width {
                break;
            }
            if self.try_issue_entry(qi, now, &mut issued, &mut blocked_nonpipelined) {
                // Tombstone the slot; one linear sweep below removes all
                // of them (a per-issue `remove` would be O(n²) a cycle).
                self.iq[qi].seq = u64::MAX;
            }
        }
        if issued > 0 {
            self.iq.retain(|q| q.seq != u64::MAX);
            // The wakeup lists are maintained regardless of mode; drop
            // the issued entries so they stay coherent with the IQ.
            let iq = &self.iq;
            self.ready_seqs
                .retain(|&s| iq.binary_search_by_key(&s, |q| q.seq).is_ok());
            self.nonpipe_seqs
                .retain(|&s| iq.binary_search_by_key(&s, |q| q.seq).is_ok());
        }
    }

    // ---- LSQ: send ready loads to memory ----

    fn lsq_tick(&mut self, mem: &mut dyn MemoryBackend, now: u64) {
        // Unpark STT loads whose visibility point arrived. The event that
        // makes a parked load visible (an older branch or memory access
        // resolving) is always processed by this core's own writeback or
        // commit stage earlier in this very tick, so checking here — after
        // those stages, before the send scan — re-admits the load on
        // exactly the cycle the per-cycle gate would have passed it.
        if !self.parked_seqs.is_empty() {
            self.unpark_visible(now);
        }
        debug_assert_eq!(
            self.lq_ready,
            self.lq
                .iter()
                .filter(|le| le.state == LoadState::Ready && !le.parked)
                .count(),
            "lq_ready drifted from the queue"
        );
        if self.lq_ready == 0 {
            return; // nothing to send; don't scan the queue
        }
        let mut sent = 0;
        let mut last_send_seq = 0;
        let taint_mode = self.cfg.taint_mode;
        // Future retry backoffs seen (or scheduled) this pass. A pass
        // that covers the whole queue recomputes `lq_retry_min` exactly;
        // a pass cut short by the port limit only lowers it (raising it
        // on partial information could make `next_wake` miss a retry —
        // but a cutoff implies a send, i.e. progress, so `next_wake` is
        // not consulted this tick anyway).
        let mut retry_min = u64::MAX;
        let mut scanned_all = true;

        // One fused pass over the queue, oldest-first, stopping as soon
        // as both memory ports are claimed. Processing a position only
        // ever mutates *that* entry (a leapfrog cancellation triggered
        // by `mem.load` is queued in the backend and drained next tick),
        // so each entry's eligibility when visited is exactly what a
        // collect-then-process pass would have seen — same visitation
        // order, same port cutoff, bit-identical — without filling a
        // candidate list the port limit would discard.
        for li in 0..self.lq.len() {
            if sent >= MEM_PORTS {
                scanned_all = false;
                break;
            }
            let le = *self.lq.at(li);
            if le.state != LoadState::Ready
                || le.parked
                || le.retry_at > now
                || le.blocked_on.is_some()
            {
                if le.state == LoadState::Ready && !le.parked && le.retry_at > now {
                    retry_min = retry_min.min(le.retry_at);
                }
                continue;
            }
            let seq = le.seq;
            let addr = le.addr.expect("Ready implies resolved address");

            // STT gate: tainted-address loads wait for their visibility
            // point. An invisible load parks — it leaves the candidate set
            // until `unpark_visible` re-admits it, and its delay counter
            // is settled in one addition then. (Visibility is monotone:
            // blockers of this load only ever resolve or squash — younger
            // instructions can't be its blockers — so a load that passes
            // the gate once passes it forever and parks at most once.)
            if let Some(mode) = taint_mode {
                if le.addr_tainted {
                    let visible = match mode {
                        TaintMode::Spectre => !self.older_unresolved_branch(seq),
                        TaintMode::Future => {
                            !self.older_unresolved_branch(seq) && !self.older_pending_mem(seq)
                        }
                    };
                    if !visible {
                        let e = self.lq.at_mut(li);
                        e.parked = true;
                        e.parked_since = now;
                        e.park_deficit = 0;
                        self.lq_ready -= 1;
                        let pos = self.parked_seqs.partition_point(|&s| s < seq);
                        self.parked_seqs.insert(pos, seq);
                        self.emit(now, || TraceEvent::MemPark { seq });
                        continue;
                    }
                }
            }

            match self.sq.forward(seq, addr, le.size) {
                ForwardResult::UnknownAddr(s) | ForwardResult::Partial(s) => {
                    // Re-check only when that store resolves or drains;
                    // until then the scan result cannot change.
                    self.lq.at_mut(li).blocked_on = Some(s);
                    self.emit(now, || TraceEvent::MemBlock { seq, store_seq: s });
                    continue;
                }
                ForwardResult::Forward(v) => {
                    if self.rob.get(seq).is_some_and(|e| e.inst.op == Op::Ll) {
                        // Reservation is placed when the value is read, so
                        // any later remote store makes the SC fail.
                        mem.ll_reserve(self.id, addr, seq);
                    }
                    let le = self.lq.at_mut(li);
                    le.value = v;
                    le.state = LoadState::Done;
                    le.done_at = now + 1;
                    le.forwarded = true;
                    le.filled_locally = true;
                    self.lq_ready -= 1;
                    self.stats.load_forwards += 1;
                    self.tick_progress = true;
                    self.events.push(Reverse((now + 1, seq, EV_LOAD, u64::MAX)));
                    self.emit(now, || TraceEvent::MemForward { seq });
                }
                ForwardResult::NoMatch => {
                    self.tick_progress = true;
                    let speculative = self.older_unresolved_branch(seq);
                    let ri = self.rob.find(seq).expect("live load");
                    let e = self.rob.at(ri);
                    if e.inst.op == Op::Ll {
                        mem.ll_reserve(self.id, addr, seq);
                    }
                    let req = MemReq {
                        core: self.id,
                        addr,
                        size: le.size,
                        ts: seq,
                        pc: e.pc,
                        now,
                        speculative: true,
                        kind: AccessKind::Load,
                    };
                    match mem.load(&req) {
                        LoadResp::Done {
                            at,
                            ticket,
                            filled_locally,
                        } => {
                            let value = mem.read_value(addr, le.size);
                            let le = self.lq.at_mut(li);
                            le.state = LoadState::InFlight { ticket };
                            le.value = value;
                            le.filled_locally = filled_locally;
                            self.lq_ready -= 1;
                            self.rob.at_mut(ri).issued_speculatively = speculative;
                            self.events
                                .push(Reverse((at.max(now + 1), seq, EV_LOAD, ticket)));
                            sent += 1;
                            last_send_seq = seq;
                            self.emit(now, || TraceEvent::MemSend { seq, addr });
                        }
                        LoadResp::Retry { at } => {
                            let le = self.lq.at_mut(li);
                            le.retry_at = at.max(now + 1);
                            let retry_at = le.retry_at;
                            retry_min = retry_min.min(retry_at);
                            self.stats.load_retries += 1;
                            sent += 1;
                            last_send_seq = seq;
                            self.emit(now, || TraceEvent::MemRetry { seq, retry_at });
                        }
                    }
                }
            }
        }
        self.lq_retry_min = if scanned_all {
            retry_min
        } else {
            self.lq_retry_min.min(retry_min)
        };
        // Port-pressure correction for the lazy STT accounting: when both
        // memory ports were claimed, the per-cycle gate never reached any
        // load younger than the last sender this cycle, so it would not
        // have counted a delay for it. Parked loads in that shadow accrue
        // a deficit that the settle subtracts. (A load that parked *this*
        // cycle was necessarily visited before the final send, so its seq
        // is older and it correctly takes no deficit.)
        if sent >= MEM_PORTS && !self.parked_seqs.is_empty() {
            let from = self.parked_seqs.partition_point(|&s| s <= last_send_seq);
            for i in from..self.parked_seqs.len() {
                let seq = self.parked_seqs[i];
                self.lq
                    .get_mut(seq)
                    .expect("parked load is live")
                    .park_deficit += 1;
            }
        }
    }

    /// Re-admits parked STT loads whose visibility point has arrived,
    /// settling each one's delay statistic for the whole parked interval
    /// in a single addition — bit-identical to counting one delay per
    /// cycle the per-cycle gate would have counted. Because visibility is
    /// monotone in age, the visible parked loads form a prefix of the
    /// sorted list; the common no-unpark case is a single comparison.
    fn unpark_visible(&mut self, now: u64) {
        let mode = self
            .cfg
            .taint_mode
            .expect("parked loads exist only under STT");
        let mut unparked = 0;
        for i in 0..self.parked_seqs.len() {
            let seq = self.parked_seqs[i];
            let visible = match mode {
                TaintMode::Spectre => !self.older_unresolved_branch(seq),
                TaintMode::Future => {
                    !self.older_unresolved_branch(seq) && !self.older_pending_mem(seq)
                }
            };
            if !visible {
                break;
            }
            let le = self.lq.get_mut(seq).expect("parked load is live");
            le.parked = false;
            self.stats.stt_delays += (now - le.parked_since) - le.park_deficit;
            le.park_deficit = 0;
            self.lq_ready += 1;
            self.emit(now, || TraceEvent::MemUnpark { seq });
            unparked += 1;
        }
        if unparked > 0 {
            self.parked_seqs.drain(..unparked);
        }
    }

    // ---- rename/dispatch ----

    fn rename(&mut self, now: u64) {
        for _ in 0..self.cfg.rename_width {
            let Some(front) = self.fetch_queue.front() else {
                break;
            };
            if front.avail_at > now {
                break;
            }
            if self.rob.free() == 0 || self.iq.len() >= self.cfg.iq_entries {
                break;
            }
            let inst = front.inst;
            if inst.op.is_load() && self.lq.free() == 0 {
                break;
            }
            if inst.op.is_store() && self.sq.free() == 0 {
                break;
            }
            if let Some(rd) = inst.dest() {
                if self.regs.free_count(rd.is_fp()) == 0 {
                    break;
                }
            }
            let f = self.fetch_queue.pop_front().expect("checked");
            self.tick_progress = true;
            let seq = self.next_seq;
            self.next_seq += 1;

            // Capture source mappings before renaming the destination
            // (an instruction may read and write the same register).
            let mut srcs = [None, None];
            for (si, s) in f.inst.sources().enumerate() {
                srcs[si] = Some(self.regs.lookup(s));
            }
            let renamed = f
                .inst
                .dest()
                .map(|rd| self.regs.rename(rd).expect("free count checked above"));

            let e = self.rob.push(seq, f.pc, f.inst, f.fetch_line);
            e.pred_taken = f.pred_taken;
            e.pred_target = f.pred_target;
            e.ghist_before = f.ghist_before;
            e.ras_cp = f.ras_cp;
            if let Some((new, old)) = renamed {
                e.phys_rd = Some(new);
                e.old_phys_rd = Some(old);
            }
            if f.inst.op.is_load() {
                self.lq
                    .push(seq, f.inst.op.mem_size().expect("load").bytes());
            }
            if f.inst.op.is_store() {
                self.sq
                    .push(seq, f.inst.op.mem_size().expect("store").bytes());
            }
            let class = f.inst.op.fu_class();
            self.iq.push(IqEntry { seq, srcs, class });
            self.emit(now, || TraceEvent::Rename {
                seq,
                pc: f.pc,
                op: f.inst.op,
                fetched_at: f.fetched_at,
            });
            self.emit(now, || TraceEvent::Dispatch { seq });
            // Wakeup bookkeeping: wait on every in-flight source; go
            // straight to the ready set when there is none. Dispatch is
            // in seq order, so a plain push keeps both lists sorted.
            let mut waiting = false;
            for &p in srcs.iter().flatten() {
                if !self.regs.is_ready(p) {
                    self.wakeup.watch(p, seq);
                    waiting = true;
                }
            }
            if !waiting {
                self.ready_seqs.push(seq);
                self.emit(now, || TraceEvent::Ready { seq });
            }
            if matches!(class, FuClass::IntDiv | FuClass::FpDiv | FuClass::FpSqrt) {
                self.nonpipe_seqs.push(seq);
            }
        }
    }

    // ---- fetch ----

    fn fetch(&mut self, mem: &mut dyn MemoryBackend, now: u64) {
        if self.fetch_stall_until > now {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_queue.len() >= self.cfg.fetch_buffer {
                break;
            }
            let Some(inst) = self.program.fetch(self.fetch_pc) else {
                // Ran past the end of the text (can happen transiently on
                // a wrong path): stall until redirected.
                break;
            };
            let pc = self.fetch_pc;
            let iaddr = pc_to_addr(pc);
            let fetch_line = line_addr(iaddr);

            if self.cur_fetch_line != Some(fetch_line) {
                self.tick_progress = true; // the ifetch touches the backend
                let req = MemReq {
                    core: self.id,
                    addr: fetch_line,
                    size: gm_mem::LINE_BYTES,
                    ts: self.next_seq + self.fetch_queue.len() as u64,
                    pc,
                    now,
                    speculative: true,
                    kind: AccessKind::Ifetch,
                };
                match mem.ifetch(&req) {
                    LoadResp::Done { at, .. } => {
                        if at > now + IFETCH_PIPELINED {
                            self.fetch_stall_until = at;
                            self.cur_fetch_line = Some(fetch_line);
                            break;
                        }
                        self.cur_fetch_line = Some(fetch_line);
                    }
                    LoadResp::Retry { at } => {
                        self.fetch_stall_until = at.max(now + 1);
                        break;
                    }
                }
            }

            let mut pred_taken = false;
            let mut pred_target = pc + 1;
            let mut ghist_before = self.bpred.ghist();
            let mut ras_cp = None;
            match inst.op {
                op if op.is_cond_branch() => {
                    let p = self.bpred.predict(pc);
                    ghist_before = p.ghist_before;
                    pred_taken = p.taken;
                    if p.taken {
                        pred_target = inst.imm as u64;
                        if self.bpred.btb_lookup(pc).is_none() {
                            // Target produced by decode: one-cycle bubble.
                            self.fetch_stall_until = now + 2;
                        }
                    }
                }
                Op::Jal => {
                    pred_taken = true;
                    pred_target = inst.imm as u64;
                    if inst.rd == Reg::x(1) {
                        ras_cp = Some(self.bpred.ras_push(pc + 1));
                    }
                }
                Op::Jalr => {
                    pred_taken = true;
                    if inst.rd.is_zero() && inst.rs1 == Reg::x(1) {
                        let (t, cp) = self.bpred.ras_pop();
                        pred_target = t;
                        ras_cp = Some(cp);
                    } else if let Some(t) = self.bpred.btb_lookup(pc) {
                        pred_target = t;
                    } else {
                        // No predicted target: fall through and let the
                        // resolution redirect (costs a full squash).
                        pred_target = pc + 1;
                    }
                }
                _ => {}
            }

            self.tick_progress = true;
            self.fetch_queue.push_back(Fetched {
                pc,
                inst,
                pred_taken,
                pred_target,
                ghist_before,
                ras_cp,
                avail_at: now + self.cfg.frontend_delay,
                fetch_line,
                fetched_at: now,
            });
            self.stats.fetched += 1;
            self.emit(now, || TraceEvent::Fetch { pc, op: inst.op });
            self.fetch_pc = pred_target;
            if inst.op == Op::Halt {
                break; // nothing sensible to fetch past a halt
            }
            if pred_taken {
                break; // taken control flow ends the fetch group
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_isa::Asm;
    use gm_mem::SparseMem;

    /// Minimal fixed-latency backend for core unit tests.
    pub(super) struct FlatMem {
        mem: SparseMem,
        latency: u64,
        next_ticket: u64,
        reservation: Option<(usize, u64)>,
        loads_seen: u64,
    }

    impl FlatMem {
        pub(super) fn new(latency: u64) -> Self {
            Self {
                mem: SparseMem::new(),
                latency,
                next_ticket: 0,
                reservation: None,
                loads_seen: 0,
            }
        }
    }

    impl MemoryBackend for FlatMem {
        fn load(&mut self, req: &MemReq) -> LoadResp {
            self.next_ticket += 1;
            self.loads_seen += 1;
            LoadResp::Done {
                at: req.now + self.latency,
                ticket: self.next_ticket,
                filled_locally: true,
            }
        }
        fn commit_load(&mut self, req: &MemReq) -> u64 {
            req.now
        }
        fn store_commit(&mut self, req: &MemReq, value: u64) {
            self.mem.write(req.addr, value, req.size);
        }
        fn ifetch(&mut self, req: &MemReq) -> LoadResp {
            self.next_ticket += 1;
            LoadResp::Done {
                at: req.now + 2,
                ticket: self.next_ticket,
                filled_locally: true,
            }
        }
        fn commit_ifetch(&mut self, _core: usize, _line: u64, _now: u64) {}
        fn squash(&mut self, _core: usize, _above: u64, _max: u64, _now: u64) {}
        fn take_cancellations(&mut self, _core: usize) -> Vec<u64> {
            Vec::new()
        }
        fn read_value(&self, addr: u64, size: u64) -> u64 {
            self.mem.read(addr, size)
        }
        fn write_value(&mut self, addr: u64, value: u64, size: u64) {
            self.mem.write(addr, value, size);
        }
        fn ll_reserve(&mut self, core: usize, addr: u64, _ts: u64) {
            self.reservation = Some((core, gm_mem::line_addr(addr)));
        }
        fn sc_try(&mut self, core: usize, addr: u64, _ts: u64) -> bool {
            let ok = self.reservation == Some((core, gm_mem::line_addr(addr)));
            self.reservation = None;
            ok
        }
    }

    fn run(program: gm_isa::Program) -> (Core, FlatMem) {
        let mut core = Core::new(0, CoreConfig::tiny(), program);
        let mut mem = FlatMem::new(4);
        core.run(&mut mem, 1_000_000);
        (core, mem)
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut a = Asm::new("t");
        let (x1, x2, x3) = (Reg::x(1), Reg::x(2), Reg::x(3));
        a.li(x1, 6);
        a.li(x2, 7);
        a.mul(x3, x1, x2);
        a.addi(x3, x3, 1);
        a.halt();
        let (core, _) = run(a.assemble());
        assert_eq!(core.reg(Reg::x(3)), 43);
        assert_eq!(core.stats().committed, 5);
    }

    #[test]
    fn counted_loop_commits_expected_instructions() {
        let mut a = Asm::new("t");
        let (x1, x2) = (Reg::x(1), Reg::x(2));
        a.li(x1, 0);
        a.li(x2, 100);
        let top = a.here();
        a.addi(x1, x1, 1);
        a.bne(x1, x2, top);
        a.halt();
        let (core, _) = run(a.assemble());
        assert_eq!(core.reg(Reg::x(1)), 100);
        // 2 setup + 200 loop body + 1 halt.
        assert_eq!(core.stats().committed, 203);
        assert!(core.stats().cycles < 2000, "loop should be fast");
    }

    #[test]
    fn store_then_load_roundtrip() {
        let mut a = Asm::new("t");
        let (x1, x2, x3) = (Reg::x(1), Reg::x(2), Reg::x(3));
        a.li(x1, 0x1000);
        a.li(x2, 0xabcd);
        a.st(x2, x1, 0);
        a.fence(); // drain the store before the load re-reads memory
        a.ld(x3, x1, 0);
        a.halt();
        let (core, mem) = run(a.assemble());
        assert_eq!(core.reg(Reg::x(3)), 0xabcd);
        assert_eq!(mem.read_value(0x1000, 8), 0xabcd);
    }

    #[test]
    fn store_forwarding_skips_memory() {
        let mut a = Asm::new("t");
        let (x1, x2, x3) = (Reg::x(1), Reg::x(2), Reg::x(3));
        a.li(x1, 0x2000);
        a.li(x2, 99);
        a.st(x2, x1, 0);
        a.ld(x3, x1, 0); // forwards from the store queue
        a.halt();
        let (core, _) = run(a.assemble());
        assert_eq!(core.reg(Reg::x(3)), 99);
        assert_eq!(core.stats().load_forwards, 1);
    }

    #[test]
    fn data_segment_visible_to_loads() {
        let mut a = Asm::new("t");
        a.data(gm_isa::DataSegment::words(0x3000, &[111, 222]));
        let (x1, x2, x3) = (Reg::x(1), Reg::x(2), Reg::x(3));
        a.li(x1, 0x3000);
        a.ld(x2, x1, 0);
        a.ld(x3, x1, 8);
        a.halt();
        let (core, _) = run(a.assemble());
        assert_eq!(core.reg(Reg::x(2)), 111);
        assert_eq!(core.reg(Reg::x(3)), 222);
    }

    #[test]
    fn mispredicted_branch_recovers_architecturally() {
        // A data-dependent branch the predictor cannot know initially:
        // x1 = 1 -> branch taken path must win.
        let mut a = Asm::new("t");
        let (x1, x2) = (Reg::x(1), Reg::x(2));
        a.li(x1, 1);
        let taken = a.label();
        a.bne(x1, Reg::ZERO, taken);
        a.li(x2, 111); // wrong path
        a.halt();
        a.bind(taken);
        a.li(x2, 222);
        a.halt();
        let (core, _) = run(a.assemble());
        assert_eq!(core.reg(Reg::x(2)), 222);
    }

    #[test]
    fn wrong_path_execution_is_squashed_not_committed() {
        // Train a loop-exit branch; the final iteration mispredicts and
        // wrong-path instructions must not commit.
        let mut a = Asm::new("t");
        let (x1, x2, x3) = (Reg::x(1), Reg::x(2), Reg::x(3));
        a.li(x1, 0);
        a.li(x2, 50);
        let top = a.here();
        a.addi(x1, x1, 1);
        a.bne(x1, x2, top);
        a.li(x3, 1); // only reached after loop exit
        a.halt();
        let (core, _) = run(a.assemble());
        assert_eq!(core.reg(Reg::x(1)), 50);
        assert_eq!(core.reg(Reg::x(3)), 1);
        assert!(core.stats().mispredicts >= 1, "loop exit mispredicts");
        assert!(core.stats().squashed > 0);
        // Architectural commit count is exactly the sequential count.
        assert_eq!(core.stats().committed, 2 + 100 + 2);
    }

    #[test]
    fn rdcycle_increases_monotonically() {
        let mut a = Asm::new("t");
        let (x1, x2) = (Reg::x(1), Reg::x(2));
        a.rdcycle(x1);
        a.div(Reg::x(3), Reg::x(4), Reg::x(5)); // some latency
        a.rdcycle(x2);
        a.halt();
        let (core, _) = run(a.assemble());
        assert!(core.reg(Reg::x(2)) >= core.reg(Reg::x(1)));
    }

    #[test]
    fn jal_jalr_call_return() {
        let mut a = Asm::new("t");
        let (x1, x5) = (Reg::x(1), Reg::x(5));
        let fun = a.label();
        a.jal(x1, fun); // call: link in x1 (ra)
        a.li(Reg::x(6), 5); // return lands here... pc 1
        a.halt();
        a.bind(fun);
        a.li(x5, 77);
        a.jalr(Reg::ZERO, x1, 0); // return
        let (core, _) = run(a.assemble());
        assert_eq!(core.reg(Reg::x(5)), 77);
        assert_eq!(core.reg(Reg::x(6)), 5);
    }

    #[test]
    fn ll_sc_succeeds_uncontended() {
        let mut a = Asm::new("t");
        let (x1, x2, x3) = (Reg::x(1), Reg::x(2), Reg::x(3));
        a.li(x1, 0x4000);
        a.ll(x2, x1);
        a.addi(x2, x2, 1);
        a.sc(x3, x2, x1);
        a.halt();
        let (core, mem) = run(a.assemble());
        assert_eq!(core.reg(Reg::x(3)), 0, "sc must succeed");
        assert_eq!(mem.read_value(0x4000, 8), 1);
    }

    #[test]
    fn division_by_zero_is_defined() {
        let mut a = Asm::new("t");
        a.li(Reg::x(1), 42);
        a.div(Reg::x(2), Reg::x(1), Reg::ZERO);
        a.halt();
        let (core, _) = run(a.assemble());
        assert_eq!(core.reg(Reg::x(2)), u64::MAX);
    }

    #[test]
    fn stt_spectre_delays_dependent_loads() {
        // Pointer chase under an unresolved branch: with taint tracking
        // the dependent load must record delays.
        let mut a = Asm::new("t");
        a.data(gm_isa::DataSegment::words(0x5000, &[0x5100]));
        a.data(gm_isa::DataSegment::words(0x5100, &[7]));
        let (x1, x2, x3, x9) = (Reg::x(1), Reg::x(2), Reg::x(3), Reg::x(9));
        a.li(x1, 0x5000);
        a.li(x9, 1000);
        let skip = a.label();
        a.div(Reg::x(8), x9, Reg::x(7)); // slow op keeps the branch unresolved
        a.beq(Reg::x(8), Reg::ZERO, skip); // resolved late; predicted early
        a.ld(x2, x1, 0); // speculative load -> tainted dest
        a.ld(x3, x2, 0); // tainted address -> delayed under STT
        a.bind(skip);
        a.halt();
        let prog = a.assemble();

        let mut cfg = CoreConfig::tiny();
        cfg.taint_mode = Some(TaintMode::Spectre);
        let mut core = Core::new(0, cfg, prog.clone());
        let mut mem = FlatMem::new(4);
        core.run(&mut mem, 1_000_000);
        let delayed = core.stats().stt_delays;

        let mut core2 = Core::new(0, CoreConfig::tiny(), prog);
        let mut mem2 = FlatMem::new(4);
        core2.run(&mut mem2, 1_000_000);
        assert_eq!(core2.stats().stt_delays, 0, "no gate without STT");
        assert!(delayed > 0, "STT must delay the tainted load");
    }

    #[test]
    fn strict_fu_order_counts_delays_and_preserves_results() {
        // Two divides where the younger's operands are ready first.
        let mut a = Asm::new("t");
        let (x1, x2, x3, x4) = (Reg::x(1), Reg::x(2), Reg::x(3), Reg::x(4));
        a.li(x1, 100);
        a.li(x2, 5);
        a.mul(x3, x1, x2); // x3 = 500, ready later
        a.div(x4, x3, x2); // older divide waits on mul
        a.div(Reg::x(5), x1, x2); // younger divide ready immediately
        a.halt();
        let prog = a.assemble();

        let mut cfg = CoreConfig::tiny();
        cfg.strict_fu_order = true;
        let mut core = Core::new(0, cfg, prog.clone());
        let mut mem = FlatMem::new(4);
        core.run(&mut mem, 1_000_000);
        assert_eq!(core.reg(Reg::x(4)), 100);
        assert_eq!(core.reg(Reg::x(5)), 20);
        assert!(
            core.stats().strict_fu_delays > 0,
            "younger div must wait for the older div to issue"
        );
    }

    #[test]
    fn fence_orders_memory_operations() {
        let mut a = Asm::new("t");
        let (x1, x2) = (Reg::x(1), Reg::x(2));
        a.li(x1, 0x6000);
        a.st(x1, x1, 0);
        a.fence();
        a.ld(x2, x1, 0);
        a.halt();
        let (core, _) = run(a.assemble());
        assert_eq!(core.reg(Reg::x(2)), 0x6000);
    }

    #[test]
    #[should_panic(expected = "did not halt")]
    fn runaway_program_detected() {
        let mut a = Asm::new("t");
        let top = a.here();
        a.j(top); // infinite loop, no halt
        let mut core = Core::new(0, CoreConfig::tiny(), a.assemble());
        let mut mem = FlatMem::new(1);
        core.run(&mut mem, 10_000);
    }

    #[test]
    fn ipc_is_reasonable_for_ilp_heavy_code() {
        let mut a = Asm::new("t");
        for i in 1..9 {
            a.li(Reg::x(i), i as i64);
        }
        let top = a.label();
        a.bind(top);
        // 8 independent adds per iteration.
        for i in 1..9 {
            a.addi(Reg::x(i), Reg::x(i), 1);
        }
        a.li(Reg::x(10), 2000);
        a.addi(Reg::x(9), Reg::x(9), 1);
        a.bne(Reg::x(9), Reg::x(10), top);
        a.halt();
        let mut core = Core::new(0, CoreConfig::micro2021(), a.assemble());
        let mut mem = FlatMem::new(4);
        core.run(&mut mem, 10_000_000);
        assert!(
            core.stats().ipc() > 2.0,
            "8-wide core should sustain IPC > 2 on independent adds, got {}",
            core.stats().ipc()
        );
    }
}
