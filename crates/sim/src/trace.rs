//! Per-instruction pipeline tracing.
//!
//! A [`TraceSink`] observes every lifecycle edge of every dynamic
//! instruction — fetch, rename, dispatch, wakeup, issue, the LSQ's
//! memory decisions, writeback, commit, and squash-with-cause. The
//! engine holds the sink behind `Option<Rc<RefCell<dyn TraceSink>>>`
//! and every hook is a single `is_some` branch when tracing is off;
//! the event value itself is only constructed when a sink is
//! installed, so the untraced busy path pays one predictable branch
//! per hook and nothing else.
//!
//! Hooks are strictly read-only observations: a sink receives copies
//! of already-committed engine state and has no channel back into the
//! core, so attaching one can never perturb simulation. The
//! `trace_neutrality` integration tests pin this down by asserting
//! trace-on runs are cycle-, statistic-, and memory-counter-identical
//! to trace-off runs across scheme families, multicore workloads, and
//! random programs.

use gm_isa::Op;

/// Why a squash removed an instruction from the window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SquashCause {
    /// A resolved branch disagreed with the prediction the wrong-path
    /// instructions were fetched under.
    Mispredict,
    /// A committing `Halt` drained the wrong-path tail fetched past it
    /// so the rename map reflects architectural state.
    HaltDrain,
}

impl SquashCause {
    /// Stable lower-case name (`mispredict` / `halt-drain`) for trace
    /// renderers.
    pub fn name(&self) -> &'static str {
        match self {
            SquashCause::Mispredict => "mispredict",
            SquashCause::HaltDrain => "halt-drain",
        }
    }
}

/// One lifecycle edge of one dynamic instruction.
///
/// Events before rename identify the instruction by `pc` only (a
/// fetched instruction has no sequence number yet and may be dropped
/// by a squash without ever getting one); from [`TraceEvent::Rename`]
/// on, `seq` is the per-core unique dynamic-instruction id, never
/// reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// The frontend fetched an instruction (possibly wrong-path).
    Fetch {
        /// Program counter (instruction index) fetched.
        pc: u64,
        /// Opcode fetched.
        op: Op,
    },
    /// Rename allocated a sequence number, physical destination and
    /// ROB entry for the fetch-queue head.
    Rename {
        /// Dynamic-instruction id assigned here, unique per core.
        seq: u64,
        /// Program counter of the instruction.
        pc: u64,
        /// Opcode of the instruction.
        op: Op,
        /// Cycle the frontend fetched this instruction.
        fetched_at: u64,
    },
    /// The renamed instruction entered the issue queue (same cycle as
    /// its [`TraceEvent::Rename`]; kept distinct so renderers can show
    /// a rename→dispatch stage boundary).
    Dispatch {
        /// Dynamic-instruction id.
        seq: u64,
    },
    /// All source operands became ready: the wakeup path moved the
    /// instruction into the issue-ready set.
    Ready {
        /// Dynamic-instruction id.
        seq: u64,
    },
    /// Issue selected the instruction and claimed its functional unit.
    Issue {
        /// Dynamic-instruction id.
        seq: u64,
    },
    /// The LSQ sent a load to the memory backend.
    MemSend {
        /// Dynamic-instruction id of the load.
        seq: u64,
        /// Resolved byte address.
        addr: u64,
    },
    /// The LSQ satisfied a load from the store queue (store-to-load
    /// forwarding, no memory access).
    MemForward {
        /// Dynamic-instruction id of the load.
        seq: u64,
    },
    /// A load blocked on an older store with an unknown or partially
    /// overlapping address; it re-enters the send scan when that store
    /// resolves or drains.
    MemBlock {
        /// Dynamic-instruction id of the load.
        seq: u64,
        /// Sequence number of the blocking store.
        store_seq: u64,
    },
    /// The STT taint gate parked a tainted-address load until its
    /// visibility point.
    MemPark {
        /// Dynamic-instruction id of the load.
        seq: u64,
    },
    /// A parked load's visibility point arrived; it re-entered the
    /// send candidates.
    MemUnpark {
        /// Dynamic-instruction id of the load.
        seq: u64,
    },
    /// The memory backend rejected a load with a retry backoff (MSHR
    /// pressure).
    MemRetry {
        /// Dynamic-instruction id of the load.
        seq: u64,
        /// Cycle at which the load may retry.
        retry_at: u64,
    },
    /// The instruction's result became architecturally visible to
    /// dependents (writeback).
    Writeback {
        /// Dynamic-instruction id.
        seq: u64,
    },
    /// The instruction retired from the ROB head.
    Commit {
        /// Dynamic-instruction id.
        seq: u64,
        /// Program counter of the instruction.
        pc: u64,
        /// Opcode of the instruction.
        op: Op,
    },
    /// A squash removed the (renamed, never-committed) instruction.
    Squash {
        /// Dynamic-instruction id.
        seq: u64,
        /// Program counter of the instruction.
        pc: u64,
        /// Opcode of the instruction.
        op: Op,
        /// What triggered the squash.
        cause: SquashCause,
    },
}

impl TraceEvent {
    /// The dynamic-instruction id this event concerns, if it has one
    /// (every event except [`TraceEvent::Fetch`]).
    pub fn seq(&self) -> Option<u64> {
        match *self {
            TraceEvent::Fetch { .. } => None,
            TraceEvent::Rename { seq, .. }
            | TraceEvent::Dispatch { seq }
            | TraceEvent::Ready { seq }
            | TraceEvent::Issue { seq }
            | TraceEvent::MemSend { seq, .. }
            | TraceEvent::MemForward { seq }
            | TraceEvent::MemBlock { seq, .. }
            | TraceEvent::MemPark { seq }
            | TraceEvent::MemUnpark { seq }
            | TraceEvent::MemRetry { seq, .. }
            | TraceEvent::Writeback { seq }
            | TraceEvent::Commit { seq, .. }
            | TraceEvent::Squash { seq, .. } => Some(seq),
        }
    }
}

/// An observer of per-instruction pipeline events.
///
/// Implementations receive every event from every core that shares
/// the sink (the multicore machine clones one `Rc` handle into each
/// core), in the deterministic order the engine produces them. A sink
/// must not assume events for different cores interleave in any
/// particular pattern, but per `(core, seq)` the lifecycle order is
/// fixed: rename → dispatch → [ready →] issue → [memory events →]
/// writeback → commit, or a terminal squash after any point past
/// rename.
pub trait TraceSink {
    /// Observes one event. `cycle` is the simulated cycle the edge
    /// occurred on; `core` is the emitting core's index.
    fn event(&mut self, cycle: u64, core: usize, ev: &TraceEvent);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_accessor_covers_every_variant() {
        assert_eq!(
            TraceEvent::Fetch {
                pc: 3,
                op: Op::Halt
            }
            .seq(),
            None
        );
        assert_eq!(TraceEvent::Dispatch { seq: 7 }.seq(), Some(7));
        assert_eq!(
            TraceEvent::Squash {
                seq: 9,
                pc: 1,
                op: Op::Halt,
                cause: SquashCause::Mispredict
            }
            .seq(),
            Some(9)
        );
    }

    #[test]
    fn squash_cause_names_are_stable() {
        assert_eq!(SquashCause::Mispredict.name(), "mispredict");
        assert_eq!(SquashCause::HaltDrain.name(), "halt-drain");
    }
}
