//! Functional-unit pools.
//!
//! Pipelined classes (integer ALU, FP ALU, the multiplier) are modelled as
//! per-cycle issue bandwidth. Non-pipelined units (IntDiv, FpDiv, FpSqrt —
//! the paper's §4.9 list) occupy a Mult/Div unit for their entire latency:
//! that occupancy is the structural hazard SpectreRewind measures, and the
//! resource the strictness-ordered scheduler serialises.

use gm_isa::FuClass;

/// Tracks functional-unit availability within and across cycles.
#[derive(Clone, Debug)]
pub struct FuPool {
    int_alu: usize,
    fp_alu: usize,
    muldiv: usize,
    // Per-cycle issue counters (reset each cycle).
    used_int_alu: usize,
    used_fp_alu: usize,
    used_muldiv: usize,
    // Busy-until times for each Mult/Div unit (non-pipelined occupancy).
    muldiv_busy_until: Vec<u64>,
}

impl FuPool {
    /// Builds a pool with the given unit counts.
    pub fn new(int_alu: usize, fp_alu: usize, muldiv: usize) -> Self {
        assert!(int_alu > 0 && fp_alu > 0 && muldiv > 0);
        Self {
            int_alu,
            fp_alu,
            muldiv,
            used_int_alu: 0,
            used_fp_alu: 0,
            used_muldiv: 0,
            muldiv_busy_until: vec![0; muldiv],
        }
    }

    /// Resets per-cycle issue bandwidth (call at the start of each cycle).
    pub fn new_cycle(&mut self) {
        self.used_int_alu = 0;
        self.used_fp_alu = 0;
        self.used_muldiv = 0;
    }

    /// Whether an op of `class` could be accepted at `now`.
    pub fn can_issue(&self, class: FuClass, now: u64) -> bool {
        match class {
            FuClass::IntAlu | FuClass::MemRead | FuClass::MemWrite => {
                self.used_int_alu < self.int_alu
            }
            FuClass::FpAlu => self.used_fp_alu < self.fp_alu,
            FuClass::IntMult => self.used_muldiv < self.muldiv,
            FuClass::IntDiv | FuClass::FpDiv | FuClass::FpSqrt => {
                self.used_muldiv < self.muldiv && self.muldiv_busy_until.iter().any(|&b| b <= now)
            }
        }
    }

    /// Accepts an op of `class` at `now` with the given latency.
    ///
    /// # Panics
    ///
    /// Panics if [`FuPool::can_issue`] would return `false` — callers
    /// must check first.
    pub fn issue(&mut self, class: FuClass, now: u64, latency: u64) {
        assert!(self.can_issue(class, now), "FU not available for {class:?}");
        match class {
            FuClass::IntAlu | FuClass::MemRead | FuClass::MemWrite => self.used_int_alu += 1,
            FuClass::FpAlu => self.used_fp_alu += 1,
            FuClass::IntMult => self.used_muldiv += 1,
            FuClass::IntDiv | FuClass::FpDiv | FuClass::FpSqrt => {
                self.used_muldiv += 1;
                let unit = self
                    .muldiv_busy_until
                    .iter_mut()
                    .find(|b| **b <= now)
                    .expect("checked by can_issue");
                // Non-pipelined: the unit is held for the whole operation.
                *unit = now + latency;
            }
        }
    }

    /// Earliest cycle a non-pipelined Mult/Div unit frees up.
    pub fn muldiv_next_free(&self) -> u64 {
        self.muldiv_busy_until.iter().copied().min().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_limits_per_cycle() {
        let mut fu = FuPool::new(2, 1, 1);
        assert!(fu.can_issue(FuClass::IntAlu, 0));
        fu.issue(FuClass::IntAlu, 0, 1);
        fu.issue(FuClass::IntAlu, 0, 1);
        assert!(!fu.can_issue(FuClass::IntAlu, 0), "2 ALUs exhausted");
        fu.new_cycle();
        assert!(fu.can_issue(FuClass::IntAlu, 1), "bandwidth resets");
    }

    #[test]
    fn mem_ops_share_int_alu_ports() {
        let mut fu = FuPool::new(1, 1, 1);
        fu.issue(FuClass::MemRead, 0, 1);
        assert!(!fu.can_issue(FuClass::IntAlu, 0));
    }

    #[test]
    fn nonpipelined_divider_blocks_until_done() {
        let mut fu = FuPool::new(1, 1, 1);
        fu.issue(FuClass::IntDiv, 0, 12);
        fu.new_cycle();
        assert!(
            !fu.can_issue(FuClass::IntDiv, 5),
            "single divider busy until cycle 12"
        );
        assert!(!fu.can_issue(FuClass::FpDiv, 5), "shared Mult/Div unit");
        assert!(fu.can_issue(FuClass::IntDiv, 12), "free at completion");
        assert_eq!(fu.muldiv_next_free(), 12);
    }

    #[test]
    fn pipelined_multiplier_does_not_occupy() {
        let mut fu = FuPool::new(1, 1, 1);
        fu.issue(FuClass::IntMult, 0, 3);
        fu.new_cycle();
        assert!(
            fu.can_issue(FuClass::IntMult, 1),
            "pipelined multiply accepts back-to-back"
        );
    }

    #[test]
    fn two_dividers_allow_two_concurrent_divides() {
        let mut fu = FuPool::new(1, 1, 2);
        fu.issue(FuClass::IntDiv, 0, 12);
        fu.new_cycle();
        assert!(fu.can_issue(FuClass::FpDiv, 1), "second unit free");
        fu.issue(FuClass::FpDiv, 1, 20);
        fu.new_cycle();
        assert!(!fu.can_issue(FuClass::IntDiv, 2), "both busy");
    }

    #[test]
    fn divider_and_multiply_share_issue_bandwidth() {
        let mut fu = FuPool::new(1, 1, 1);
        fu.issue(FuClass::IntMult, 0, 3);
        assert!(
            !fu.can_issue(FuClass::IntDiv, 0),
            "one Mult/Div issue port per unit per cycle"
        );
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn issue_unavailable_panics() {
        let mut fu = FuPool::new(1, 1, 1);
        fu.issue(FuClass::IntDiv, 0, 12);
        fu.new_cycle();
        fu.issue(FuClass::IntDiv, 1, 12);
    }
}
