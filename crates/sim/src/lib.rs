#![warn(missing_docs)]

//! A cycle-level out-of-order core model — the gem5 O3 stand-in the
//! GhostMinion reproduction runs on.
//!
//! The core executes programs from `gm-isa` both functionally (computing
//! real values, so Spectre gadgets really do read secrets transiently)
//! and temporally (modelling the Table 1 microarchitecture: 8-wide,
//! 192-entry ROB, 64-entry IQ, 32-entry LQ/SQ, 256+256 physical
//! registers, 6 integer ALUs, 4 FP ALUs, 2 mult/div units, tournament
//! branch predictor with BTB and RAS).
//!
//! The core is *mechanism only*: it knows nothing about GhostMinion. The
//! memory system it talks to is abstracted behind [`MemoryBackend`], which
//! the `ghostminion` crate implements once per mitigation scheme. The two
//! security-relevant core-side mechanisms the paper needs — strictness-
//! ordered scheduling of non-pipelined functional units (§4.9) and
//! STT-style taint-delayed loads (baseline) — are configuration options
//! here, because they live in the issue stage.
//!
//! Timestamps (the paper's Temporal Order labels, §4.4) are the global
//! instruction sequence numbers assigned at rename. The simulator keeps
//! them as unbounded `u64`s; the hardware sliding-window encoding (2×ROB
//! entries with wrap-around) is implemented and verified separately in
//! `ghostminion::timestamp`, which proves the window compare agrees with
//! the unbounded compare for all in-flight distances.

mod bpred;
mod config;
mod engine;
mod fu;
mod lsq;
mod mem_if;
#[cfg(feature = "stage-prof")]
pub mod prof;
mod regfile;
mod rob;
mod trace;
mod wakeup;

pub use bpred::{BpredConfig, BranchUpdate, Prediction, TournamentPredictor};
pub use config::{CoreConfig, TaintMode};
pub use engine::{Core, CoreStats, IssueMode};
pub use fu::FuPool;
pub use lsq::{LoadQueue, StoreQueue};
pub use mem_if::{AccessKind, LoadResp, MemReq, MemoryBackend, Ticket};
pub use regfile::{PhysReg, RegFile};
pub use rob::{Rob, RobEntry, RobStatus};
pub use trace::{SquashCause, TraceEvent, TraceSink};
