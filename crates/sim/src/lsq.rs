//! Load and store queues.
//!
//! The store queue buffers speculative stores until commit (no speculative
//! store ever reaches the cache — §4.6, footnote 7) and forwards data to
//! younger loads. The load queue tracks each load's address resolution and
//! its in-flight memory access, including replay after a leapfrog
//! cancellation (§4.5).
//!
//! Memory dependence handling is conservative: a load waits until every
//! older store address is known, so there is no memory-order
//! misspeculation to recover from. The LSQ naturally transmits data in
//! forwards-program order, which the paper notes already provides Temporal
//! Order for data flow.

use crate::mem_if::Ticket;
use std::collections::VecDeque;

/// Outcome of checking a load against older stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForwardResult {
    /// No older store overlaps: go to memory.
    NoMatch,
    /// Fully covered by an older store: use this value, skip memory.
    Forward(u64),
    /// Partially overlapped by the older store with this seq: wait until
    /// it commits and drains.
    Partial(u64),
    /// The older store with this seq has an unresolved address: wait.
    UnknownAddr(u64),
}

/// A buffered speculative store.
#[derive(Clone, Copy, Debug)]
pub struct StoreEntry {
    pub seq: u64,
    /// Resolved at execute.
    pub addr: Option<u64>,
    pub size: u64,
    /// Store data, available once the data operand was read at execute.
    pub data: Option<u64>,
}

/// The store queue.
#[derive(Clone, Debug)]
pub struct StoreQueue {
    entries: VecDeque<StoreEntry>,
    capacity: usize,
}

impl StoreQueue {
    /// Creates an empty queue.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            entries: VecDeque::new(),
            capacity,
        }
    }

    /// Remaining slots.
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Allocates a slot at rename.
    ///
    /// # Panics
    ///
    /// Panics when full.
    pub fn push(&mut self, seq: u64, size: u64) {
        assert!(self.free() > 0, "store queue overflow");
        self.entries.push_back(StoreEntry {
            seq,
            addr: None,
            size,
            data: None,
        });
    }

    /// Records the resolved address and data (execute).
    pub fn resolve(&mut self, seq: u64, addr: u64, data: u64) {
        let i = self
            .entries
            .binary_search_by_key(&seq, |e| e.seq)
            .expect("resolving a store not in the queue");
        let e = &mut self.entries[i];
        e.addr = Some(addr);
        e.data = Some(data);
    }

    /// Removes the oldest store (commit).
    ///
    /// # Panics
    ///
    /// Panics if the head is not `seq` — stores must drain in order.
    pub fn pop_head(&mut self, seq: u64) -> StoreEntry {
        let head = self.entries.pop_front().expect("store queue empty");
        assert_eq!(head.seq, seq, "stores must commit in order");
        head
    }

    /// Drops all stores with `seq > above` (squash).
    pub fn squash_above(&mut self, above: u64) {
        while self.entries.back().is_some_and(|e| e.seq > above) {
            self.entries.pop_back();
        }
    }

    /// Checks a load at `addr`/`size` with sequence `load_seq` against all
    /// older stores, youngest first.
    pub fn forward(&self, load_seq: u64, addr: u64, size: u64) -> ForwardResult {
        for e in self.entries.iter().rev().filter(|e| e.seq < load_seq) {
            let Some(saddr) = e.addr else {
                return ForwardResult::UnknownAddr(e.seq);
            };
            let s_end = saddr + e.size;
            let l_end = addr + size;
            let overlaps = addr < s_end && saddr < l_end;
            if !overlaps {
                continue;
            }
            if saddr <= addr && l_end <= s_end {
                let data = e.data.expect("resolved store always has data");
                let shift = 8 * (addr - saddr);
                let val = data >> shift;
                let masked = if size == 8 {
                    val
                } else {
                    val & ((1u64 << (8 * size)) - 1)
                };
                return ForwardResult::Forward(masked);
            }
            return ForwardResult::Partial(e.seq);
        }
        ForwardResult::NoMatch
    }

    /// Whether any older store's address is still unresolved.
    pub fn any_unresolved_older(&self, load_seq: u64) -> bool {
        self.entries
            .iter()
            .any(|e| e.seq < load_seq && e.addr.is_none())
    }

    /// Number of buffered stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Progress of one load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadState {
    /// Waiting for address operands.
    WaitAddr,
    /// Address known; waiting to be sent to memory (or blocked on an
    /// older store / fence / taint delay).
    Ready,
    /// Sent to the memory system.
    InFlight { ticket: Ticket },
    /// Value available at `done_at`.
    Done,
}

/// An in-flight load.
#[derive(Clone, Copy, Debug)]
pub struct LoadEntry {
    pub seq: u64,
    pub addr: Option<u64>,
    pub size: u64,
    pub state: LoadState,
    pub done_at: u64,
    pub value: u64,
    /// Earliest retry cycle after an MSHR-full rejection.
    pub retry_at: u64,
    /// Whether the data was retained in a core-local speculative
    /// structure (GhostMinion); if not, commit may need a reload (§6.4).
    pub filled_locally: bool,
    /// Whether the value was forwarded from the store queue.
    pub forwarded: bool,
    /// STT: whether the address operands were tainted at AGU time.
    pub addr_tainted: bool,
    /// Store this load's forward check stopped at (unresolved address or
    /// partial overlap). The result cannot change until that store
    /// resolves or drains — the engine clears this then — so the LSQ
    /// skips the candidate instead of re-running the forward scan every
    /// cycle. Always an *older* store, so a squash that keeps the load
    /// keeps the blocker.
    pub blocked_on: Option<u64>,
    /// STT: the load failed its visibility check and is parked until the
    /// last older unresolved branch (and, under `TaintMode::Future`,
    /// memory access) resolves. Parked loads leave the LSQ send stage
    /// entirely; the engine settles their delay statistics lazily when
    /// they unpark (or are squashed), so nothing re-checks them per
    /// cycle.
    pub parked: bool,
    /// Cycle at which the load parked (meaningful only while `parked`).
    pub parked_since: u64,
    /// Cycles within the parked interval that the per-cycle engine would
    /// *not* have counted as an STT delay because both memory ports were
    /// claimed by older loads before the scan reached this one. Subtracted
    /// at settle time so the lazy accounting is bit-identical.
    pub park_deficit: u64,
}

/// The load queue.
#[derive(Clone, Debug)]
pub struct LoadQueue {
    entries: VecDeque<LoadEntry>,
    capacity: usize,
}

impl LoadQueue {
    /// Creates an empty queue.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            entries: VecDeque::new(),
            capacity,
        }
    }

    /// Remaining slots.
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Allocates a slot at rename.
    ///
    /// # Panics
    ///
    /// Panics when full.
    pub fn push(&mut self, seq: u64, size: u64) {
        assert!(self.free() > 0, "load queue overflow");
        self.entries.push_back(LoadEntry {
            seq,
            addr: None,
            size,
            state: LoadState::WaitAddr,
            done_at: 0,
            value: 0,
            retry_at: 0,
            filled_locally: false,
            forwarded: false,
            addr_tainted: false,
            blocked_on: None,
            parked: false,
            parked_since: 0,
            park_deficit: 0,
        });
    }

    /// Clears the store-blocked marker of every load waiting on store
    /// `seq` (called when that store resolves its address or drains at
    /// commit); the loads become forward-check candidates again.
    pub fn unblock_store(&mut self, seq: u64) {
        for e in self.entries.iter_mut() {
            if e.blocked_on == Some(seq) {
                e.blocked_on = None;
            }
        }
    }

    /// Index of the entry with sequence `seq`. The queue is ordered by
    /// seq (rename allocates monotonically, squash pops the back), so
    /// lookups binary-search instead of scanning.
    fn index_of(&self, seq: u64) -> Option<usize> {
        self.entries.binary_search_by_key(&seq, |e| e.seq).ok()
    }

    /// Looks up a load by seq.
    pub fn get(&self, seq: u64) -> Option<&LoadEntry> {
        self.index_of(seq).map(|i| &self.entries[i])
    }

    /// Mutable lookup by seq.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut LoadEntry> {
        self.index_of(seq).map(move |i| &mut self.entries[i])
    }

    /// Position of the load with sequence `seq`, for repeated O(1)
    /// access through [`LoadQueue::at`]/[`LoadQueue::at_mut`]. Positions
    /// are stable until the queue's membership changes (push, pop,
    /// squash).
    pub fn find(&self, seq: u64) -> Option<usize> {
        self.index_of(seq)
    }

    /// The load at position `i` (see [`LoadQueue::find`]).
    pub fn at(&self, i: usize) -> &LoadEntry {
        &self.entries[i]
    }

    /// Mutable load at position `i` (see [`LoadQueue::find`]).
    pub fn at_mut(&mut self, i: usize) -> &mut LoadEntry {
        &mut self.entries[i]
    }

    /// Iterates over loads, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &LoadEntry> {
        self.entries.iter()
    }

    /// Mutable iteration over loads, oldest first.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut LoadEntry> {
        self.entries.iter_mut()
    }

    /// One-pass census of the sendable set: how many loads are
    /// `LoadState::Ready` and unparked, and the earliest future
    /// `retry_at` among them (`u64::MAX` when none is backing off past
    /// `now`). Used to rebuild the engine's `lq_ready`/`lq_retry_min`
    /// counters after a squash changes queue membership.
    pub fn ready_stats(&self, now: u64) -> (usize, u64) {
        let mut ready = 0;
        let mut retry_min = u64::MAX;
        for e in &self.entries {
            if e.state == LoadState::Ready && !e.parked {
                ready += 1;
                if e.retry_at > now {
                    retry_min = retry_min.min(e.retry_at);
                }
            }
        }
        (ready, retry_min)
    }

    /// Removes the oldest load (commit).
    ///
    /// # Panics
    ///
    /// Panics if the head is not `seq`.
    pub fn pop_head(&mut self, seq: u64) -> LoadEntry {
        let head = self.entries.pop_front().expect("load queue empty");
        assert_eq!(head.seq, seq, "loads must commit in order");
        head
    }

    /// Drops all loads with `seq > above` (squash).
    pub fn squash_above(&mut self, above: u64) {
        while self.entries.back().is_some_and(|e| e.seq > above) {
            self.entries.pop_back();
        }
    }

    /// Finds the load owning a cancelled in-flight ticket and reverts it
    /// to `Ready` for replay. Returns its seq if found (it may have been
    /// squashed in the meantime).
    pub fn cancel_ticket(&mut self, ticket: Ticket) -> Option<u64> {
        for e in self.entries.iter_mut() {
            if e.state == (LoadState::InFlight { ticket }) {
                e.state = LoadState::Ready;
                return Some(e.seq);
            }
        }
        None
    }

    /// Number of loads in the queue.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_forward_full_containment() {
        let mut sq = StoreQueue::new(4);
        sq.push(10, 8);
        sq.resolve(10, 0x100, 0x1122_3344_5566_7788);
        // Load of 4 bytes at +4 inside the store.
        assert_eq!(
            sq.forward(11, 0x104, 4),
            ForwardResult::Forward(0x1122_3344)
        );
        // Full-width load.
        assert_eq!(
            sq.forward(11, 0x100, 8),
            ForwardResult::Forward(0x1122_3344_5566_7788)
        );
    }

    #[test]
    fn store_forward_only_from_older() {
        let mut sq = StoreQueue::new(4);
        sq.push(20, 8);
        sq.resolve(20, 0x100, 7);
        // A load *older* than the store must not see it.
        assert_eq!(sq.forward(15, 0x100, 8), ForwardResult::NoMatch);
    }

    #[test]
    fn youngest_older_store_wins() {
        let mut sq = StoreQueue::new(4);
        sq.push(10, 8);
        sq.resolve(10, 0x100, 1);
        sq.push(12, 8);
        sq.resolve(12, 0x100, 2);
        assert_eq!(sq.forward(15, 0x100, 8), ForwardResult::Forward(2));
    }

    #[test]
    fn unknown_address_blocks() {
        let mut sq = StoreQueue::new(4);
        sq.push(10, 8); // unresolved
        assert_eq!(sq.forward(11, 0x100, 8), ForwardResult::UnknownAddr(10));
        assert!(sq.any_unresolved_older(11));
        assert!(!sq.any_unresolved_older(10));
    }

    #[test]
    fn partial_overlap_reported() {
        let mut sq = StoreQueue::new(4);
        sq.push(10, 4);
        sq.resolve(10, 0x102, 0xaabbccdd);
        // 8-byte load at 0x100 partially covered by 4-byte store at 0x102.
        assert_eq!(sq.forward(11, 0x100, 8), ForwardResult::Partial(10));
    }

    #[test]
    fn store_commit_in_order_and_squash() {
        let mut sq = StoreQueue::new(4);
        sq.push(10, 8);
        sq.push(11, 8);
        sq.push(12, 8);
        sq.squash_above(10);
        assert_eq!(sq.len(), 1);
        sq.resolve(10, 0x0, 5);
        let e = sq.pop_head(10);
        assert_eq!(e.data, Some(5));
        assert!(sq.is_empty());
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn store_commit_out_of_order_panics() {
        let mut sq = StoreQueue::new(4);
        sq.push(10, 8);
        sq.push(11, 8);
        sq.pop_head(11);
    }

    #[test]
    fn load_queue_lifecycle() {
        let mut lq = LoadQueue::new(2);
        lq.push(5, 8);
        assert_eq!(lq.free(), 1);
        {
            let e = lq.get_mut(5).unwrap();
            e.addr = Some(0x40);
            e.state = LoadState::Ready;
        }
        let e = lq.get(5).unwrap();
        assert_eq!(e.addr, Some(0x40));
        let popped = lq.pop_head(5);
        assert_eq!(popped.seq, 5);
        assert!(lq.is_empty());
    }

    #[test]
    fn load_squash_drops_young() {
        let mut lq = LoadQueue::new(4);
        lq.push(5, 8);
        lq.push(7, 8);
        lq.push(9, 8);
        lq.squash_above(6);
        assert_eq!(lq.len(), 1);
        assert!(lq.get(5).is_some());
    }

    #[test]
    fn cancel_ticket_reverts_to_ready() {
        let mut lq = LoadQueue::new(4);
        lq.push(5, 8);
        lq.get_mut(5).unwrap().state = LoadState::InFlight { ticket: 99 };
        assert_eq!(lq.cancel_ticket(99), Some(5));
        assert_eq!(lq.get(5).unwrap().state, LoadState::Ready);
        assert_eq!(lq.cancel_ticket(99), None, "already cancelled");
        assert_eq!(lq.cancel_ticket(1234), None, "unknown ticket");
    }

    #[test]
    fn forward_mask_sizes() {
        let mut sq = StoreQueue::new(2);
        sq.push(1, 8);
        sq.resolve(1, 0x0, u64::MAX);
        assert_eq!(sq.forward(2, 0x0, 1), ForwardResult::Forward(0xff));
        assert_eq!(sq.forward(2, 0x3, 2), ForwardResult::Forward(0xffff));
    }
}
