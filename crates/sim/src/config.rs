//! Core configuration (Table 1) and security-relevant issue-stage options.

use crate::BpredConfig;

/// STT-style taint-based load delay (baseline mitigation, §7.2).
///
/// A load whose address depends (transitively) on the result of a
/// speculatively issued load is a *transmitter* and is delayed until its
/// visibility point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaintMode {
    /// STT-Spectre: transmitters wait until all older branches resolved.
    Spectre,
    /// STT-Future: transmitters wait until all older branches resolved
    /// *and* all older memory operations have completed (unsafe until
    /// commit-equivalent, protecting exception attacks too).
    Future,
}

/// Out-of-order core configuration; defaults follow the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions renamed/dispatched per cycle.
    pub rename_width: usize,
    /// Instructions issued per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Issue-queue entries.
    pub iq_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Physical integer registers.
    pub int_regs: usize,
    /// Physical floating-point registers.
    pub fp_regs: usize,
    /// Integer ALUs (single-cycle ops and branches).
    pub int_alu: usize,
    /// FP ALUs (pipelined add/mul).
    pub fp_alu: usize,
    /// Mult/Div units (pipelined multiply; non-pipelined divides/sqrt).
    pub muldiv: usize,
    /// Cycles between fetch and rename (decode depth); sets the minimum
    /// branch-misprediction penalty together with fetch redirect.
    pub frontend_delay: u64,
    /// Fetch-buffer capacity in instructions.
    pub fetch_buffer: usize,
    /// Branch predictor sizing.
    pub bpred: BpredConfig,
    /// §4.9: issue non-pipelined functional-unit ops in timestamp order
    /// (strictness-ordered scheduling). `false` models the unprotected
    /// greedy scheduler.
    pub strict_fu_order: bool,
    /// STT baseline: delay tainted transmitters. `None` for all other
    /// schemes.
    pub taint_mode: Option<TaintMode>,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::micro2021()
    }
}

impl CoreConfig {
    /// The paper's Table 1 core: 8-wide out-of-order, 192-entry ROB,
    /// 64-entry IQ, 32-entry LQ/SQ, 256 int + 256 FP registers, 6 int
    /// ALUs, 4 FP ALUs, 2 mult/div units, tournament predictor.
    pub fn micro2021() -> Self {
        Self {
            fetch_width: 8,
            rename_width: 8,
            issue_width: 8,
            commit_width: 8,
            rob_entries: 192,
            iq_entries: 64,
            lq_entries: 32,
            sq_entries: 32,
            int_regs: 256,
            fp_regs: 256,
            int_alu: 6,
            fp_alu: 4,
            muldiv: 2,
            frontend_delay: 3,
            fetch_buffer: 16,
            bpred: BpredConfig::default(),
            strict_fu_order: false,
            taint_mode: None,
        }
    }

    /// A deliberately small configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            fetch_width: 2,
            rename_width: 2,
            issue_width: 2,
            commit_width: 2,
            rob_entries: 16,
            iq_entries: 8,
            lq_entries: 4,
            sq_entries: 4,
            int_regs: 48,
            fp_regs: 48,
            int_alu: 2,
            fp_alu: 1,
            muldiv: 1,
            frontend_delay: 2,
            fetch_buffer: 4,
            bpred: BpredConfig::default(),
            strict_fu_order: false,
            taint_mode: None,
        }
    }

    /// Sanity-checks structural sizes.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero-sized structures, or
    /// fewer physical than architectural registers).
    pub fn validate(&self) {
        assert!(self.fetch_width > 0 && self.issue_width > 0 && self.commit_width > 0);
        assert!(self.rob_entries > 0 && self.iq_entries > 0);
        assert!(self.lq_entries > 0 && self.sq_entries > 0);
        assert!(
            self.int_regs >= 32 + self.rename_width,
            "need headroom over the 32 architectural integer registers"
        );
        assert!(self.fp_regs >= 32 + self.rename_width);
        assert!(self.int_alu > 0 && self.fp_alu > 0 && self.muldiv > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let c = CoreConfig::micro2021();
        assert_eq!(c.rob_entries, 192);
        assert_eq!(c.iq_entries, 64);
        assert_eq!(c.lq_entries, 32);
        assert_eq!(c.sq_entries, 32);
        assert_eq!(c.int_regs, 256);
        assert_eq!(c.fp_regs, 256);
        assert_eq!(c.int_alu, 6);
        assert_eq!(c.fp_alu, 4);
        assert_eq!(c.muldiv, 2);
        assert_eq!(c.fetch_width, 8);
        c.validate();
    }

    #[test]
    fn tiny_is_valid() {
        CoreConfig::tiny().validate();
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn too_few_phys_regs_panics() {
        let mut c = CoreConfig::tiny();
        c.int_regs = 32;
        c.validate();
    }
}
