//! Per-physical-register wakeup lists for the event-driven issue stage.
//!
//! The issue queue used to be scanned linearly every cycle, re-checking
//! every entry's source ready bits — cost proportional to IQ *occupancy*,
//! which is worst exactly when the machine is stalled (a full IQ waiting
//! on memory). With wakeup lists the dependency graph is walked instead:
//! a dispatching instruction registers itself on each not-yet-ready
//! source register, and the writeback that produces that register wakes
//! precisely the instructions waiting on it. Issue cost becomes
//! O(instructions woken + instructions issued).
//!
//! Coherence rules (the engine upholds these; see `Core`):
//!
//! * an entry is registered at dispatch on every source register whose
//!   value is still in flight;
//! * a register's list is drained when its value is written (the only
//!   ready-bit `false → true` transition for a live consumer);
//! * a squash clears the list of every unrenamed (freed) register —
//!   any waiter on it was younger than the squashed producer and is
//!   gone from the IQ; waiters squashed while their *surviving*
//!   producer is still in flight are dropped lazily when that producer
//!   writes back (the drained seq no longer resolves in the IQ).
//!
//! # Storage: one arena, not one `Vec` per register
//!
//! The table used to be `Vec<Vec<u64>>` — 512 independent heap
//! allocations per core (Table 1 has 256+256 physical registers), each
//! with its own 24-byte header and allocator slack, multiplied by every
//! core in a many-core sweep. It is now a single arena of singly-linked
//! nodes shared by *all* registers of the core: a flat `heads`/`tails`
//! index pair per register (8 bytes) plus one growable node pool with an
//! intrusive free list. Watch/drain/clear are O(1)/O(waiters) exactly as
//! before, nodes are recycled without ever returning memory to the
//! allocator, and the whole table is two allocations regardless of
//! register count — so wide sweeps stop paying per-register table
//! memory.

use crate::regfile::PhysReg;

/// Sentinel index marking an empty list / the end of the free list.
const NIL: u32 = u32::MAX;

/// One waiter record in the arena: the waiting IQ entry's sequence
/// number and the next record on the same register's list.
#[derive(Clone, Copy, Debug)]
struct Node {
    seq: u64,
    next: u32,
}

/// Per-physical-register lists of IQ entries (by sequence number)
/// waiting for that register's value, backed by one shared node arena.
#[derive(Clone, Debug)]
pub struct WakeupTable {
    /// First waiter node per register (`NIL` = no waiters).
    heads: Vec<u32>,
    /// Last waiter node per register, for O(1) FIFO append.
    tails: Vec<u32>,
    /// The shared node pool. Freed nodes are threaded onto `free` and
    /// recycled; the pool grows only when more waiters are simultaneously
    /// live than ever before (bounded by two source operands per IQ
    /// entry plus lazily-dropped squashed waiters).
    nodes: Vec<Node>,
    /// Head of the free list inside `nodes` (`NIL` = pool exhausted).
    free: u32,
}

impl WakeupTable {
    /// A table covering `phys_regs` physical registers, all lists empty.
    pub fn new(phys_regs: usize) -> Self {
        Self {
            heads: vec![NIL; phys_regs],
            tails: vec![NIL; phys_regs],
            nodes: Vec::new(),
            free: NIL,
        }
    }

    /// Takes a node off the free list, or grows the pool.
    fn alloc(&mut self, seq: u64) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let node = &mut self.nodes[idx as usize];
            self.free = node.next;
            node.seq = seq;
            node.next = NIL;
            idx
        } else {
            let idx = u32::try_from(self.nodes.len()).expect("wakeup arena index fits in u32");
            self.nodes.push(Node { seq, next: NIL });
            idx
        }
    }

    /// Registers `seq` as waiting on `p`.
    pub fn watch(&mut self, p: PhysReg, seq: u64) {
        let idx = self.alloc(seq);
        let r = p.0 as usize;
        if self.heads[r] == NIL {
            self.heads[r] = idx;
        } else {
            self.nodes[self.tails[r] as usize].next = idx;
        }
        self.tails[r] = idx;
    }

    /// Whether no entry is waiting on `p`.
    pub fn is_empty(&self, p: PhysReg) -> bool {
        self.heads[p.0 as usize] == NIL
    }

    /// Detaches `p`'s list, returning its head (the register ends up
    /// empty). The caller walks/frees the chain.
    fn take(&mut self, p: PhysReg) -> u32 {
        let r = p.0 as usize;
        let head = self.heads[r];
        self.heads[r] = NIL;
        self.tails[r] = NIL;
        head
    }

    /// Moves `p`'s waiters into `into` (appending, in watch order),
    /// leaving the list empty and recycling the nodes.
    pub fn drain_into(&mut self, p: PhysReg, into: &mut Vec<u64>) {
        let mut cur = self.take(p);
        while cur != NIL {
            let node = self.nodes[cur as usize];
            into.push(node.seq);
            self.nodes[cur as usize].next = self.free;
            self.free = cur;
            cur = node.next;
        }
    }

    /// Drops every waiter of `p` (squash recovery: the register was
    /// unrenamed, so all of its waiters were squashed with it).
    pub fn clear(&mut self, p: PhysReg) {
        let mut cur = self.take(p);
        while cur != NIL {
            let next = self.nodes[cur as usize].next;
            self.nodes[cur as usize].next = self.free;
            self.free = cur;
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watch_drain_roundtrip() {
        let mut w = WakeupTable::new(4);
        let p = PhysReg(2);
        assert!(w.is_empty(p));
        w.watch(p, 10);
        w.watch(p, 12);
        assert!(!w.is_empty(p));
        let mut out = Vec::new();
        w.drain_into(p, &mut out);
        assert_eq!(out, vec![10, 12]);
        assert!(w.is_empty(p));
    }

    #[test]
    fn clear_drops_waiters() {
        let mut w = WakeupTable::new(4);
        w.watch(PhysReg(1), 7);
        w.clear(PhysReg(1));
        assert!(w.is_empty(PhysReg(1)));
        // Other registers are untouched.
        w.watch(PhysReg(3), 9);
        w.clear(PhysReg(1));
        assert!(!w.is_empty(PhysReg(3)));
    }

    #[test]
    fn drain_appends_to_existing_scratch() {
        let mut w = WakeupTable::new(2);
        w.watch(PhysReg(0), 1);
        let mut out = vec![99];
        w.drain_into(PhysReg(0), &mut out);
        assert_eq!(out, vec![99, 1]);
    }

    #[test]
    fn arena_recycles_nodes_instead_of_growing() {
        let mut w = WakeupTable::new(8);
        let mut out = Vec::new();
        for round in 0..100u64 {
            for r in 0..8u16 {
                w.watch(PhysReg(r), round * 8 + u64::from(r));
            }
            for r in 0..8u16 {
                out.clear();
                w.drain_into(PhysReg(r), &mut out);
                assert_eq!(out, vec![round * 8 + u64::from(r)]);
            }
        }
        // 100 rounds of 8 concurrent waiters never need more than 8 nodes.
        assert_eq!(w.nodes.len(), 8, "freed nodes must be recycled");
    }

    #[test]
    fn interleaved_lists_stay_disjoint() {
        let mut w = WakeupTable::new(4);
        // Interleave watches across registers so the chains interleave in
        // the arena, then check each register drains exactly its own.
        for i in 0..12u64 {
            w.watch(PhysReg((i % 4) as u16), i);
        }
        for r in 0..4u16 {
            let mut out = Vec::new();
            w.drain_into(PhysReg(r), &mut out);
            let expect: Vec<u64> = (0..12).filter(|i| i % 4 == u64::from(r)).collect();
            assert_eq!(out, expect, "register {r} drains its own watch order");
        }
    }

    #[test]
    fn clear_then_watch_reuses_freed_chain() {
        let mut w = WakeupTable::new(2);
        for i in 0..5 {
            w.watch(PhysReg(0), i);
        }
        let grown = w.nodes.len();
        w.clear(PhysReg(0));
        for i in 10..15 {
            w.watch(PhysReg(1), i);
        }
        assert_eq!(w.nodes.len(), grown, "cleared nodes feed later watches");
        let mut out = Vec::new();
        w.drain_into(PhysReg(1), &mut out);
        assert_eq!(out, vec![10, 11, 12, 13, 14]);
    }
}
