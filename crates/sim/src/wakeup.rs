//! Per-physical-register wakeup lists for the event-driven issue stage.
//!
//! The issue queue used to be scanned linearly every cycle, re-checking
//! every entry's source ready bits — cost proportional to IQ *occupancy*,
//! which is worst exactly when the machine is stalled (a full IQ waiting
//! on memory). With wakeup lists the dependency graph is walked instead:
//! a dispatching instruction registers itself on each not-yet-ready
//! source register, and the writeback that produces that register wakes
//! precisely the instructions waiting on it. Issue cost becomes
//! O(instructions woken + instructions issued).
//!
//! Coherence rules (the engine upholds these; see `Core`):
//!
//! * an entry is registered at dispatch on every source register whose
//!   value is still in flight;
//! * a register's list is drained when its value is written (the only
//!   ready-bit `false → true` transition for a live consumer);
//! * a squash clears the list of every unrenamed (freed) register —
//!   any waiter on it was younger than the squashed producer and is
//!   gone from the IQ; waiters squashed while their *surviving*
//!   producer is still in flight are dropped lazily when that producer
//!   writes back (the drained seq no longer resolves in the IQ).

use crate::regfile::PhysReg;

/// Per-physical-register lists of IQ entries (by sequence number)
/// waiting for that register's value.
#[derive(Clone, Debug)]
pub struct WakeupTable {
    waiters: Vec<Vec<u64>>,
}

impl WakeupTable {
    /// A table covering `phys_regs` physical registers, all lists empty.
    pub fn new(phys_regs: usize) -> Self {
        Self {
            waiters: vec![Vec::new(); phys_regs],
        }
    }

    /// Registers `seq` as waiting on `p`.
    pub fn watch(&mut self, p: PhysReg, seq: u64) {
        self.waiters[p.0 as usize].push(seq);
    }

    /// Whether no entry is waiting on `p`.
    pub fn is_empty(&self, p: PhysReg) -> bool {
        self.waiters[p.0 as usize].is_empty()
    }

    /// Moves `p`'s waiters into `into` (appending), leaving the list
    /// empty but with its capacity retained for reuse.
    pub fn drain_into(&mut self, p: PhysReg, into: &mut Vec<u64>) {
        into.append(&mut self.waiters[p.0 as usize]);
    }

    /// Drops every waiter of `p` (squash recovery: the register was
    /// unrenamed, so all of its waiters were squashed with it).
    pub fn clear(&mut self, p: PhysReg) {
        self.waiters[p.0 as usize].clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watch_drain_roundtrip() {
        let mut w = WakeupTable::new(4);
        let p = PhysReg(2);
        assert!(w.is_empty(p));
        w.watch(p, 10);
        w.watch(p, 12);
        assert!(!w.is_empty(p));
        let mut out = Vec::new();
        w.drain_into(p, &mut out);
        assert_eq!(out, vec![10, 12]);
        assert!(w.is_empty(p));
    }

    #[test]
    fn clear_drops_waiters() {
        let mut w = WakeupTable::new(4);
        w.watch(PhysReg(1), 7);
        w.clear(PhysReg(1));
        assert!(w.is_empty(PhysReg(1)));
        // Other registers are untouched.
        w.watch(PhysReg(3), 9);
        w.clear(PhysReg(1));
        assert!(!w.is_empty(PhysReg(3)));
    }

    #[test]
    fn drain_appends_to_existing_scratch() {
        let mut w = WakeupTable::new(2);
        w.watch(PhysReg(0), 1);
        let mut out = vec![99];
        w.drain_into(PhysReg(0), &mut out);
        assert_eq!(out, vec![99, 1]);
    }
}
