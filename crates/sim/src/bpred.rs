//! Tournament branch predictor, branch target buffer and return address
//! stack, sized per Table 1: 2-bit counters, 2048-entry local, 8192-entry
//! global, 8192-entry choice, 4096-entry BTB, 16-entry RAS.
//!
//! Direction tables are trained **at commit only** — the paper's stance
//! (§4.9 "Other soft state") is that branch predictors should be updated
//! non-speculatively, and training at commit also keeps the predictor
//! deterministic across mitigation schemes so performance differences come
//! from the memory system, not predictor noise. Global history *is*
//! updated speculatively at fetch (that is fundamental to using it), and
//! each in-flight branch carries a snapshot for squash repair.

/// Predictor geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BpredConfig {
    /// Entries in the local (per-PC) history predictor table.
    pub local_entries: usize,
    /// Entries in the global-history predictor table.
    pub global_entries: usize,
    /// Entries in the tournament choice (meta) predictor table.
    pub choice_entries: usize,
    /// Branch target buffer entries.
    pub btb_entries: usize,
    /// Return address stack depth.
    pub ras_entries: usize,
}

impl Default for BpredConfig {
    /// Table 1 sizing.
    fn default() -> Self {
        Self {
            local_entries: 2048,
            global_entries: 8192,
            choice_entries: 8192,
            btb_entries: 4096,
            ras_entries: 16,
        }
    }
}

/// A direction prediction plus the state needed to repair and train later.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Global history register value *before* this prediction was shifted
    /// in; restored on squash.
    pub ghist_before: u64,
}

/// Everything the predictor needs to learn from a resolved branch.
#[derive(Clone, Copy, Debug)]
pub struct BranchUpdate {
    /// Program counter of the resolved branch.
    pub pc: u64,
    /// Actual direction the branch took.
    pub taken: bool,
    /// Global history the branch was predicted under.
    pub ghist_before: u64,
    /// Resolved target (trains the BTB for taken branches).
    pub target: u64,
}

fn sat_inc(c: &mut u8) {
    if *c < 3 {
        *c += 1;
    }
}

fn sat_dec(c: &mut u8) {
    if *c > 0 {
        *c -= 1;
    }
}

/// The tournament predictor (local + global, with a choice table), BTB
/// and RAS.
#[derive(Clone, Debug)]
pub struct TournamentPredictor {
    cfg: BpredConfig,
    local_hist: Vec<u16>,
    local_ctr: Vec<u8>,
    global_ctr: Vec<u8>,
    choice_ctr: Vec<u8>,
    ghist: u64,
    btb: Vec<Option<(u64, u64)>>, // (pc, target)
    ras: Vec<u64>,
    ras_sp: usize,
}

impl TournamentPredictor {
    /// Builds a predictor with weakly-not-taken counters.
    ///
    /// # Panics
    ///
    /// Panics unless all table sizes are powers of two.
    pub fn new(cfg: BpredConfig) -> Self {
        for (name, n) in [
            ("local", cfg.local_entries),
            ("global", cfg.global_entries),
            ("choice", cfg.choice_entries),
            ("btb", cfg.btb_entries),
        ] {
            assert!(n.is_power_of_two(), "{name} table size must be 2^n");
        }
        assert!(cfg.ras_entries > 0, "RAS must have at least one entry");
        Self {
            cfg,
            local_hist: vec![0; cfg.local_entries],
            local_ctr: vec![1; cfg.local_entries],
            global_ctr: vec![1; cfg.global_entries],
            choice_ctr: vec![1; cfg.choice_entries],
            ghist: 0,
            btb: vec![None; cfg.btb_entries],
            ras: vec![0; cfg.ras_entries],
            ras_sp: 0,
        }
    }

    fn local_index(&self, pc: u64) -> usize {
        (pc as usize) & (self.cfg.local_entries - 1)
    }

    fn local_ctr_index(&self, pc: u64) -> usize {
        let hist = self.local_hist[self.local_index(pc)];
        (hist as usize) & (self.cfg.local_entries - 1)
    }

    fn global_index(&self, ghist: u64) -> usize {
        (ghist as usize) & (self.cfg.global_entries - 1)
    }

    fn choice_index(&self, ghist: u64) -> usize {
        (ghist as usize) & (self.cfg.choice_entries - 1)
    }

    /// Predicts the direction of the conditional branch at `pc` and
    /// speculatively shifts the prediction into global history.
    pub fn predict(&mut self, pc: u64) -> Prediction {
        let ghist_before = self.ghist;
        let local = self.local_ctr[self.local_ctr_index(pc)] >= 2;
        let global = self.global_ctr[self.global_index(ghist_before)] >= 2;
        let use_global = self.choice_ctr[self.choice_index(ghist_before)] >= 2;
        let taken = if use_global { global } else { local };
        self.ghist = (ghist_before << 1) | taken as u64;
        Prediction {
            taken,
            ghist_before,
        }
    }

    /// Restores global history after a squash: history is rewound to the
    /// mispredicted branch's snapshot and the *actual* outcome shifted in.
    pub fn repair_ghist(&mut self, ghist_before: u64, actual_taken: bool) {
        self.ghist = (ghist_before << 1) | actual_taken as u64;
    }

    /// Restores global history exactly (squash caused by a non-branch,
    /// e.g. a jalr target mispredict).
    pub fn restore_ghist(&mut self, ghist: u64) {
        self.ghist = ghist;
    }

    /// Trains direction tables and BTB from a committed branch.
    pub fn train(&mut self, u: &BranchUpdate) {
        // Local.
        let lci = self.local_ctr_index(u.pc);
        if u.taken {
            sat_inc(&mut self.local_ctr[lci]);
        } else {
            sat_dec(&mut self.local_ctr[lci]);
        }
        let li = self.local_index(u.pc);
        self.local_hist[li] = (self.local_hist[li] << 1) | u.taken as u16;
        // Global.
        let gi = self.global_index(u.ghist_before);
        let global_pred = self.global_ctr[gi] >= 2;
        if u.taken {
            sat_inc(&mut self.global_ctr[gi]);
        } else {
            sat_dec(&mut self.global_ctr[gi]);
        }
        // Choice: move towards whichever component was right (local
        // prediction recomputed against the *pre-update* local counter is
        // no longer available, so use the common simplification of
        // comparing the global component only).
        let ci = self.choice_index(u.ghist_before);
        let local_pred = self.local_ctr[lci] >= 2;
        if global_pred != local_pred {
            if global_pred == u.taken {
                sat_inc(&mut self.choice_ctr[ci]);
            } else {
                sat_dec(&mut self.choice_ctr[ci]);
            }
        }
        if u.taken {
            self.btb_insert(u.pc, u.target);
        }
    }

    fn btb_index(&self, pc: u64) -> usize {
        (pc as usize) & (self.cfg.btb_entries - 1)
    }

    /// Looks up a branch target.
    pub fn btb_lookup(&self, pc: u64) -> Option<u64> {
        match self.btb[self.btb_index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Inserts/overwrites a BTB entry.
    pub fn btb_insert(&mut self, pc: u64, target: u64) {
        let i = self.btb_index(pc);
        self.btb[i] = Some((pc, target));
    }

    /// Pushes a return address (call at fetch). Returns a checkpoint for
    /// squash repair.
    pub fn ras_push(&mut self, ret: u64) -> RasCheckpoint {
        let cp = RasCheckpoint {
            sp: self.ras_sp,
            overwritten: self.ras[self.ras_sp],
        };
        self.ras[self.ras_sp] = ret;
        self.ras_sp = (self.ras_sp + 1) % self.cfg.ras_entries;
        cp
    }

    /// Pops a predicted return address (return at fetch).
    pub fn ras_pop(&mut self) -> (u64, RasCheckpoint) {
        let cp = RasCheckpoint {
            sp: self.ras_sp,
            overwritten: 0,
        };
        self.ras_sp = (self.ras_sp + self.cfg.ras_entries - 1) % self.cfg.ras_entries;
        (self.ras[self.ras_sp], cp)
    }

    /// Restores the RAS to a checkpoint taken at a squashed push/pop.
    pub fn ras_restore(&mut self, cp: RasCheckpoint) {
        // Undo a push by restoring the overwritten slot; undoing a pop
        // only needs the stack pointer.
        if cp.overwritten != 0 {
            self.ras[cp.sp] = cp.overwritten;
        }
        self.ras_sp = cp.sp;
    }

    /// Current (speculative) global history.
    pub fn ghist(&self) -> u64 {
        self.ghist
    }
}

/// Snapshot for undoing one RAS push or pop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RasCheckpoint {
    sp: usize,
    overwritten: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred() -> TournamentPredictor {
        TournamentPredictor::new(BpredConfig::default())
    }

    #[test]
    fn learns_always_taken_branch() {
        let mut p = pred();
        let pc = 0x40;
        // The local component is two-level (history -> pattern table), so
        // it needs enough iterations for the history register to saturate.
        for _ in 0..32 {
            let pr = p.predict(pc);
            p.train(&BranchUpdate {
                pc,
                taken: true,
                ghist_before: pr.ghist_before,
                target: 7,
            });
        }
        assert!(p.predict(pc).taken, "always-taken branch must be learned");
        assert_eq!(p.btb_lookup(pc), Some(7));
    }

    #[test]
    fn learns_never_taken_branch() {
        let mut p = pred();
        let pc = 0x80;
        for _ in 0..8 {
            let pr = p.predict(pc);
            p.train(&BranchUpdate {
                pc,
                taken: false,
                ghist_before: pr.ghist_before,
                target: 0,
            });
        }
        assert!(!p.predict(pc).taken);
        assert_eq!(p.btb_lookup(pc), None, "not-taken trains no BTB entry");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = pred();
        let pc = 0x100;
        let mut correct = 0;
        let mut total = 0;
        for i in 0..200u32 {
            let taken = i % 2 == 0;
            let pr = p.predict(pc);
            if i >= 100 {
                total += 1;
                if pr.taken == taken {
                    correct += 1;
                }
            }
            p.train(&BranchUpdate {
                pc,
                taken,
                ghist_before: pr.ghist_before,
                target: 1,
            });
        }
        assert!(
            correct * 10 >= total * 9,
            "history-based predictor should learn alternation: {correct}/{total}"
        );
    }

    #[test]
    fn ghist_shifts_and_repairs() {
        let mut p = pred();
        let before = p.ghist();
        let pr = p.predict(0x40);
        assert_eq!(p.ghist(), (before << 1) | pr.taken as u64);
        // Mispredict discovered: repair with the actual outcome.
        p.repair_ghist(pr.ghist_before, !pr.taken);
        assert_eq!(p.ghist(), (before << 1) | (!pr.taken) as u64);
        p.restore_ghist(before);
        assert_eq!(p.ghist(), before);
    }

    #[test]
    fn btb_tag_rejects_aliased_pc() {
        let mut p = pred();
        p.btb_insert(0x40, 5);
        // Same index (4096 entries), different pc tag.
        assert_eq!(p.btb_lookup(0x40 + 4096), None);
        assert_eq!(p.btb_lookup(0x40), Some(5));
    }

    #[test]
    fn ras_push_pop_round_trip() {
        let mut p = pred();
        p.ras_push(101);
        p.ras_push(202);
        let (top, _) = p.ras_pop();
        assert_eq!(top, 202);
        let (next, _) = p.ras_pop();
        assert_eq!(next, 101);
    }

    #[test]
    fn ras_checkpoint_undoes_push_and_pop() {
        let mut p = pred();
        p.ras_push(101);
        let cp = p.ras_push(202); // to be squashed
        p.ras_restore(cp);
        let (top, _) = p.ras_pop();
        assert_eq!(top, 101, "squashed push must not be visible");

        let mut p = pred();
        p.ras_push(111);
        let (v, cp) = p.ras_pop(); // to be squashed
        assert_eq!(v, 111);
        p.ras_restore(cp);
        let (again, _) = p.ras_pop();
        assert_eq!(again, 111, "squashed pop must restore the entry");
    }

    #[test]
    fn ras_wraps_at_capacity() {
        let mut p = TournamentPredictor::new(BpredConfig {
            ras_entries: 2,
            ..Default::default()
        });
        p.ras_push(1);
        p.ras_push(2);
        p.ras_push(3); // overwrites 1
        assert_eq!(p.ras_pop().0, 3);
        assert_eq!(p.ras_pop().0, 2);
        assert_eq!(p.ras_pop().0, 3, "wrapped stack re-reads overwritten slot");
    }

    #[test]
    #[should_panic(expected = "2^n")]
    fn non_power_of_two_table_panics() {
        let _ = TournamentPredictor::new(BpredConfig {
            local_entries: 1000,
            ..Default::default()
        });
    }
}
