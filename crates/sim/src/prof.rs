//! Per-stage profiling counters for the stage-gated busy path
//! (feature `stage-prof`).
//!
//! `Core::tick` dispatches a pipeline stage only when its pending-work
//! predicate holds. With this feature enabled, every dispatch decision
//! is counted: how often each stage actually ran, how often the gate
//! skipped it, and how much wall time the dispatched bodies cost. The
//! numbers prove the gating fires (skip counts) and show where the
//! remaining busy-path time goes (run time per stage) — the
//! profile-guided evidence ROADMAP item 1 asks for.
//!
//! The counters are global relaxed atomics rather than per-core fields
//! so the non-profiling build carries literally nothing: with the
//! feature off, the gate compiles down to the bare predicate branch.
//! Consequently the numbers aggregate over *all* cores and runs since
//! the last [`reset`]; the bench driver resets around each experiment
//! and snapshots after it. Concurrent simulations would blend their
//! counts — acceptable for a diagnosis build, meaningless only if you
//! profile two experiments at once (the bench driver does not).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The gated stages of [`crate::Core`]'s tick, in dispatch order.
/// `drain_cancellations` and the FU new-cycle rollover are ungated
/// (they are the channels that *create* pending work) and therefore
/// not profiled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Event-heap drain: results due this cycle wake dependents.
    Writeback,
    /// In-order retirement from the ROB head.
    Commit,
    /// Ready-instruction selection and FU dispatch.
    Issue,
    /// Load/store queue send pass (forwarding, STT gate, ports).
    Lsq,
    /// Decode/rename/allocate from the fetch queue.
    Rename,
    /// Instruction fetch into the fetch queue.
    Fetch,
}

/// All stages, in dispatch order (table rendering).
pub const STAGES: [Stage; 6] = [
    Stage::Writeback,
    Stage::Commit,
    Stage::Issue,
    Stage::Lsq,
    Stage::Rename,
    Stage::Fetch,
];

const N: usize = 6;
// `[const { ... }; N]` needs Rust 1.79; the promoted-const repeat works
// on the workspace MSRV (1.75).
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static RUNS: [AtomicU64; N] = [ZERO; N];
static SKIPS: [AtomicU64; N] = [ZERO; N];
static NANOS: [AtomicU64; N] = [ZERO; N];

impl Stage {
    /// Stable index into the counter arrays.
    fn index(self) -> usize {
        match self {
            Stage::Writeback => 0,
            Stage::Commit => 1,
            Stage::Issue => 2,
            Stage::Lsq => 3,
            Stage::Rename => 4,
            Stage::Fetch => 5,
        }
    }

    /// Human-readable stage name (table rendering).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Writeback => "writeback",
            Stage::Commit => "commit",
            Stage::Issue => "issue",
            Stage::Lsq => "lsq",
            Stage::Rename => "rename",
            Stage::Fetch => "fetch",
        }
    }
}

/// Records one dispatched stage body and its wall time.
#[inline]
pub fn record_run(stage: Stage, elapsed: Duration) {
    let i = stage.index();
    RUNS[i].fetch_add(1, Ordering::Relaxed);
    NANOS[i].fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
}

/// Records one stage skipped by its gate.
#[inline]
pub fn record_skip(stage: Stage) {
    SKIPS[stage.index()].fetch_add(1, Ordering::Relaxed);
}

/// Zeroes all counters. The bench driver calls this before each
/// profiled experiment so per-experiment snapshots don't blend.
pub fn reset() {
    for c in RUNS.iter().chain(SKIPS.iter()).chain(NANOS.iter()) {
        c.store(0, Ordering::Relaxed);
    }
}

/// One stage's counters since the last [`reset`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageCounts {
    /// Which stage the row describes.
    pub stage: Stage,
    /// Times the gate passed and the body ran.
    pub runs: u64,
    /// Times the gate skipped the body.
    pub skips: u64,
    /// Total wall time spent inside dispatched bodies, in nanoseconds.
    pub nanos: u64,
}

/// Snapshot of all six stages, in dispatch order.
pub fn snapshot() -> [StageCounts; 6] {
    STAGES.map(|stage| {
        let i = stage.index();
        StageCounts {
            stage,
            runs: RUNS[i].load(Ordering::Relaxed),
            skips: SKIPS[i].load(Ordering::Relaxed),
            nanos: NANOS[i].load(Ordering::Relaxed),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counters are process-global, so this single test exercises
    // reset, record, and snapshot in one sequence (parallel test
    // threads would otherwise race on the shared state).
    #[test]
    fn record_reset_snapshot_roundtrip() {
        reset();
        record_run(Stage::Commit, Duration::from_nanos(120));
        record_run(Stage::Commit, Duration::from_nanos(80));
        record_skip(Stage::Fetch);
        let snap = snapshot();
        let commit = snap[Stage::Commit.index()];
        assert_eq!(commit.runs, 2);
        assert_eq!(commit.skips, 0);
        assert_eq!(commit.nanos, 200);
        let fetch = snap[Stage::Fetch.index()];
        assert_eq!(fetch.runs, 0);
        assert_eq!(fetch.skips, 1);
        assert_eq!(snap[Stage::Writeback.index()].runs, 0);
        reset();
        assert!(snapshot().iter().all(|c| c.runs + c.skips + c.nanos == 0));
    }

    #[test]
    fn stage_order_matches_indices() {
        for (i, s) in STAGES.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }
}
