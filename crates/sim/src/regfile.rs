//! Physical register file, rename map and free list.
//!
//! Renaming gives each in-flight instruction a private destination
//! register, which is what lets the core run far ahead speculatively —
//! and therefore what gives transient instructions real values to leak.
//! Recovery restores the map by walking squashed ROB entries youngest-
//! first, returning each entry's allocation and reinstating the previous
//! mapping.

use gm_isa::{Reg, NUM_ARCH_REGS};
use std::collections::VecDeque;

/// A physical register name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PhysReg(pub u16);

/// Physical register file with ready bits and taint bits, plus the
/// architectural rename map and free list.
///
/// Integer and FP registers live in one flat physical file, partitioned
/// by construction (arch regs 0–31 map into the integer partition,
/// 32–63 into the FP partition) — the partitioning only affects free-list
/// accounting, which is what bounds rename.
#[derive(Clone, Debug)]
pub struct RegFile {
    vals: Vec<u64>,
    ready: Vec<bool>,
    /// STT taint: set when the value was produced by a speculatively
    /// issued load or derived from one.
    taint: Vec<bool>,
    map: [PhysReg; NUM_ARCH_REGS],
    free_int: VecDeque<PhysReg>,
    free_fp: VecDeque<PhysReg>,
}

impl RegFile {
    /// Builds a register file with `int_regs` + `fp_regs` physical
    /// registers. The first 32 of each partition seed the architectural
    /// map and start ready with value 0.
    ///
    /// # Panics
    ///
    /// Panics if either partition cannot cover its 32 architectural
    /// registers.
    pub fn new(int_regs: usize, fp_regs: usize) -> Self {
        assert!(int_regs > 32 && fp_regs > 32, "need > 32 regs per class");
        let total = int_regs + fp_regs;
        let mut map = [PhysReg(0); NUM_ARCH_REGS];
        for i in 0..32 {
            map[i] = PhysReg(i as u16);
            map[32 + i] = PhysReg((int_regs + i) as u16);
        }
        let free_int = (32..int_regs).map(|i| PhysReg(i as u16)).collect();
        let free_fp = (int_regs + 32..total).map(|i| PhysReg(i as u16)).collect();
        Self {
            vals: vec![0; total],
            ready: vec![true; total],
            taint: vec![false; total],
            map,
            free_int,
            free_fp,
        }
    }

    /// Current physical mapping of an architectural register.
    pub fn lookup(&self, r: Reg) -> PhysReg {
        self.map[r.index()]
    }

    /// Free physical registers available in `r`'s class.
    pub fn free_count(&self, fp: bool) -> usize {
        if fp {
            self.free_fp.len()
        } else {
            self.free_int.len()
        }
    }

    /// Renames `rd` to a fresh physical register. Returns the new
    /// mapping and the previous one (for squash recovery and commit-time
    /// freeing). `None` when the free list for the class is empty.
    pub fn rename(&mut self, rd: Reg) -> Option<(PhysReg, PhysReg)> {
        let list = if rd.is_fp() {
            &mut self.free_fp
        } else {
            &mut self.free_int
        };
        let new = list.pop_front()?;
        let old = self.map[rd.index()];
        self.map[rd.index()] = new;
        self.ready[new.0 as usize] = false;
        self.taint[new.0 as usize] = false;
        Some((new, old))
    }

    /// Undoes a rename during squash: reinstates `old` as the mapping of
    /// `rd` and returns `new` to the free list.
    pub fn unrename(&mut self, rd: Reg, new: PhysReg, old: PhysReg) {
        debug_assert_eq!(self.map[rd.index()], new, "unrename out of order");
        self.map[rd.index()] = old;
        self.ready[new.0 as usize] = true; // free regs read as ready
        self.taint[new.0 as usize] = false;
        if rd.is_fp() {
            self.free_fp.push_front(new);
        } else {
            self.free_int.push_front(new);
        }
    }

    /// Frees the *previous* mapping of a committed instruction's
    /// destination (it can no longer be referenced).
    pub fn release(&mut self, rd: Reg, old: PhysReg) {
        if rd.is_fp() {
            self.free_fp.push_back(old);
        } else {
            self.free_int.push_back(old);
        }
        self.taint[old.0 as usize] = false;
    }

    /// Reads a physical register's value.
    pub fn read(&self, p: PhysReg) -> u64 {
        self.vals[p.0 as usize]
    }

    /// Whether a physical register's value has been produced.
    pub fn is_ready(&self, p: PhysReg) -> bool {
        self.ready[p.0 as usize]
    }

    /// Writes a result and marks it ready.
    pub fn write(&mut self, p: PhysReg, val: u64) {
        self.vals[p.0 as usize] = val;
        self.ready[p.0 as usize] = true;
    }

    /// Marks a register's taint (STT).
    pub fn set_taint(&mut self, p: PhysReg, tainted: bool) {
        self.taint[p.0 as usize] = tainted;
    }

    /// Whether a register is tainted (STT).
    pub fn is_tainted(&self, p: PhysReg) -> bool {
        self.taint[p.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_map_reads_zero_and_ready() {
        let rf = RegFile::new(48, 48);
        for i in 0..NUM_ARCH_REGS {
            let p = rf.lookup(Reg(i as u8));
            assert!(rf.is_ready(p));
            assert_eq!(rf.read(p), 0);
        }
        assert_eq!(rf.free_count(false), 16);
        assert_eq!(rf.free_count(true), 16);
    }

    #[test]
    fn rename_write_read_cycle() {
        let mut rf = RegFile::new(48, 48);
        let rd = Reg::x(5);
        let (new, old) = rf.rename(rd).expect("free regs available");
        assert_ne!(new, old);
        assert!(!rf.is_ready(new));
        assert_eq!(rf.lookup(rd), new);
        rf.write(new, 77);
        assert!(rf.is_ready(new));
        assert_eq!(rf.read(rf.lookup(rd)), 77);
    }

    #[test]
    fn unrename_restores_previous_mapping() {
        let mut rf = RegFile::new(48, 48);
        let rd = Reg::x(3);
        let before = rf.lookup(rd);
        let (new, old) = rf.rename(rd).unwrap();
        assert_eq!(old, before);
        rf.unrename(rd, new, old);
        assert_eq!(rf.lookup(rd), before);
        // The freed register is reusable immediately.
        let (again, _) = rf.rename(rd).unwrap();
        assert_eq!(again, new, "unrenamed register returns to front of list");
    }

    #[test]
    fn classes_use_disjoint_free_lists() {
        let mut rf = RegFile::new(34, 34);
        // Two free int regs, two free fp regs.
        assert!(rf.rename(Reg::x(1)).is_some());
        assert!(rf.rename(Reg::x(2)).is_some());
        assert!(rf.rename(Reg::x(3)).is_none(), "int free list exhausted");
        assert!(rf.rename(Reg::f(1)).is_some(), "fp list unaffected");
    }

    #[test]
    fn release_returns_register_for_reuse() {
        let mut rf = RegFile::new(34, 34);
        let rd = Reg::x(1);
        let (_, old1) = rf.rename(rd).unwrap();
        let (_, _old2) = rf.rename(rd).unwrap();
        assert!(rf.rename(rd).is_none());
        rf.release(rd, old1); // commit frees the prior mapping
        assert!(rf.rename(rd).is_some());
    }

    #[test]
    fn taint_set_cleared_on_rename_and_release() {
        let mut rf = RegFile::new(48, 48);
        let rd = Reg::x(9);
        let (p, old) = rf.rename(rd).unwrap();
        rf.set_taint(p, true);
        assert!(rf.is_tainted(p));
        rf.release(rd, old);
        // Renaming reuses regs with taint cleared.
        let (p2, _) = rf.rename(Reg::x(10)).unwrap();
        assert!(!rf.is_tainted(p2));
    }
}
