//! Deterministic job fingerprints: the content address of one
//! (workload × scheme × scale × configuration) simulation.
//!
//! The fingerprint is the SHA-256 of a canonical-JSON job descriptor.
//! Each axis contributes its full content, not just its name:
//!
//! * the **workload** contributes its name, thread count, and a SHA-256
//!   over every program's instruction stream, data segments, and initial
//!   registers — so regenerating a workload kernel differently (even at
//!   the same name and scale) invalidates cached results;
//! * the **scheme** contributes [`Scheme::canonical_json`];
//! * the **scale** contributes its CLI name (programs also differ per
//!   scale, but the name keeps descriptors human-debuggable);
//! * the **system configuration** contributes
//!   [`SystemConfig::canonical_json`].
//!
//! Any simulator-visible change to any of the four renders a different
//! descriptor and therefore misses the cache, which is the property the
//! store's correctness rests on.

use crate::hash::{sha256_hex, Sha256};
use ghostminion::{Scheme, SystemConfig};
use gm_isa::Program;
use gm_stats::Json;
use gm_workloads::{Scale, WorkloadUnit};

/// Version tag mixed into every descriptor. Bump on any change to the
/// descriptor layout or the stored-record schema: old store files then
/// miss cleanly instead of being misread.
pub const FORMAT_VERSION: u64 = 1;

/// Content hash of one program: instruction stream, initial memory
/// image, and initial register state. The program's display name is
/// excluded — renaming a kernel does not change what it simulates.
pub fn program_sha(p: &Program) -> String {
    use std::fmt::Write as _;
    let mut h = Sha256::new();
    h.update(&(p.insts.len() as u64).to_le_bytes());
    let mut buf = String::new();
    for inst in &p.insts {
        // Inst has no public byte encoding; its derived Debug form is a
        // deterministic, field-complete rendering, so it hashes the full
        // instruction content.
        buf.clear();
        write!(buf, "{inst:?}").expect("fmt to String");
        h.update(buf.as_bytes());
        h.update(b"\n");
    }
    h.update(&(p.data.len() as u64).to_le_bytes());
    for seg in &p.data {
        h.update(&seg.base.to_le_bytes());
        h.update(&(seg.bytes.len() as u64).to_le_bytes());
        h.update(&seg.bytes);
    }
    h.update(&(p.init_regs.len() as u64).to_le_bytes());
    for (reg, value) in &p.init_regs {
        h.update(format!("{reg:?}").as_bytes());
        h.update(&value.to_le_bytes());
    }
    h.finish_hex()
}

/// The canonical job descriptor. Public so tests and debugging tools can
/// inspect what a fingerprint covers; production code wants
/// [`job_fingerprint`].
pub fn job_descriptor(
    unit: &WorkloadUnit,
    scheme: &Scheme,
    scale: Scale,
    cfg: &SystemConfig,
) -> Json {
    let mut j = Json::object();
    j.set("v", FORMAT_VERSION)
        .set("workload", unit.name)
        .set("threads", unit.threads())
        .set(
            "programs",
            // The per-unit memo: programs are immutable after a unit is
            // built (clones reset the slot), and one unit is
            // fingerprinted once per scheme column, so the multi-MiB
            // image hash is computed once, not once per job.
            Json::Array(
                unit.program_shas
                    .get_or_init(|| unit.programs.iter().map(program_sha).collect())
                    .iter()
                    .map(|s| s.clone().into())
                    .collect(),
            ),
        )
        .set("scale", scale.name())
        .set("scheme", scheme.canonical_json())
        .set("config", cfg.canonical_json());
    j
}

/// The fingerprint: 64 lowercase hex characters addressing one job's
/// result in the store.
///
/// ```
/// use ghostminion::{Scheme, SystemConfig};
/// use gm_results::job_fingerprint;
/// use gm_workloads::{Scale, Suite, WorkloadSet};
///
/// let mut set = WorkloadSet::new(Suite::Spec2006, Scale::Test);
/// set.retain_names(&["gamess"]);
/// let unit = &set.units[0];
/// let cfg = SystemConfig::micro2021();
///
/// let fp = job_fingerprint(unit, &Scheme::ghost_minion(), Scale::Test, &cfg);
/// assert_eq!(fp.len(), 64);
/// // Same job, same address; any axis change misses the cache.
/// assert_eq!(fp, job_fingerprint(unit, &Scheme::ghost_minion(), Scale::Test, &cfg));
/// assert_ne!(fp, job_fingerprint(unit, &Scheme::unsafe_baseline(), Scale::Test, &cfg));
/// ```
pub fn job_fingerprint(
    unit: &WorkloadUnit,
    scheme: &Scheme,
    scale: Scale,
    cfg: &SystemConfig,
) -> String {
    sha256_hex(job_descriptor(unit, scheme, scale, cfg).render().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_workloads::{Suite, WorkloadSet};

    fn unit(name: &str) -> WorkloadUnit {
        let mut set = WorkloadSet::new(Suite::Spec2006, Scale::Test);
        set.retain_names(&[name]);
        set.units.remove(0)
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let u = unit("gamess");
        let cfg = SystemConfig::micro2021();
        let a = job_fingerprint(&u, &Scheme::ghost_minion(), Scale::Test, &cfg);
        let b = job_fingerprint(&u, &Scheme::ghost_minion(), Scale::Test, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.bytes().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn every_axis_changes_the_fingerprint() {
        let u = unit("gamess");
        let cfg = SystemConfig::micro2021();
        let base = job_fingerprint(&u, &Scheme::ghost_minion(), Scale::Test, &cfg);

        let other_workload =
            job_fingerprint(&unit("hmmer"), &Scheme::ghost_minion(), Scale::Test, &cfg);
        let other_scheme = job_fingerprint(&u, &Scheme::unsafe_baseline(), Scale::Test, &cfg);
        let other_scale = job_fingerprint(
            &unit_at_scale("gamess", Scale::Bench),
            &Scheme::ghost_minion(),
            Scale::Bench,
            &cfg,
        );
        let other_cfg = job_fingerprint(
            &u,
            &Scheme::ghost_minion(),
            Scale::Test,
            &cfg.with_max_cycles(7),
        );
        for (what, fp) in [
            ("workload", other_workload),
            ("scheme", other_scheme),
            ("scale", other_scale),
            ("config", other_cfg),
        ] {
            assert_ne!(base, fp, "{what} change must change the fingerprint");
        }
    }

    fn unit_at_scale(name: &str, scale: Scale) -> WorkloadUnit {
        let mut set = WorkloadSet::new(Suite::Spec2006, scale);
        set.retain_names(&[name]);
        set.units.remove(0)
    }

    #[test]
    fn program_content_feeds_the_fingerprint() {
        let u = unit("gamess");
        let cfg = SystemConfig::micro2021();
        let base = job_fingerprint(&u, &Scheme::ghost_minion(), Scale::Test, &cfg);
        let mut tampered = u.clone();
        tampered.programs[0].insts.pop();
        let fp = job_fingerprint(&tampered, &Scheme::ghost_minion(), Scale::Test, &cfg);
        assert_ne!(base, fp, "editing the program must miss the cache");

        // Renaming the program (not the unit) changes nothing simulated.
        let mut renamed = u.clone();
        renamed.programs[0].name = "other".to_owned();
        assert_eq!(
            base,
            job_fingerprint(&renamed, &Scheme::ghost_minion(), Scale::Test, &cfg)
        );
    }

    #[test]
    fn descriptor_names_all_axes() {
        let d = job_descriptor(
            &unit("gamess"),
            &Scheme::ghost_minion(),
            Scale::Test,
            &SystemConfig::micro2021(),
        );
        for key in [
            "v", "workload", "threads", "programs", "scale", "scheme", "config",
        ] {
            assert!(d.get(key).is_some(), "{key} missing from descriptor");
        }
        assert_eq!(d.get("scale").unwrap().as_str(), Some("test"));
    }
}
