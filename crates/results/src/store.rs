//! The on-disk result store: one append-only JSON-lines file per
//! experiment, keyed by job fingerprint.
//!
//! Layout: `<dir>/<experiment>.jsonl`, one [`crate::record`] object per
//! line. The runner appends a line the moment a job finishes, so an
//! interrupted run keeps everything it already simulated; a re-run
//! resumes from the survivors. Appends are serialized through an
//! in-process lock; cross-machine writes go to *separate* stores whose
//! outputs meet in `gm-run merge`, not to a shared file.
//!
//! Reads tolerate damage: a truncated final line (killed process) or a
//! corrupt line (bit rot) is skipped and counted, and the affected job
//! simply re-simulates. [`ResultStore::compact`] rewrites a file without
//! the damage and without superseded duplicates — atomically, by
//! renaming a complete temporary file over the original, so a reader
//! never observes a half-written store.

use gm_stats::Json;
use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// What a load found in one experiment's store file.
#[derive(Debug, Default)]
pub struct LoadedShard {
    /// Records by fingerprint; a later line supersedes an earlier one
    /// with the same fingerprint (append-wins).
    pub records: HashMap<String, Json>,
    /// Total well-formed lines read (including superseded duplicates).
    pub lines: usize,
    /// Lines that failed to parse or carried no fingerprint.
    pub corrupt: usize,
}

impl LoadedShard {
    /// Whether a compaction would change the file on disk.
    pub fn needs_compaction(&self) -> bool {
        self.corrupt > 0 || self.lines > self.records.len()
    }
}

/// Result of a [`ResultStore::compact`] pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactStats {
    /// Records surviving in the rewritten file.
    pub kept: usize,
    /// Superseded duplicate lines dropped.
    pub superseded: usize,
    /// Corrupt lines dropped.
    pub corrupt: usize,
}

/// Result of a [`ResultStore::gc`] pass over one experiment file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Records surviving in the rewritten file.
    pub kept: usize,
    /// Records dropped because no current experiment produces their
    /// fingerprint.
    pub dropped: usize,
    /// Superseded duplicate lines dropped along the way.
    pub superseded: usize,
    /// Corrupt lines dropped along the way.
    pub corrupt: usize,
    /// Bytes the rewrite reclaimed on disk.
    pub reclaimed_bytes: u64,
}

/// A directory of per-experiment JSON-lines result files.
///
/// ```
/// use gm_results::ResultStore;
/// use gm_stats::Json;
///
/// let dir = std::env::temp_dir().join(format!("gm-store-doc-{}", std::process::id()));
/// let store = ResultStore::open(&dir)?;
///
/// let mut record = Json::object();
/// record.set("fingerprint", "a".repeat(64)).set("cycles", 42u64);
/// store.append("fig6", &record)?;
///
/// // Later (or concurrently-crashed) runs resume from what survived.
/// let shard = store.load("fig6")?;
/// assert_eq!(shard.records.len(), 1);
/// assert!(!shard.needs_compaction());
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    /// Serializes appends from the runner's worker threads.
    append_lock: Mutex<()>,
}

impl ResultStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            append_lock: Mutex::new(()),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file holding `experiment`'s results.
    pub fn path(&self, experiment: &str) -> PathBuf {
        self.dir.join(format!("{experiment}.jsonl"))
    }

    /// Loads every record of `experiment`. A missing file is an empty
    /// shard, not an error.
    pub fn load(&self, experiment: &str) -> io::Result<LoadedShard> {
        let text = match fs::read_to_string(self.path(experiment)) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LoadedShard::default()),
            Err(e) => return Err(e),
        };
        let mut shard = LoadedShard::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let record = match Json::parse(line) {
                Ok(r) => r,
                Err(_) => {
                    shard.corrupt += 1;
                    continue;
                }
            };
            match record.get("fingerprint").and_then(Json::as_str) {
                Some(fp) => {
                    shard.lines += 1;
                    shard.records.insert(fp.to_owned(), record);
                }
                None => shard.corrupt += 1,
            }
        }
        Ok(shard)
    }

    /// Appends one record to `experiment`'s file. The record must carry
    /// a `"fingerprint"` field (it is the lookup key on the next load).
    pub fn append(&self, experiment: &str, record: &Json) -> io::Result<()> {
        debug_assert!(
            record.get("fingerprint").and_then(Json::as_str).is_some(),
            "store records must carry a fingerprint"
        );
        let line = record.render() + "\n";
        let _guard = self.append_lock.lock().expect("append lock poisoned");
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(experiment))?;
        f.write_all(line.as_bytes())
    }

    /// Rewrites `experiment`'s file keeping only the surviving record
    /// per fingerprint (in first-appearance order) and dropping corrupt
    /// lines. Atomic: the new content is written to a sibling temporary
    /// file, flushed, and renamed over the original, so a crash mid-way
    /// leaves either the old or the new file — never a truncated one.
    pub fn compact(&self, experiment: &str) -> io::Result<CompactStats> {
        let _guard = self.append_lock.lock().expect("append lock poisoned");
        let path = self.path(experiment);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(CompactStats {
                    kept: 0,
                    superseded: 0,
                    corrupt: 0,
                })
            }
            Err(e) => return Err(e),
        };
        self.compact_snapshot(&path, &text)
    }

    /// The write phase of [`ResultStore::compact`], operating on a text
    /// snapshot already read from `path`. Separated so the
    /// grown-under-us abort path is deterministically testable.
    fn compact_snapshot(&self, path: &Path, text: &str) -> io::Result<CompactStats> {
        let g = self.rewrite_snapshot(path, text, None)?;
        Ok(CompactStats {
            kept: g.kept,
            superseded: g.superseded,
            corrupt: g.corrupt,
        })
    }

    /// Garbage-collects `experiment`'s file: keeps only records whose
    /// fingerprint satisfies `keep` (plus the usual compaction of
    /// superseded and corrupt lines), reporting how many records and
    /// bytes were reclaimed. A file left with no records is removed.
    pub fn gc(&self, experiment: &str, keep: &dyn Fn(&str) -> bool) -> io::Result<GcStats> {
        let _guard = self.append_lock.lock().expect("append lock poisoned");
        let path = self.path(experiment);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(GcStats::default()),
            Err(e) => return Err(e),
        };
        self.rewrite_snapshot(&path, &text, Some(keep))
    }

    /// Shared rewrite pass behind [`ResultStore::compact`] and
    /// [`ResultStore::gc`]: dedups superseded lines, drops corrupt ones,
    /// and — when a `keep` predicate is given — drops records whose
    /// fingerprint it rejects. Atomic: the new content is written to a
    /// sibling temporary file, flushed, and renamed over the original,
    /// so a crash mid-way leaves either the old or the new file — never
    /// a truncated one.
    fn rewrite_snapshot(
        &self,
        path: &Path,
        text: &str,
        keep: Option<&dyn Fn(&str) -> bool>,
    ) -> io::Result<GcStats> {
        // Pass 1: parse every line, remembering each fingerprint's last
        // (surviving) occurrence.
        let mut entries: Vec<(String, String)> = Vec::new();
        let mut survivor: HashMap<String, usize> = HashMap::new();
        let mut corrupt = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let fp = Json::parse(line).ok().and_then(|r| {
                r.get("fingerprint")
                    .and_then(Json::as_str)
                    .map(str::to_owned)
            });
            match fp {
                Some(fp) => {
                    survivor.insert(fp.clone(), entries.len());
                    entries.push((fp, line.to_owned()));
                }
                None => corrupt += 1,
            }
        }
        // Pass 2: emit each fingerprint's surviving line at its first
        // appearance, preserving the file's chronology; a `keep`
        // predicate filters whole fingerprints out.
        let mut out = String::new();
        let mut kept = 0usize;
        let mut superseded = 0usize;
        let mut dropped = 0usize;
        let mut emitted: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for (fp, _) in &entries {
            if !emitted.insert(fp) {
                superseded += 1;
                continue;
            }
            if keep.is_some_and(|keep| !keep(fp)) {
                dropped += 1;
                continue;
            }
            out.push_str(&entries[survivor[fp]].1);
            out.push('\n');
            kept += 1;
        }
        let stats = GcStats {
            kept,
            dropped,
            superseded,
            corrupt,
            reclaimed_bytes: (text.len() as u64).saturating_sub(out.len() as u64),
        };
        // Nothing to drop: leave the file untouched (callers compact
        // after every store-backed run).
        if superseded == 0 && corrupt == 0 && dropped == 0 {
            return Ok(GcStats {
                reclaimed_bytes: 0,
                ..stats
            });
        }
        let tmp = path.with_extension("jsonl.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(out.as_bytes())?;
            f.sync_all()?;
        }
        // The in-process lock cannot see *other* processes appending to
        // the same file; a rename would silently discard their records.
        // Re-check the length just before renaming and abort if the file
        // grew — the duplicates survive until the next quiet compaction,
        // which is the safe direction to lose. (A writer landing inside
        // the remaining check-to-rename window can still lose a record;
        // stores are designed for one process per directory — shard
        // across directories and `gm-run merge` instead.)
        if fs::metadata(path)?.len() != text.len() as u64 {
            let _ = fs::remove_file(&tmp);
            // Report what actually happened: nothing was dropped.
            return Ok(GcStats {
                kept: kept + superseded + dropped,
                dropped: 0,
                superseded: 0,
                corrupt: 0,
                reclaimed_bytes: 0,
            });
        }
        if out.is_empty() {
            // Every record was reclaimed: remove the file instead of
            // leaving an empty shard behind.
            let _ = fs::remove_file(&tmp);
            fs::remove_file(path)?;
        } else {
            fs::rename(&tmp, path)?;
        }
        Ok(stats)
    }

    /// Names of the experiments with a store file, sorted.
    pub fn experiments(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_owned());
                }
            }
        }
        names.sort_unstable();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique scratch directory under the system temp dir, removed on
    /// drop (the offline environment has no `tempfile` crate).
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "gm-results-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            Self(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn rec(fp: &str, cycles: u64) -> Json {
        let mut j = Json::object();
        j.set("fingerprint", fp).set("cycles", cycles);
        j
    }

    #[test]
    fn missing_file_loads_empty() {
        let s = Scratch::new("empty");
        let store = ResultStore::open(&s.0).unwrap();
        let shard = store.load("fig6").unwrap();
        assert!(shard.records.is_empty());
        assert_eq!((shard.lines, shard.corrupt), (0, 0));
        assert!(!shard.needs_compaction());
    }

    #[test]
    fn append_then_load_round_trips() {
        let s = Scratch::new("roundtrip");
        let store = ResultStore::open(&s.0).unwrap();
        store.append("fig6", &rec("aa", 100)).unwrap();
        store.append("fig6", &rec("bb", 200)).unwrap();
        store.append("other", &rec("cc", 300)).unwrap();
        let shard = store.load("fig6").unwrap();
        assert_eq!(shard.records.len(), 2);
        assert_eq!(
            shard.records["aa"].get("cycles").unwrap().as_u64(),
            Some(100)
        );
        assert_eq!(store.experiments().unwrap(), ["fig6", "other"]);
    }

    #[test]
    fn later_appends_supersede_earlier_ones() {
        let s = Scratch::new("supersede");
        let store = ResultStore::open(&s.0).unwrap();
        store.append("fig6", &rec("aa", 1)).unwrap();
        store.append("fig6", &rec("aa", 2)).unwrap();
        let shard = store.load("fig6").unwrap();
        assert_eq!(shard.records.len(), 1);
        assert_eq!(shard.records["aa"].get("cycles").unwrap().as_u64(), Some(2));
        assert_eq!(shard.lines, 2);
        assert!(shard.needs_compaction());
    }

    #[test]
    fn corrupt_and_truncated_lines_are_skipped_not_fatal() {
        let s = Scratch::new("corrupt");
        let store = ResultStore::open(&s.0).unwrap();
        store.append("fig6", &rec("aa", 1)).unwrap();
        // A torn final line, as left by a killed process.
        let path = store.path("fig6");
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"fingerprint\":\"bb\",\"cyc");
        fs::write(&path, text).unwrap();
        let shard = store.load("fig6").unwrap();
        assert_eq!(shard.records.len(), 1);
        assert_eq!(shard.corrupt, 1);
        assert!(shard.needs_compaction());
    }

    #[test]
    fn compact_dedups_heals_and_is_atomic() {
        let s = Scratch::new("compact");
        let store = ResultStore::open(&s.0).unwrap();
        store.append("fig6", &rec("aa", 1)).unwrap();
        store.append("fig6", &rec("bb", 2)).unwrap();
        store.append("fig6", &rec("aa", 3)).unwrap();
        let path = store.path("fig6");
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("not json\n{\"no_fingerprint\":1}\n");
        fs::write(&path, text).unwrap();

        let stats = store.compact("fig6").unwrap();
        assert_eq!(
            stats,
            CompactStats {
                kept: 2,
                superseded: 1,
                corrupt: 2
            }
        );
        // No temporary file left behind.
        assert!(!path.with_extension("jsonl.tmp").exists());
        // First-appearance order, surviving values.
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"aa\"") && lines[0].contains("\"cycles\":3"));
        assert!(lines[1].contains("\"bb\""));
        // Idempotent.
        let again = store.compact("fig6").unwrap();
        assert_eq!(
            again,
            CompactStats {
                kept: 2,
                superseded: 0,
                corrupt: 0
            }
        );
        assert!(!store.load("fig6").unwrap().needs_compaction());
    }

    #[test]
    fn compact_aborts_instead_of_discarding_a_concurrent_append() {
        let s = Scratch::new("compact-race");
        let store = ResultStore::open(&s.0).unwrap();
        store.append("fig6", &rec("aa", 1)).unwrap();
        store.append("fig6", &rec("aa", 2)).unwrap();
        // Snapshot the dirty file, then let "another process" append.
        let path = store.path("fig6");
        let stale = fs::read_to_string(&path).unwrap();
        store.append("fig6", &rec("bb", 3)).unwrap();
        // Compacting from the stale snapshot must notice the growth,
        // drop nothing, and leave no temporary file behind.
        let stats = store.compact_snapshot(&path, &stale).unwrap();
        assert_eq!(
            stats,
            CompactStats {
                kept: 2,
                superseded: 0,
                corrupt: 0
            }
        );
        assert!(!path.with_extension("jsonl.tmp").exists());
        let shard = store.load("fig6").unwrap();
        assert_eq!(shard.records.len(), 2, "bb must survive");
        assert_eq!(shard.records["bb"].get("cycles").unwrap().as_u64(), Some(3));
        // The next (current-snapshot) compaction dedups as usual.
        assert_eq!(store.compact("fig6").unwrap().superseded, 1);
    }

    #[test]
    fn gc_drops_stale_fingerprints_and_reports_bytes() {
        let s = Scratch::new("gc");
        let store = ResultStore::open(&s.0).unwrap();
        store.append("fig6", &rec("live", 1)).unwrap();
        store.append("fig6", &rec("stale", 2)).unwrap();
        store.append("fig6", &rec("stale", 3)).unwrap(); // superseded too
        let before = fs::metadata(store.path("fig6")).unwrap().len();

        let stats = store.gc("fig6", &|fp| fp == "live").unwrap();
        assert_eq!(
            (stats.kept, stats.dropped, stats.superseded, stats.corrupt),
            (1, 1, 1, 0)
        );
        let after = fs::metadata(store.path("fig6")).unwrap().len();
        assert_eq!(stats.reclaimed_bytes, before - after);
        assert!(stats.reclaimed_bytes > 0);
        let shard = store.load("fig6").unwrap();
        assert_eq!(shard.records.len(), 1);
        assert!(shard.records.contains_key("live"));

        // Idempotent: a second pass reclaims nothing.
        let again = store.gc("fig6", &|fp| fp == "live").unwrap();
        assert_eq!(
            (again.kept, again.dropped, again.reclaimed_bytes),
            (1, 0, 0)
        );
    }

    #[test]
    fn gc_removes_a_fully_reclaimed_file() {
        let s = Scratch::new("gc-empty");
        let store = ResultStore::open(&s.0).unwrap();
        store.append("old_experiment", &rec("a", 1)).unwrap();
        store.append("old_experiment", &rec("b", 2)).unwrap();
        let stats = store.gc("old_experiment", &|_| false).unwrap();
        assert_eq!((stats.kept, stats.dropped), (0, 2));
        assert!(!store.path("old_experiment").exists(), "empty file removed");
        assert!(store.experiments().unwrap().is_empty());
        // And gc of the now-missing file is a no-op.
        assert_eq!(
            store.gc("old_experiment", &|_| false).unwrap(),
            GcStats::default()
        );
    }

    #[test]
    fn compact_of_missing_file_is_a_noop() {
        let s = Scratch::new("compact-missing");
        let store = ResultStore::open(&s.0).unwrap();
        assert_eq!(
            store.compact("nope").unwrap(),
            CompactStats {
                kept: 0,
                superseded: 0,
                corrupt: 0
            }
        );
    }

    #[test]
    fn concurrent_appends_keep_every_line_well_formed() {
        let s = Scratch::new("threads");
        let store = ResultStore::open(&s.0).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..25 {
                        store.append("fig6", &rec(&format!("{t}-{i}"), i)).unwrap();
                    }
                });
            }
        });
        let shard = store.load("fig6").unwrap();
        assert_eq!(shard.records.len(), 100);
        assert_eq!(shard.corrupt, 0);
    }
}
