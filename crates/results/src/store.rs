//! The on-disk result store: one append-only JSON-lines file per
//! experiment, keyed by job fingerprint.
//!
//! Layout: `<dir>/<experiment>.jsonl`, one [`crate::record`] object per
//! line, extended with a trailing `"sha"` field holding the SHA-256 of
//! the line's record body (the rendered object *without* the `"sha"`
//! field). The runner appends a line the moment a job finishes, so an
//! interrupted run keeps everything it already simulated; a re-run
//! resumes from the survivors. Appends are serialized through an
//! in-process lock; cross-machine writes go to *separate* stores whose
//! outputs meet in `gm-run merge`, not to a shared file.
//!
//! Reads tolerate damage: a truncated final line (killed process), a
//! corrupt line (bit rot), or a line whose checksum does not match is
//! skipped, counted, quarantined to a `<experiment>.quarantine` sidecar
//! (with a stderr warning), and the affected job simply re-simulates.
//! Lines without a `"sha"` field — written by pre-checksum binaries —
//! still load, just without integrity verification.
//! [`ResultStore::compact`] rewrites a file without the damage and
//! without superseded duplicates — atomically, by renaming a complete
//! temporary file over the original, so a reader never observes a
//! half-written store.
//!
//! All file I/O goes through the [`StoreIo`] trait ([`RealIo`] in
//! production), so crash tests can inject torn appends, failed renames,
//! and read errors deterministically (see [`crate::faults`]).

use crate::hash::sha256_hex;
use gm_stats::Json;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// The minimal filesystem surface the store reads and writes through.
/// Production uses [`RealIo`]; crash tests substitute
/// [`crate::faults::FaultyIo`] via [`ResultStore::open_with_io`] to
/// place deterministic faults at arbitrary byte offsets.
pub trait StoreIo: Send + Sync {
    /// Reads the whole file at `path`.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;
    /// Appends `bytes` to `path` (creating it if needed), fsyncing
    /// before returning when `sync` is set.
    fn append(&self, path: &Path, bytes: &[u8], sync: bool) -> io::Result<()>;
    /// Creates (truncating) `path` with `bytes` and fsyncs it.
    fn write_synced(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Current length of the file at `path`, in bytes.
    fn len(&self, path: &Path) -> io::Result<u64>;
}

/// The production [`StoreIo`]: plain `std::fs`, no faults.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        fs::read_to_string(path)
    }

    fn append(&self, path: &Path, bytes: &[u8], sync: bool) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(bytes)?;
        if sync {
            f.sync_all()?;
        }
        Ok(())
    }

    fn write_synced(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }
}

/// One classified line of a store file (see [`parse_store_line`]).
#[derive(Clone, Debug)]
pub enum StoreLine {
    /// A well-formed record; `record` has its `"sha"` field stripped, so
    /// it renders byte-identically to what [`crate::job_record`] built.
    Record {
        /// The record body, checksum field removed.
        record: Json,
        /// The fingerprint the record is keyed under.
        fingerprint: String,
        /// Whether the line carried a (verified) checksum. Lines written
        /// by pre-checksum binaries load as `false`.
        checksummed: bool,
    },
    /// A damaged line: unparseable, checksum mismatch, or no
    /// fingerprint. Loaders skip, count, and quarantine it.
    Corrupt {
        /// What was wrong with the line.
        reason: String,
    },
    /// Whitespace only.
    Blank,
}

/// Parses and integrity-checks one line of a store file: strict JSON,
/// then — if a `"sha"` field is present — the SHA-256 of the remaining
/// record body must match it, then a `"fingerprint"` must be present.
pub fn parse_store_line(line: &str) -> StoreLine {
    if line.trim().is_empty() {
        return StoreLine::Blank;
    }
    let mut record = match Json::parse(line) {
        Ok(r) => r,
        Err(e) => {
            return StoreLine::Corrupt {
                reason: format!("unparseable JSON ({e})"),
            }
        }
    };
    let checksummed = match record.remove("sha") {
        None => false,
        Some(sha) => {
            let Some(sha) = sha.as_str() else {
                return StoreLine::Corrupt {
                    reason: "checksum field is not a string".into(),
                };
            };
            let expect = sha256_hex(record.render().as_bytes());
            if sha != expect {
                return StoreLine::Corrupt {
                    reason: format!("checksum mismatch (stored {sha:?})"),
                };
            }
            true
        }
    };
    match record.get("fingerprint").and_then(Json::as_str) {
        Some(fp) => {
            let fingerprint = fp.to_owned();
            StoreLine::Record {
                record,
                fingerprint,
                checksummed,
            }
        }
        None => StoreLine::Corrupt {
            reason: "record has no fingerprint".into(),
        },
    }
}

/// What a load found in one experiment's store file.
#[derive(Debug, Default)]
pub struct LoadedShard {
    /// Records by fingerprint; a later line supersedes an earlier one
    /// with the same fingerprint (append-wins). Checksum fields are
    /// stripped: these are plain [`crate::record`] objects.
    pub records: HashMap<String, Json>,
    /// Total well-formed lines read (including superseded duplicates).
    pub lines: usize,
    /// Well-formed lines whose checksum was present and verified.
    pub checksummed: usize,
    /// Lines that failed to parse, failed their checksum, or carried no
    /// fingerprint. Quarantined, not loaded.
    pub corrupt: usize,
}

impl LoadedShard {
    /// Whether a compaction would change the file on disk.
    pub fn needs_compaction(&self) -> bool {
        self.corrupt > 0 || self.lines > self.records.len()
    }
}

/// Result of a [`ResultStore::compact`] pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactStats {
    /// Records surviving in the rewritten file.
    pub kept: usize,
    /// Superseded duplicate lines dropped.
    pub superseded: usize,
    /// Corrupt lines dropped (and quarantined).
    pub corrupt: usize,
}

/// Result of a [`ResultStore::gc`] pass over one experiment file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Records surviving in the rewritten file.
    pub kept: usize,
    /// Records dropped because no current experiment produces their
    /// fingerprint.
    pub dropped: usize,
    /// Superseded duplicate lines dropped along the way.
    pub superseded: usize,
    /// Corrupt lines dropped (and quarantined) along the way.
    pub corrupt: usize,
    /// Bytes the rewrite reclaimed on disk.
    pub reclaimed_bytes: u64,
}

/// What a quarantine sidecar currently holds (see
/// [`ResultStore::quarantine_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QuarantineStats {
    /// Quarantined lines in the sidecar.
    pub lines: usize,
    /// Bytes the sidecar occupies on disk.
    pub bytes: u64,
}

/// A directory of per-experiment JSON-lines result files.
///
/// ```
/// use gm_results::ResultStore;
/// use gm_stats::Json;
///
/// let dir = std::env::temp_dir().join(format!("gm-store-doc-{}", std::process::id()));
/// let store = ResultStore::open(&dir)?;
///
/// let mut record = Json::object();
/// record.set("fingerprint", "a".repeat(64)).set("cycles", 42u64);
/// store.append("fig6", &record)?;
///
/// // Later (or concurrently-crashed) runs resume from what survived.
/// let shard = store.load("fig6")?;
/// assert_eq!(shard.records.len(), 1);
/// assert!(!shard.needs_compaction());
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct ResultStore {
    dir: PathBuf,
    /// Serializes appends and rewrites from the runner's worker threads.
    /// Poison is recovered, not propagated: the guarded sections leave
    /// no in-memory state behind, so a panicked writer must not wedge
    /// every later store operation in-process.
    append_lock: Mutex<()>,
    /// Experiments whose file tail this process has verified ends at a
    /// line boundary. A crashed writer can leave a torn final line with
    /// no newline; the first append per experiment checks for that and
    /// isolates the damage with a leading newline, so the new record
    /// never merges into the garbage. A failed append un-verifies its
    /// experiment (the fault may itself have torn the tail).
    checked_tails: Mutex<HashSet<String>>,
    io: Box<dyn StoreIo>,
    sync: bool,
}

impl fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResultStore")
            .field("dir", &self.dir)
            .field("sync", &self.sync)
            .finish_non_exhaustive()
    }
}

impl ResultStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with_io(dir, Box::new(RealIo))
    }

    /// Opens the store with a caller-supplied [`StoreIo`] — the fault
    /// injection seam used by crash tests.
    pub fn open_with_io(dir: impl Into<PathBuf>, io: Box<dyn StoreIo>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            append_lock: Mutex::new(()),
            checked_tails: Mutex::new(HashSet::new()),
            io,
            sync: false,
        })
    }

    /// With `sync` set, every append is fsync'd before it reports
    /// success: a crash cannot lose an acknowledged record at the cost
    /// of one fsync per job. Off by default (the page cache is plenty
    /// for a cache whose worst loss is a re-simulation).
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file holding `experiment`'s results.
    pub fn path(&self, experiment: &str) -> PathBuf {
        self.dir.join(format!("{experiment}.jsonl"))
    }

    /// The sidecar file corrupt lines of `experiment` are quarantined
    /// to. Not a `.jsonl` file, so [`ResultStore::experiments`] never
    /// lists it.
    pub fn quarantine_path(&self, experiment: &str) -> PathBuf {
        self.dir.join(format!("{experiment}.quarantine"))
    }

    /// Size of `experiment`'s quarantine sidecar — the evidence
    /// `compact`/`gc` deliberately leave behind. A missing sidecar is
    /// zero, not an error.
    pub fn quarantine_stats(&self, experiment: &str) -> io::Result<QuarantineStats> {
        let qpath = self.quarantine_path(experiment);
        let text = match self.io.read_to_string(&qpath) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(QuarantineStats::default()),
            Err(e) => return Err(e),
        };
        Ok(QuarantineStats {
            lines: text.lines().filter(|l| !l.trim().is_empty()).count(),
            bytes: text.len() as u64,
        })
    }

    /// Removes `experiment`'s quarantine sidecar, reporting what was
    /// reclaimed. The explicit counterpart to the automatic
    /// quarantining: damage is never deleted implicitly.
    pub fn purge_quarantine(&self, experiment: &str) -> io::Result<QuarantineStats> {
        let stats = self.quarantine_stats(experiment)?;
        if stats.bytes > 0 || self.quarantine_path(experiment).exists() {
            self.io.remove_file(&self.quarantine_path(experiment))?;
        }
        Ok(stats)
    }

    /// Loads every record of `experiment`. A missing file is an empty
    /// shard, not an error. Corrupt lines (unparseable, checksum
    /// mismatch, no fingerprint) are counted, quarantined to
    /// [`ResultStore::quarantine_path`], and warned about on stderr —
    /// never silently dropped, and never fatal.
    pub fn load(&self, experiment: &str) -> io::Result<LoadedShard> {
        let path = self.path(experiment);
        let text = match self.io.read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LoadedShard::default()),
            Err(e) => return Err(e),
        };
        let mut shard = LoadedShard::default();
        let mut bad: Vec<&str> = Vec::new();
        for line in text.lines() {
            match parse_store_line(line) {
                StoreLine::Blank => {}
                StoreLine::Corrupt { .. } => {
                    shard.corrupt += 1;
                    bad.push(line);
                }
                StoreLine::Record {
                    record,
                    fingerprint,
                    checksummed,
                } => {
                    shard.lines += 1;
                    if checksummed {
                        shard.checksummed += 1;
                    }
                    shard.records.insert(fingerprint, record);
                }
            }
        }
        if !bad.is_empty() {
            self.quarantine(experiment, &bad);
        }
        Ok(shard)
    }

    /// Appends the corrupt `lines` to the experiment's quarantine
    /// sidecar (deduplicated against its current content) and warns on
    /// stderr. Quarantine failures are warned about, never propagated:
    /// the sidecar is evidence, not data the run depends on.
    fn quarantine(&self, experiment: &str, lines: &[&str]) {
        let qpath = self.quarantine_path(experiment);
        let fresh = (|| -> io::Result<usize> {
            let existing = match self.io.read_to_string(&qpath) {
                Ok(t) => t,
                Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
                Err(e) => return Err(e),
            };
            let mut seen: HashSet<&str> = existing.lines().collect();
            let mut out = String::new();
            let mut fresh = 0usize;
            for line in lines {
                if seen.insert(line) {
                    out.push_str(line);
                    out.push('\n');
                    fresh += 1;
                }
            }
            if !out.is_empty() {
                self.io.append(&qpath, out.as_bytes(), self.sync)?;
            }
            Ok(fresh)
        })();
        match fresh {
            Ok(fresh) => eprintln!(
                "warning: store {experiment}: {} corrupt line(s) skipped \
                 ({fresh} new, quarantined to {qpath:?}); affected jobs re-simulate",
                lines.len()
            ),
            Err(e) => eprintln!(
                "warning: store {experiment}: {} corrupt line(s) skipped \
                 (quarantine to {qpath:?} failed: {e}); affected jobs re-simulate",
                lines.len()
            ),
        }
    }

    /// Appends one record to `experiment`'s file, extended with a
    /// `"sha"` checksum of the record body. The record must carry a
    /// `"fingerprint"` field (it is the lookup key on the next load) and
    /// no `"sha"` field of its own.
    pub fn append(&self, experiment: &str, record: &Json) -> io::Result<()> {
        debug_assert!(
            record.get("fingerprint").and_then(Json::as_str).is_some(),
            "store records must carry a fingerprint"
        );
        debug_assert!(
            record.get("sha").is_none(),
            "store records must not pre-carry a checksum"
        );
        let body = record.render();
        let sha = sha256_hex(body.as_bytes());
        // Splice the checksum in as the final field without re-rendering
        // the whole record: `body` is a non-empty object (it has a
        // fingerprint), so it ends in `}`.
        let mut line = body;
        line.truncate(line.len() - 1);
        line.push_str(",\"sha\":\"");
        line.push_str(&sha);
        line.push_str("\"}\n");
        let _guard = self
            .append_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // First append per experiment (or first after a failed one):
        // if a crashed writer left a torn final line, isolate it on its
        // own (quarantinable) line so this record lands intact.
        let first_append = self
            .checked_tails
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(experiment.to_owned());
        if first_append {
            let torn_tail = match self.io.read_to_string(&self.path(experiment)) {
                Ok(text) => !text.is_empty() && !text.ends_with('\n'),
                // Missing file: clean. Unreadable file: appending is
                // still the right move — a merged line quarantines and
                // re-simulates, it never corrupts other records.
                Err(_) => false,
            };
            if torn_tail {
                line.insert(0, '\n');
            }
        }
        let result = self
            .io
            .append(&self.path(experiment), line.as_bytes(), self.sync);
        if result.is_err() {
            // The fault may have torn the tail: re-verify next time.
            self.checked_tails
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(experiment);
        }
        result
    }

    /// Rewrites `experiment`'s file keeping only the surviving record
    /// per fingerprint (in first-appearance order) and dropping corrupt
    /// lines. Atomic: the new content is written to a sibling temporary
    /// file, flushed, and renamed over the original, so a crash mid-way
    /// leaves either the old or the new file — never a truncated one.
    pub fn compact(&self, experiment: &str) -> io::Result<CompactStats> {
        let _guard = self
            .append_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let path = self.path(experiment);
        let text = match self.io.read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(CompactStats {
                    kept: 0,
                    superseded: 0,
                    corrupt: 0,
                })
            }
            Err(e) => return Err(e),
        };
        self.compact_snapshot(experiment, &path, &text)
    }

    /// The write phase of [`ResultStore::compact`], operating on a text
    /// snapshot already read from `path`. Separated so the
    /// grown-under-us abort path is deterministically testable.
    fn compact_snapshot(
        &self,
        experiment: &str,
        path: &Path,
        text: &str,
    ) -> io::Result<CompactStats> {
        let g = self.rewrite_snapshot(experiment, path, text, None)?;
        Ok(CompactStats {
            kept: g.kept,
            superseded: g.superseded,
            corrupt: g.corrupt,
        })
    }

    /// Garbage-collects `experiment`'s file: keeps only records whose
    /// fingerprint satisfies `keep` (plus the usual compaction of
    /// superseded and corrupt lines), reporting how many records and
    /// bytes were reclaimed. A file left with no records is removed.
    pub fn gc(&self, experiment: &str, keep: &dyn Fn(&str) -> bool) -> io::Result<GcStats> {
        let _guard = self
            .append_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let path = self.path(experiment);
        let text = match self.io.read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(GcStats::default()),
            Err(e) => return Err(e),
        };
        self.rewrite_snapshot(experiment, &path, &text, Some(keep))
    }

    /// Shared rewrite pass behind [`ResultStore::compact`] and
    /// [`ResultStore::gc`]: dedups superseded lines, drops (and
    /// quarantines) corrupt ones, and — when a `keep` predicate is given
    /// — drops records whose fingerprint it rejects. Surviving lines are
    /// kept verbatim, so their checksums carry over. Atomic: the new
    /// content is written to a sibling temporary file, flushed, and
    /// renamed over the original, so a crash mid-way leaves either the
    /// old or the new file — never a truncated one.
    fn rewrite_snapshot(
        &self,
        experiment: &str,
        path: &Path,
        text: &str,
        keep: Option<&dyn Fn(&str) -> bool>,
    ) -> io::Result<GcStats> {
        // Pass 1: parse every line, remembering each fingerprint's last
        // (surviving) occurrence.
        let mut entries: Vec<(String, String)> = Vec::new();
        let mut survivor: HashMap<String, usize> = HashMap::new();
        let mut corrupt = 0usize;
        let mut bad: Vec<&str> = Vec::new();
        for line in text.lines() {
            match parse_store_line(line) {
                StoreLine::Blank => {}
                StoreLine::Corrupt { .. } => {
                    corrupt += 1;
                    bad.push(line);
                }
                StoreLine::Record { fingerprint, .. } => {
                    survivor.insert(fingerprint.clone(), entries.len());
                    entries.push((fingerprint, line.to_owned()));
                }
            }
        }
        if !bad.is_empty() {
            self.quarantine(experiment, &bad);
        }
        // Pass 2: emit each fingerprint's surviving line at its first
        // appearance, preserving the file's chronology; a `keep`
        // predicate filters whole fingerprints out.
        let mut out = String::new();
        let mut kept = 0usize;
        let mut superseded = 0usize;
        let mut dropped = 0usize;
        let mut emitted: HashSet<&str> = HashSet::new();
        for (fp, _) in &entries {
            if !emitted.insert(fp) {
                superseded += 1;
                continue;
            }
            if keep.is_some_and(|keep| !keep(fp)) {
                dropped += 1;
                continue;
            }
            out.push_str(&entries[survivor[fp]].1);
            out.push('\n');
            kept += 1;
        }
        let stats = GcStats {
            kept,
            dropped,
            superseded,
            corrupt,
            reclaimed_bytes: (text.len() as u64).saturating_sub(out.len() as u64),
        };
        // Nothing to drop: leave the file untouched (callers compact
        // after every store-backed run).
        if superseded == 0 && corrupt == 0 && dropped == 0 {
            return Ok(GcStats {
                reclaimed_bytes: 0,
                ..stats
            });
        }
        let tmp = path.with_extension("jsonl.tmp");
        if let Err(e) = self.io.write_synced(&tmp, out.as_bytes()) {
            // A half-written temporary must not linger: the next rewrite
            // recreates it from scratch anyway.
            let _ = self.io.remove_file(&tmp);
            return Err(e);
        }
        // The in-process lock cannot see *other* processes appending to
        // the same file; a rename would silently discard their records.
        // Re-check the length just before renaming and abort if the file
        // grew — the duplicates survive until the next quiet compaction,
        // which is the safe direction to lose. (A writer landing inside
        // the remaining check-to-rename window can still lose a record;
        // stores are designed for one process per directory — shard
        // across directories and `gm-run merge` instead.)
        if self.io.len(path)? != text.len() as u64 {
            let _ = self.io.remove_file(&tmp);
            // Report what actually happened: nothing was dropped.
            return Ok(GcStats {
                kept: kept + superseded + dropped,
                dropped: 0,
                superseded: 0,
                corrupt: 0,
                reclaimed_bytes: 0,
            });
        }
        if out.is_empty() {
            // Every record was reclaimed: remove the file instead of
            // leaving an empty shard behind.
            let _ = self.io.remove_file(&tmp);
            self.io.remove_file(path)?;
        } else if let Err(e) = self.io.rename(&tmp, path) {
            // Failed rename leaves the original untouched; clean up the
            // temporary instead of leaking it.
            let _ = self.io.remove_file(&tmp);
            return Err(e);
        }
        Ok(stats)
    }

    /// Names of the experiments with a store file, sorted.
    pub fn experiments(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_owned());
                }
            }
        }
        names.sort_unstable();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique scratch directory under the system temp dir, removed on
    /// drop (the offline environment has no `tempfile` crate).
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "gm-results-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            Self(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn rec(fp: &str, cycles: u64) -> Json {
        let mut j = Json::object();
        j.set("fingerprint", fp).set("cycles", cycles);
        j
    }

    #[test]
    fn missing_file_loads_empty() {
        let s = Scratch::new("empty");
        let store = ResultStore::open(&s.0).unwrap();
        let shard = store.load("fig6").unwrap();
        assert!(shard.records.is_empty());
        assert_eq!((shard.lines, shard.corrupt), (0, 0));
        assert!(!shard.needs_compaction());
    }

    #[test]
    fn append_then_load_round_trips() {
        let s = Scratch::new("roundtrip");
        let store = ResultStore::open(&s.0).unwrap();
        store.append("fig6", &rec("aa", 100)).unwrap();
        store.append("fig6", &rec("bb", 200)).unwrap();
        store.append("other", &rec("cc", 300)).unwrap();
        let shard = store.load("fig6").unwrap();
        assert_eq!(shard.records.len(), 2);
        assert_eq!(
            shard.records["aa"].get("cycles").unwrap().as_u64(),
            Some(100)
        );
        // Loaded records are sha-stripped: byte-identical to the input.
        assert_eq!(shard.records["aa"].render(), rec("aa", 100).render());
        assert_eq!(shard.checksummed, 2);
        assert_eq!(store.experiments().unwrap(), ["fig6", "other"]);
    }

    #[test]
    fn appended_lines_carry_a_verifiable_checksum() {
        let s = Scratch::new("checksum");
        let store = ResultStore::open(&s.0).unwrap();
        let r = rec("aa", 100);
        store.append("fig6", &r).unwrap();
        let text = fs::read_to_string(store.path("fig6")).unwrap();
        let expect = sha256_hex(r.render().as_bytes());
        assert_eq!(
            text.trim_end(),
            format!("{{\"fingerprint\":\"aa\",\"cycles\":100,\"sha\":\"{expect}\"}}")
        );
        match parse_store_line(text.trim_end()) {
            StoreLine::Record {
                record,
                fingerprint,
                checksummed,
            } => {
                assert_eq!(record.render(), r.render());
                assert_eq!(fingerprint, "aa");
                assert!(checksummed);
            }
            other => panic!("expected a record, got {other:?}"),
        }
    }

    #[test]
    fn unchecksummed_legacy_lines_still_load() {
        let s = Scratch::new("legacy");
        let store = ResultStore::open(&s.0).unwrap();
        // A line written by a pre-checksum binary.
        fs::write(
            store.path("fig6"),
            "{\"fingerprint\":\"aa\",\"cycles\":7}\n",
        )
        .unwrap();
        let shard = store.load("fig6").unwrap();
        assert_eq!(shard.records.len(), 1);
        assert_eq!((shard.lines, shard.checksummed, shard.corrupt), (1, 0, 0));
        assert!(!shard.needs_compaction());
    }

    #[test]
    fn bit_rot_fails_the_checksum_and_quarantines() {
        let s = Scratch::new("bitrot");
        let store = ResultStore::open(&s.0).unwrap();
        store.append("fig6", &rec("aa", 100)).unwrap();
        store.append("fig6", &rec("bb", 200)).unwrap();
        // Flip one digit inside the first record's body: still valid
        // JSON, but the checksum no longer matches.
        let path = store.path("fig6");
        let text = fs::read_to_string(&path).unwrap();
        let rotted = text.replacen("\"cycles\":100", "\"cycles\":101", 1);
        assert_ne!(rotted, text);
        fs::write(&path, &rotted).unwrap();
        let shard = store.load("fig6").unwrap();
        assert_eq!(shard.records.len(), 1, "rotted record must not load");
        assert!(shard.records.contains_key("bb"));
        assert_eq!(shard.corrupt, 1);
        assert!(shard.needs_compaction());
        // The damaged line is preserved as evidence, not silently lost.
        let q = fs::read_to_string(store.quarantine_path("fig6")).unwrap();
        assert_eq!(q.lines().count(), 1);
        assert!(q.contains("\"cycles\":101"));
        // Re-loading does not duplicate the quarantined line.
        store.load("fig6").unwrap();
        let q2 = fs::read_to_string(store.quarantine_path("fig6")).unwrap();
        assert_eq!(q2, q);
        // Compaction heals the main file; the quarantine file stays.
        let stats = store.compact("fig6").unwrap();
        assert_eq!((stats.kept, stats.corrupt), (1, 1));
        let healed = store.load("fig6").unwrap();
        assert_eq!((healed.records.len(), healed.corrupt), (1, 0));
        assert!(store.quarantine_path("fig6").exists());
        // Quarantine sidecars are not experiments.
        assert_eq!(store.experiments().unwrap(), ["fig6"]);
    }

    #[test]
    fn later_appends_supersede_earlier_ones() {
        let s = Scratch::new("supersede");
        let store = ResultStore::open(&s.0).unwrap();
        store.append("fig6", &rec("aa", 1)).unwrap();
        store.append("fig6", &rec("aa", 2)).unwrap();
        let shard = store.load("fig6").unwrap();
        assert_eq!(shard.records.len(), 1);
        assert_eq!(shard.records["aa"].get("cycles").unwrap().as_u64(), Some(2));
        assert_eq!(shard.lines, 2);
        assert!(shard.needs_compaction());
    }

    #[test]
    fn corrupt_and_truncated_lines_are_skipped_not_fatal() {
        let s = Scratch::new("corrupt");
        let store = ResultStore::open(&s.0).unwrap();
        store.append("fig6", &rec("aa", 1)).unwrap();
        // A torn final line, as left by a killed process.
        let path = store.path("fig6");
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"fingerprint\":\"bb\",\"cyc");
        fs::write(&path, text).unwrap();
        let shard = store.load("fig6").unwrap();
        assert_eq!(shard.records.len(), 1);
        assert_eq!(shard.corrupt, 1);
        assert!(shard.needs_compaction());
    }

    #[test]
    fn an_append_after_a_torn_tail_isolates_the_damage() {
        let s = Scratch::new("torn-tail");
        let store = ResultStore::open(&s.0).unwrap();
        store.append("fig6", &rec("aa", 1)).unwrap();
        // A killed writer left a torn final line with no newline.
        let path = store.path("fig6");
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"fingerprint\":\"bb\",\"cyc");
        fs::write(&path, text).unwrap();
        // A fresh process (fresh store handle) appends: the new record
        // must not merge into the garbage.
        let store = ResultStore::open(&s.0).unwrap();
        store.append("fig6", &rec("cc", 3)).unwrap();
        let shard = store.load("fig6").unwrap();
        assert_eq!(shard.records.len(), 2);
        assert_eq!(shard.records["cc"].get("cycles").unwrap().as_u64(), Some(3));
        assert_eq!(shard.corrupt, 1, "the torn line quarantines alone");
        // Subsequent appends skip the tail check and land normally.
        store.append("fig6", &rec("dd", 4)).unwrap();
        assert_eq!(store.load("fig6").unwrap().records.len(), 3);
    }

    #[test]
    fn compact_dedups_heals_and_is_atomic() {
        let s = Scratch::new("compact");
        let store = ResultStore::open(&s.0).unwrap();
        store.append("fig6", &rec("aa", 1)).unwrap();
        store.append("fig6", &rec("bb", 2)).unwrap();
        store.append("fig6", &rec("aa", 3)).unwrap();
        let path = store.path("fig6");
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("not json\n{\"no_fingerprint\":1}\n");
        fs::write(&path, text).unwrap();

        let stats = store.compact("fig6").unwrap();
        assert_eq!(
            stats,
            CompactStats {
                kept: 2,
                superseded: 1,
                corrupt: 2
            }
        );
        // No temporary file left behind.
        assert!(!path.with_extension("jsonl.tmp").exists());
        // First-appearance order, surviving values, checksums intact.
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"aa\"") && lines[0].contains("\"cycles\":3"));
        assert!(lines[1].contains("\"bb\""));
        for line in &lines {
            assert!(
                matches!(parse_store_line(line), StoreLine::Record { checksummed, .. } if checksummed),
                "compacted lines keep their checksums: {line}"
            );
        }
        // Idempotent.
        let again = store.compact("fig6").unwrap();
        assert_eq!(
            again,
            CompactStats {
                kept: 2,
                superseded: 0,
                corrupt: 0
            }
        );
        assert!(!store.load("fig6").unwrap().needs_compaction());
    }

    #[test]
    fn compact_aborts_instead_of_discarding_a_concurrent_append() {
        let s = Scratch::new("compact-race");
        let store = ResultStore::open(&s.0).unwrap();
        store.append("fig6", &rec("aa", 1)).unwrap();
        store.append("fig6", &rec("aa", 2)).unwrap();
        // Snapshot the dirty file, then let "another process" append.
        let path = store.path("fig6");
        let stale = fs::read_to_string(&path).unwrap();
        store.append("fig6", &rec("bb", 3)).unwrap();
        // Compacting from the stale snapshot must notice the growth,
        // drop nothing, and leave no temporary file behind.
        let stats = store.compact_snapshot("fig6", &path, &stale).unwrap();
        assert_eq!(
            stats,
            CompactStats {
                kept: 2,
                superseded: 0,
                corrupt: 0
            }
        );
        assert!(!path.with_extension("jsonl.tmp").exists());
        let shard = store.load("fig6").unwrap();
        assert_eq!(shard.records.len(), 2, "bb must survive");
        assert_eq!(shard.records["bb"].get("cycles").unwrap().as_u64(), Some(3));
        // The next (current-snapshot) compaction dedups as usual.
        assert_eq!(store.compact("fig6").unwrap().superseded, 1);
    }

    #[test]
    fn gc_drops_stale_fingerprints_and_reports_bytes() {
        let s = Scratch::new("gc");
        let store = ResultStore::open(&s.0).unwrap();
        store.append("fig6", &rec("live", 1)).unwrap();
        store.append("fig6", &rec("stale", 2)).unwrap();
        store.append("fig6", &rec("stale", 3)).unwrap(); // superseded too
        let before = fs::metadata(store.path("fig6")).unwrap().len();

        let stats = store.gc("fig6", &|fp| fp == "live").unwrap();
        assert_eq!(
            (stats.kept, stats.dropped, stats.superseded, stats.corrupt),
            (1, 1, 1, 0)
        );
        let after = fs::metadata(store.path("fig6")).unwrap().len();
        assert_eq!(stats.reclaimed_bytes, before - after);
        assert!(stats.reclaimed_bytes > 0);
        let shard = store.load("fig6").unwrap();
        assert_eq!(shard.records.len(), 1);
        assert!(shard.records.contains_key("live"));

        // Idempotent: a second pass reclaims nothing.
        let again = store.gc("fig6", &|fp| fp == "live").unwrap();
        assert_eq!(
            (again.kept, again.dropped, again.reclaimed_bytes),
            (1, 0, 0)
        );
    }

    #[test]
    fn gc_removes_a_fully_reclaimed_file() {
        let s = Scratch::new("gc-empty");
        let store = ResultStore::open(&s.0).unwrap();
        store.append("old_experiment", &rec("a", 1)).unwrap();
        store.append("old_experiment", &rec("b", 2)).unwrap();
        let stats = store.gc("old_experiment", &|_| false).unwrap();
        assert_eq!((stats.kept, stats.dropped), (0, 2));
        assert!(!store.path("old_experiment").exists(), "empty file removed");
        assert!(store.experiments().unwrap().is_empty());
        // And gc of the now-missing file is a no-op.
        assert_eq!(
            store.gc("old_experiment", &|_| false).unwrap(),
            GcStats::default()
        );
    }

    #[test]
    fn compact_of_missing_file_is_a_noop() {
        let s = Scratch::new("compact-missing");
        let store = ResultStore::open(&s.0).unwrap();
        assert_eq!(
            store.compact("nope").unwrap(),
            CompactStats {
                kept: 0,
                superseded: 0,
                corrupt: 0
            }
        );
    }

    #[test]
    fn synced_appends_round_trip_too() {
        let s = Scratch::new("sync");
        let mut store = ResultStore::open(&s.0).unwrap();
        store.set_sync(true);
        store.append("fig6", &rec("aa", 1)).unwrap();
        store.append("fig6", &rec("bb", 2)).unwrap();
        let shard = store.load("fig6").unwrap();
        assert_eq!(shard.records.len(), 2);
        assert_eq!(shard.checksummed, 2);
    }

    #[test]
    fn quarantine_stats_and_purge_report_and_reclaim_sidecars() {
        let s = Scratch::new("quarantine-stats");
        let store = ResultStore::open(&s.0).unwrap();
        assert_eq!(
            store.quarantine_stats("fig6").unwrap(),
            QuarantineStats::default(),
            "no sidecar, zero stats"
        );
        store.append("fig6", &rec("aa", 1)).unwrap();
        let path = store.path("fig6");
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("not json\n{\"no_fingerprint\":1}\n");
        fs::write(&path, text).unwrap();
        store.load("fig6").unwrap();
        let q = store.quarantine_stats("fig6").unwrap();
        assert_eq!(q.lines, 2);
        assert_eq!(
            q.bytes,
            fs::metadata(store.quarantine_path("fig6")).unwrap().len()
        );
        // compact heals the main file but leaves the evidence...
        store.compact("fig6").unwrap();
        assert_eq!(store.quarantine_stats("fig6").unwrap(), q);
        // ...until it is purged explicitly.
        let purged = store.purge_quarantine("fig6").unwrap();
        assert_eq!(purged, q);
        assert!(!store.quarantine_path("fig6").exists());
        assert_eq!(
            store.quarantine_stats("fig6").unwrap(),
            QuarantineStats::default()
        );
        // Purging an absent sidecar is a clean no-op.
        assert_eq!(
            store.purge_quarantine("fig6").unwrap(),
            QuarantineStats::default()
        );
        // The store file itself was never touched.
        assert_eq!(store.load("fig6").unwrap().records.len(), 1);
    }

    #[test]
    fn mixed_legacy_and_checksummed_lines_survive_compact_verify_reload() {
        let s = Scratch::new("mixed-legacy");
        let store = ResultStore::open(&s.0).unwrap();
        // Interleave: legacy (sha-less) lines from a pre-checksum
        // binary among modern checksummed appends, plus one superseded
        // duplicate and one corrupt line.
        store.append("fig6", &rec("aa", 1)).unwrap();
        let legacy_b = "{\"fingerprint\":\"bb\",\"cycles\":2}";
        let legacy_c = "{\"fingerprint\":\"cc\",\"cycles\":3}";
        let path = store.path("fig6");
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str(legacy_b);
        text.push('\n');
        fs::write(&path, &text).unwrap();
        store.append("fig6", &rec("aa", 9)).unwrap(); // supersedes aa
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str(legacy_c);
        text.push_str("\nnot json\n");
        fs::write(&path, &text).unwrap();

        let before = store.load("fig6").unwrap();
        assert_eq!(
            (before.lines, before.checksummed, before.corrupt),
            (4, 2, 1)
        );

        // Compact: dedups and heals, keeping surviving lines verbatim —
        // a legacy line stays byte-identical (and sha-less), a
        // checksummed line keeps its checksum.
        let stats = store.compact("fig6").unwrap();
        assert_eq!(
            stats,
            CompactStats {
                kept: 3,
                superseded: 1,
                corrupt: 1
            }
        );
        let compacted = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = compacted.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], legacy_b, "legacy line survives verbatim");
        assert_eq!(lines[2], legacy_c, "legacy line survives verbatim");

        // Verify: every surviving line classifies as a record, with
        // checksum status preserved per line.
        let verified: Vec<bool> = lines
            .iter()
            .map(|l| match parse_store_line(l) {
                StoreLine::Record { checksummed, .. } => checksummed,
                other => panic!("compacted line must verify: {other:?}"),
            })
            .collect();
        assert_eq!(verified, [true, false, false]);

        // Reload: bit-identical record set, same mixed checksum counts,
        // and a second compact changes nothing.
        let after = store.load("fig6").unwrap();
        assert_eq!((after.lines, after.checksummed, after.corrupt), (3, 1, 0));
        assert_eq!(after.records["aa"].render(), rec("aa", 9).render());
        assert_eq!(after.records["bb"].render(), rec("bb", 2).render());
        assert_eq!(after.records["cc"].render(), rec("cc", 3).render());
        assert!(!after.needs_compaction());
        store.compact("fig6").unwrap();
        assert_eq!(
            fs::read_to_string(&path).unwrap(),
            compacted,
            "round-trip is bit-identical"
        );
    }

    #[test]
    fn concurrent_appends_keep_every_line_well_formed() {
        let s = Scratch::new("threads");
        let store = ResultStore::open(&s.0).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..25 {
                        store.append("fig6", &rec(&format!("{t}-{i}"), i)).unwrap();
                    }
                });
            }
        });
        let shard = store.load("fig6").unwrap();
        assert_eq!(shard.records.len(), 100);
        assert_eq!(shard.corrupt, 0);
        assert_eq!(shard.checksummed, 100);
    }
}
