//! The resilient client side of the result service: a remote,
//! best-effort tier over the local [`crate::ResultStore`].
//!
//! A [`RemoteStore`] never owns correctness — the local store and the
//! simulator do. It is a cache accelerator with three failure rules:
//!
//! 1. **Bounded, deterministic retries.** Every operation makes at
//!    most [`RetryPolicy::attempts`] exchanges, sleeping an
//!    exponentially growing backoff between them with jitter derived
//!    from a SplitMix64 stream seeded by [`RetryPolicy::seed`] — the
//!    same policy always waits the same schedule.
//! 2. **A trip-once circuit breaker.** After
//!    [`RetryPolicy::breaker_threshold`] *consecutive* operations
//!    exhaust their retries, the remote is marked degraded: every
//!    later operation short-circuits to a local miss without touching
//!    the network, a single warning lands on stderr, and the harness
//!    can report the event once (see
//!    [`RemoteStore::take_degradation_event`]). The sweep continues
//!    local-only; its reports do not change by a byte.
//! 3. **Distrust of every byte received.** A response that does not
//!    parse, a record whose SHA-256 does not match the one the server
//!    claimed, or a record keyed under the wrong fingerprint is
//!    quarantined client-side (see [`RemoteStore::with_quarantine`])
//!    and treated as a miss — the job re-simulates. Garbled data never
//!    reaches the local store or a report.

use crate::hash::sha256_hex;
use crate::net::{NetIo, NetTimeouts, TcpIo};
use crate::protocol::{Request, Response};
use crate::record::record_fingerprint;
use gm_stats::Json;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

/// Retry, backoff, and circuit-breaker settings for a [`RemoteStore`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Exchanges one operation may make before giving up (≥ 1).
    pub attempts: u32,
    /// Backoff before the second attempt; each later attempt doubles
    /// it. Jitter in `[0, base_backoff)` is added from the seeded
    /// stream. Zero disables sleeping entirely (tests).
    pub base_backoff: Duration,
    /// Seed of the jitter stream — same seed, same schedule.
    pub seed: u64,
    /// Consecutive failed operations (retries exhausted) before the
    /// breaker trips and the remote is marked degraded.
    pub breaker_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 3,
            base_backoff: Duration::from_millis(50),
            seed: 0x6d69_6e69_6f6e, // "minion"
            breaker_threshold: 3,
        }
    }
}

/// A snapshot of a [`RemoteStore`]'s operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RemoteCounters {
    /// `Get`s answered with a verified record.
    pub hits: u64,
    /// `Get`s answered `NotFound`.
    pub misses: u64,
    /// `Put`s the server acknowledged as stored.
    pub pushes: u64,
    /// `Put`s that failed (rejected, transport error, or degraded).
    pub push_failures: u64,
    /// Responses quarantined client-side: unparseable, checksum
    /// mismatch, or wrong fingerprint.
    pub garbled: u64,
    /// Extra exchanges made beyond each operation's first attempt.
    pub retries: u64,
    /// Operations short-circuited by the tripped breaker.
    pub short_circuits: u64,
}

/// How one operation's exchange concluded, internally.
enum ExchangeError {
    /// The breaker was already tripped; no exchange was made.
    ShortCircuit,
    /// Every attempt failed at the transport layer.
    Transport,
    /// The remote answered, but with bytes that failed validation;
    /// they were quarantined.
    Garbled,
}

/// SplitMix64, as in [`crate::faults`].
fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed
        .wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The client of one `gm-serve` daemon. Thread-safe: the runner's
/// worker threads share one instance.
pub struct RemoteStore {
    addr: String,
    io: Box<dyn NetIo>,
    policy: RetryPolicy,
    /// Where client-side quarantined payloads are appended, if set.
    quarantine: Option<PathBuf>,
    degraded: AtomicBool,
    /// Set when the breaker trips, taken once by the harness for the
    /// `remote_degraded` telemetry span.
    degradation_unreported: AtomicBool,
    warned: AtomicBool,
    consecutive_failures: AtomicU32,
    /// Position in the jitter stream.
    backoff_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    pushes: AtomicU64,
    push_failures: AtomicU64,
    garbled: AtomicU64,
    retries: AtomicU64,
    short_circuits: AtomicU64,
}

impl std::fmt::Debug for RemoteStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteStore")
            .field("addr", &self.addr)
            .field("policy", &self.policy)
            .field("degraded", &self.degraded.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl RemoteStore {
    /// A client of the daemon at `addr` with production transport
    /// ([`TcpIo`]) and the default [`RetryPolicy`].
    pub fn new(addr: impl Into<String>) -> Self {
        Self::with_io(addr, Box::new(TcpIo::new(NetTimeouts::default())))
    }

    /// A client with a caller-supplied [`NetIo`] — the fault-injection
    /// seam used by the network crash tests.
    pub fn with_io(addr: impl Into<String>, io: Box<dyn NetIo>) -> Self {
        Self {
            addr: addr.into(),
            io,
            policy: RetryPolicy::default(),
            quarantine: None,
            degraded: AtomicBool::new(false),
            degradation_unreported: AtomicBool::new(false),
            warned: AtomicBool::new(false),
            consecutive_failures: AtomicU32::new(0),
            backoff_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            pushes: AtomicU64::new(0),
            push_failures: AtomicU64::new(0),
            garbled: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            short_circuits: AtomicU64::new(0),
        }
    }

    /// Replaces the retry/breaker policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Appends client-side quarantined payloads (garbled responses,
    /// checksum mismatches) to `path` as JSON lines.
    pub fn with_quarantine(mut self, path: impl Into<PathBuf>) -> Self {
        self.quarantine = Some(path.into());
        self
    }

    /// The daemon address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the circuit breaker has tripped.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Returns `true` exactly once after the breaker trips — the hook
    /// the harness uses to emit one `remote_degraded` telemetry span.
    pub fn take_degradation_event(&self) -> bool {
        self.degradation_unreported.swap(false, Ordering::Relaxed)
    }

    /// A snapshot of the operation counters.
    pub fn counters(&self) -> RemoteCounters {
        RemoteCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            pushes: self.pushes.load(Ordering::Relaxed),
            push_failures: self.push_failures.load(Ordering::Relaxed),
            garbled: self.garbled.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            short_circuits: self.short_circuits.load(Ordering::Relaxed),
        }
    }

    /// The deterministic backoff before `attempt` (2-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let base = self.policy.base_backoff;
        if base.is_zero() {
            return Duration::ZERO;
        }
        let seq = self.backoff_seq.fetch_add(1, Ordering::Relaxed);
        let jitter_us = mix(self.policy.seed, seq) % base.as_micros().max(1) as u64;
        base * 2u32.saturating_pow(attempt.saturating_sub(2)) + Duration::from_micros(jitter_us)
    }

    /// One operation's consecutive failure landed: count it and trip
    /// the breaker at the threshold.
    fn note_failure(&self) {
        let failures = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if failures >= self.policy.breaker_threshold.max(1)
            && !self.degraded.swap(true, Ordering::Relaxed)
        {
            self.degradation_unreported.store(true, Ordering::Relaxed);
            if !self.warned.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: remote store {}: {failures} consecutive failed \
                     operation(s); marking remote degraded — continuing local-only",
                    self.addr
                );
            }
        }
    }

    /// Appends a quarantined payload line, if a quarantine path is
    /// configured. Never propagates errors: the quarantine is
    /// evidence, not data the run depends on.
    fn quarantine_payload(&self, reason: &str, payload: &[u8]) {
        let Some(path) = &self.quarantine else {
            return;
        };
        let mut line = Json::object();
        let lossy: String = String::from_utf8_lossy(payload).chars().take(512).collect();
        line.set("addr", self.addr.as_str())
            .set("reason", reason)
            .set("payload", lossy.as_str());
        let write = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| writeln!(f, "{}", line.render()));
        if let Err(e) = write {
            eprintln!("warning: remote quarantine to {path:?} failed: {e}");
        }
    }

    /// Performs one request with retries, backoff, and the breaker.
    fn request(&self, request: &Request) -> Result<Response, ExchangeError> {
        if self.degraded() {
            self.short_circuits.fetch_add(1, Ordering::Relaxed);
            return Err(ExchangeError::ShortCircuit);
        }
        let payload = request.encode();
        for attempt in 1..=self.policy.attempts.max(1) {
            if attempt > 1 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                let pause = self.backoff(attempt);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            match self.io.exchange(&self.addr, &payload) {
                Ok(bytes) => {
                    // The remote answered: the link is alive, whatever
                    // the payload says.
                    self.consecutive_failures.store(0, Ordering::Relaxed);
                    return match Response::decode(&bytes) {
                        Ok(resp) => Ok(resp),
                        Err(reason) => {
                            // Garbage is data damage, not a transport
                            // blip: retrying would re-trust a channel
                            // that just lied. Quarantine and miss.
                            self.garbled.fetch_add(1, Ordering::Relaxed);
                            self.quarantine_payload(&reason, &bytes);
                            Err(ExchangeError::Garbled)
                        }
                    };
                }
                Err(_) => continue,
            }
        }
        self.note_failure();
        Err(ExchangeError::Transport)
    }

    /// Fetches the record stored under (`experiment`, `fingerprint`).
    /// `None` is a miss of any flavour — not stored, remote degraded,
    /// transport failure, or a response that failed validation (which
    /// is also quarantined). The caller re-simulates; it never needs
    /// to know why.
    pub fn get(&self, experiment: &str, fingerprint: &str) -> Option<Json> {
        let resp = match self.request(&Request::Get {
            experiment: experiment.to_owned(),
            fingerprint: fingerprint.to_owned(),
        }) {
            Ok(resp) => resp,
            Err(_) => return None,
        };
        match resp {
            Response::Found { record, sha } => {
                let body = record.render();
                let verified = sha256_hex(body.as_bytes()) == sha
                    && record_fingerprint(&record) == Ok(fingerprint);
                if !verified {
                    self.garbled.fetch_add(1, Ordering::Relaxed);
                    self.quarantine_payload(
                        "record failed client-side verification",
                        body.as_bytes(),
                    );
                    return None;
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(record)
            }
            Response::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            // A server-side rejection or an off-shape answer: miss.
            _ => None,
        }
    }

    /// Offers `record` (which must carry a fingerprint and no `"sha"`
    /// field) for appending to `experiment`'s shard on the remote.
    /// Returns whether the server acknowledged it as stored. Failure
    /// is never fatal: the record is already durable locally.
    pub fn put(&self, experiment: &str, record: &Json) -> bool {
        let sha = sha256_hex(record.render().as_bytes());
        let stored = matches!(
            self.request(&Request::Put {
                experiment: experiment.to_owned(),
                sha,
                record: record.clone(),
            }),
            Ok(Response::Stored)
        );
        if stored {
            self.pushes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.push_failures.fetch_add(1, Ordering::Relaxed);
        }
        stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{FaultyNet, NetFaultControl};
    use std::io;
    use std::sync::Mutex;

    /// An in-memory "server": one (experiment, fingerprint) → record
    /// map behind the real protocol encode/decode path.
    struct MapServer {
        records: Mutex<Vec<(String, Json)>>,
    }

    impl MapServer {
        fn with(records: Vec<(String, Json)>) -> Self {
            Self {
                records: Mutex::new(records),
            }
        }
    }

    impl NetIo for MapServer {
        fn exchange(&self, _addr: &str, request: &[u8]) -> io::Result<Vec<u8>> {
            let resp = match Request::decode(request) {
                Ok(Request::Get { fingerprint, .. }) => {
                    let records = self.records.lock().unwrap();
                    match records.iter().find(|(fp, _)| *fp == fingerprint) {
                        Some((_, record)) => Response::Found {
                            sha: sha256_hex(record.render().as_bytes()),
                            record: record.clone(),
                        },
                        None => Response::NotFound,
                    }
                }
                Ok(Request::Put { sha, record, .. }) => {
                    if sha256_hex(record.render().as_bytes()) != sha {
                        Response::Error {
                            message: "checksum mismatch".into(),
                        }
                    } else {
                        let fp = record
                            .get("fingerprint")
                            .and_then(Json::as_str)
                            .unwrap_or("")
                            .to_owned();
                        self.records.lock().unwrap().push((fp, record));
                        Response::Stored
                    }
                }
                Ok(_) => Response::Health {
                    status: "serving".into(),
                },
                Err(e) => Response::Error { message: e },
            };
            Ok(resp.encode())
        }
    }

    fn rec(fp: &str, cycles: u64) -> Json {
        let mut j = Json::object();
        j.set("fingerprint", fp).set("cycles", cycles);
        j
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            attempts: 2,
            base_backoff: Duration::ZERO,
            seed: 1,
            breaker_threshold: 2,
        }
    }

    #[test]
    fn get_and_put_round_trip_through_the_protocol() {
        let fp = "aa".repeat(32);
        let server = MapServer::with(vec![(fp.clone(), rec(&fp, 7))]);
        let remote = RemoteStore::with_io("test", Box::new(server)).with_policy(fast_policy());
        assert_eq!(
            remote.get("fig6", &fp).unwrap().render(),
            rec(&fp, 7).render()
        );
        let fp2 = "bb".repeat(32);
        assert!(remote.get("fig6", &fp2).is_none());
        assert!(remote.put("fig6", &rec(&fp2, 9)));
        assert_eq!(
            remote.get("fig6", &fp2).unwrap().render(),
            rec(&fp2, 9).render()
        );
        let c = remote.counters();
        assert_eq!((c.hits, c.misses, c.pushes), (2, 1, 1));
        assert!(!remote.degraded());
    }

    #[test]
    fn transient_faults_heal_within_the_retry_budget() {
        let fp = "aa".repeat(32);
        let ctl = NetFaultControl::new();
        let server = MapServer::with(vec![(fp.clone(), rec(&fp, 7))]);
        let net = FaultyNet::new(Box::new(server), ctl.clone());
        let remote = RemoteStore::with_io("test", Box::new(net)).with_policy(fast_policy());
        ctl.drop_next();
        assert!(remote.get("fig6", &fp).is_some(), "retry absorbs one drop");
        assert_eq!(remote.counters().retries, 1);
        assert!(!remote.degraded());
    }

    #[test]
    fn the_breaker_trips_once_and_short_circuits() {
        let ctl = NetFaultControl::new();
        let server = MapServer::with(Vec::new());
        let net = FaultyNet::new(Box::new(server), ctl.clone());
        let remote = RemoteStore::with_io("test", Box::new(net)).with_policy(fast_policy());
        ctl.refuse_all();
        let fp = "aa".repeat(32);
        // Two operations × two attempts exhaust the breaker threshold.
        assert!(remote.get("fig6", &fp).is_none());
        assert!(!remote.degraded(), "one failed operation is not enough");
        assert!(!remote.put("fig6", &rec(&fp, 1)));
        assert!(remote.degraded());
        assert!(remote.take_degradation_event(), "reported exactly once");
        assert!(!remote.take_degradation_event());
        // Later operations never touch the network again.
        let before = ctl.exchanges();
        assert!(remote.get("fig6", &fp).is_none());
        assert!(!remote.put("fig6", &rec(&fp, 1)));
        assert_eq!(ctl.exchanges(), before);
        assert_eq!(remote.counters().short_circuits, 2);
    }

    #[test]
    fn garbled_responses_quarantine_and_miss_without_retrying() {
        let fp = "aa".repeat(32);
        let ctl = NetFaultControl::new();
        let server = MapServer::with(vec![(fp.clone(), rec(&fp, 7))]);
        let net = FaultyNet::new(Box::new(server), ctl.clone());
        let dir = std::env::temp_dir().join(format!("gm-remote-quar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let qpath = dir.join("remote.quarantine");
        let remote = RemoteStore::with_io("test", Box::new(net))
            .with_policy(fast_policy())
            .with_quarantine(&qpath);
        ctl.garble_next();
        assert!(remote.get("fig6", &fp).is_none(), "garbage is a miss");
        let c = remote.counters();
        assert_eq!((c.garbled, c.retries), (1, 0), "no retry on garbage");
        assert!(
            !remote.degraded(),
            "the remote answered; not a breaker event"
        );
        let q = std::fs::read_to_string(&qpath).unwrap();
        assert_eq!(q.lines().count(), 1);
        assert!(q.contains("unparseable"));
        // A half-closed (truncated) response takes the same path.
        ctl.half_close_next(3);
        assert!(remote.get("fig6", &fp).is_none());
        assert_eq!(remote.counters().garbled, 2);
        // And a clean exchange still works afterwards.
        assert!(remote.get("fig6", &fp).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_lying_server_fails_client_side_verification() {
        let fp = "aa".repeat(32);
        let other = "bb".repeat(32);
        // Server returns a record keyed under the wrong fingerprint.
        let server = MapServer::with(vec![(fp.clone(), rec(&other, 7))]);
        let remote = RemoteStore::with_io("test", Box::new(server)).with_policy(fast_policy());
        assert!(remote.get("fig6", &fp).is_none());
        assert_eq!(remote.counters().garbled, 1);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_grows() {
        let remote =
            RemoteStore::with_io("test", Box::new(TcpIo::default())).with_policy(RetryPolicy {
                attempts: 4,
                base_backoff: Duration::from_millis(10),
                seed: 42,
                breaker_threshold: 3,
            });
        let again =
            RemoteStore::with_io("test", Box::new(TcpIo::default())).with_policy(RetryPolicy {
                attempts: 4,
                base_backoff: Duration::from_millis(10),
                seed: 42,
                breaker_threshold: 3,
            });
        for attempt in 2..=4 {
            let a = remote.backoff(attempt);
            assert_eq!(a, again.backoff(attempt), "same seed, same schedule");
            assert!(a >= Duration::from_millis(10) * 2u32.pow(attempt - 2));
            assert!(a < Duration::from_millis(10) * (2u32.pow(attempt - 2) + 1));
        }
    }
}
