//! The wire protocol of the result service: length-prefixed
//! canonical-JSON frames carrying [`Request`] and [`Response`] objects.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON (one [`gm_stats::Json`] object rendered by
//! [`gm_stats::Json::render`], which is canonical: field order is
//! insertion order and every writer builds objects the same way). The
//! length is capped at [`MAX_FRAME`] so a garbled or hostile peer
//! cannot make either side allocate unboundedly.
//!
//! The request set mirrors the local store's surface:
//!
//! * `Get` — fetch the record stored under (experiment, fingerprint);
//! * `Put` — offer a record for appending, carrying the SHA-256 the
//!   client computed over the rendered record body so the server can
//!   verify the bytes it received before appending them;
//! * `Health` — is the daemon serving or draining;
//! * `Stats` — deterministic request counters (no wall-clock fields).
//!
//! Both sides parse strictly: an unknown request kind, a missing
//! field, or a type mismatch is an error, never a guess — a garbled
//! frame must surface as damage, not as a plausible record.

use gm_stats::Json;
use std::io::{self, Read, Write};

/// Protocol version carried in every frame as `"v"`.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on a frame payload. A result record is a few KiB; the
/// cap leaves three orders of magnitude of headroom while keeping a
/// garbled length prefix from looking like a multi-GiB allocation.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Writes one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut dyn Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary; mid-frame EOF, or a length
/// prefix beyond [`MAX_FRAME`], is an error.
pub fn read_frame(r: &mut dyn Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read(&mut len)? {
        0 => return Ok(None),
        mut got => {
            while got < 4 {
                let n = r.read(&mut len[got..])?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed inside a frame header",
                    ));
                }
                got += n;
            }
        }
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// One request from a client to the result service.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Fetch the record stored under (`experiment`, `fingerprint`).
    Get {
        /// The experiment whose shard holds the record.
        experiment: String,
        /// The job fingerprint the record is keyed under.
        fingerprint: String,
    },
    /// Offer `record` for appending to `experiment`'s shard. `sha` is
    /// the SHA-256 (lowercase hex) of the rendered record body the
    /// client computed before sending; the server recomputes it over
    /// the bytes it received and rejects a mismatch without appending.
    Put {
        /// The experiment shard to append to.
        experiment: String,
        /// Claimed SHA-256 of the rendered record body.
        sha: String,
        /// The record itself, without a `"sha"` field.
        record: Json,
    },
    /// Is the daemon serving or draining?
    Health,
    /// Deterministic request counters.
    Stats,
}

impl Request {
    /// Renders the request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut j = Json::object();
        j.set("v", PROTOCOL_VERSION);
        match self {
            Request::Get {
                experiment,
                fingerprint,
            } => {
                j.set("req", "get")
                    .set("experiment", experiment.as_str())
                    .set("fingerprint", fingerprint.as_str());
            }
            Request::Put {
                experiment,
                sha,
                record,
            } => {
                j.set("req", "put")
                    .set("experiment", experiment.as_str())
                    .set("sha", sha.as_str())
                    .set("record", record.clone());
            }
            Request::Health => {
                j.set("req", "health");
            }
            Request::Stats => {
                j.set("req", "stats");
            }
        }
        j.render().into_bytes()
    }

    /// Parses a frame payload as a request. Strict: unknown kinds and
    /// missing or mistyped fields are errors.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "request is not UTF-8".to_owned())?;
        let j = Json::parse(text).map_err(|e| format!("unparseable request ({e})"))?;
        if j.get("v").and_then(Json::as_u64) != Some(PROTOCOL_VERSION) {
            return Err(format!(
                "request is not protocol v{PROTOCOL_VERSION}: {text:.80}"
            ));
        }
        let field = |key: &str| -> Result<String, String> {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("request field {key:?} missing or not a string"))
        };
        match j.get("req").and_then(Json::as_str) {
            Some("get") => Ok(Request::Get {
                experiment: field("experiment")?,
                fingerprint: field("fingerprint")?,
            }),
            Some("put") => Ok(Request::Put {
                experiment: field("experiment")?,
                sha: field("sha")?,
                record: j
                    .get("record")
                    .filter(|r| r.as_object().is_some())
                    .cloned()
                    .ok_or("put request has no record object")?,
            }),
            Some("health") => Ok(Request::Health),
            Some("stats") => Ok(Request::Stats),
            Some(other) => Err(format!("unknown request kind {other:?}")),
            None => Err("request has no \"req\" field".to_owned()),
        }
    }
}

/// One response from the result service.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A `Get` hit: the stored record (sha-stripped) and the SHA-256 of
    /// its rendered body, so the client can verify the bytes it
    /// received.
    Found {
        /// The stored record, without its `"sha"` field.
        record: Json,
        /// SHA-256 of the rendered record body.
        sha: String,
    },
    /// A `Get` miss: the service holds no record for the fingerprint.
    NotFound,
    /// A `Put` the server verified and appended durably.
    Stored,
    /// A `Health` answer: `"serving"` or `"draining"`.
    Health {
        /// Daemon lifecycle state.
        status: String,
    },
    /// A `Stats` answer: deterministic counters (see `gm-serve`).
    Stats {
        /// Counter object; no wall-clock fields.
        stats: Json,
    },
    /// The request was rejected (bad frame, checksum mismatch, store
    /// failure). The record, if any, was not appended.
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// Renders the response as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut j = Json::object();
        j.set("v", PROTOCOL_VERSION);
        match self {
            Response::Found { record, sha } => {
                j.set("ok", true)
                    .set("found", true)
                    .set("sha", sha.as_str())
                    .set("record", record.clone());
            }
            Response::NotFound => {
                j.set("ok", true).set("found", false);
            }
            Response::Stored => {
                j.set("ok", true).set("stored", true);
            }
            Response::Health { status } => {
                j.set("ok", true).set("status", status.as_str());
            }
            Response::Stats { stats } => {
                j.set("ok", true).set("stats", stats.clone());
            }
            Response::Error { message } => {
                j.set("ok", false).set("error", message.as_str());
            }
        }
        j.render().into_bytes()
    }

    /// Parses a frame payload as a response. Strict, like
    /// [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "response is not UTF-8".to_owned())?;
        let j = Json::parse(text).map_err(|e| format!("unparseable response ({e})"))?;
        if j.get("v").and_then(Json::as_u64) != Some(PROTOCOL_VERSION) {
            return Err(format!(
                "response is not protocol v{PROTOCOL_VERSION}: {text:.80}"
            ));
        }
        match j.get("ok").and_then(Json::as_bool) {
            Some(true) => {}
            Some(false) => {
                return Ok(Response::Error {
                    message: j
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("unspecified error")
                        .to_owned(),
                })
            }
            None => return Err("response has no \"ok\" field".to_owned()),
        }
        if let Some(found) = j.get("found").and_then(Json::as_bool) {
            if !found {
                return Ok(Response::NotFound);
            }
            let record = j
                .get("record")
                .filter(|r| r.as_object().is_some())
                .cloned()
                .ok_or("found response has no record object")?;
            let sha = j
                .get("sha")
                .and_then(Json::as_str)
                .ok_or("found response has no sha")?
                .to_owned();
            return Ok(Response::Found { record, sha });
        }
        if j.get("stored").and_then(Json::as_bool) == Some(true) {
            return Ok(Response::Stored);
        }
        if let Some(status) = j.get("status").and_then(Json::as_str) {
            return Ok(Response::Health {
                status: status.to_owned(),
            });
        }
        if let Some(stats) = j.get("stats").filter(|s| s.as_object().is_some()) {
            return Ok(Response::Stats {
                stats: stats.clone(),
            });
        }
        Err("response matches no known shape".to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Json {
        let mut j = Json::object();
        j.set("fingerprint", "ab".repeat(32)).set("cycles", 7u64);
        j
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_frames_and_oversized_lengths_are_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            assert!(read_frame(&mut r).is_err(), "cut={cut}");
        }
        let huge = (MAX_FRAME as u32 + 1).to_be_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        let mut w = Vec::new();
        assert!(write_frame(&mut w, &vec![0u8; MAX_FRAME + 1]).is_err());
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Get {
                experiment: "fig6".into(),
                fingerprint: "ff".repeat(32),
            },
            Request::Put {
                experiment: "fig6".into(),
                sha: "00".repeat(32),
                record: rec(),
            },
            Request::Health,
            Request::Stats,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let mut stats = Json::object();
        stats.set("requests", 3u64);
        let resps = [
            Response::Found {
                record: rec(),
                sha: "11".repeat(32),
            },
            Response::NotFound,
            Response::Stored,
            Response::Health {
                status: "serving".into(),
            },
            Response::Stats { stats },
            Response::Error {
                message: "checksum mismatch".into(),
            },
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn decoding_is_strict() {
        for bad in [
            &b"not json"[..],
            br#"{"req":"get"}"#,
            br#"{"v":1,"req":"get"}"#,
            br#"{"v":1,"req":"get","experiment":"e","fingerprint":7}"#,
            br#"{"v":1,"req":"put","experiment":"e","sha":"s"}"#,
            br#"{"v":1,"req":"put","experiment":"e","sha":"s","record":[1]}"#,
            br#"{"v":1,"req":"explode"}"#,
            br#"{"v":2,"req":"health"}"#,
            br#"{"v":1}"#,
        ] {
            assert!(Request::decode(bad).is_err(), "{bad:?}");
        }
        for bad in [
            &b"\xff\xfe"[..],
            br#"{"v":1}"#,
            br#"{"v":1,"ok":true}"#,
            br#"{"v":1,"ok":true,"found":true}"#,
            br#"{"v":1,"ok":true,"found":true,"record":{"a":1}}"#,
            br#"{"v":2,"ok":true,"stored":true}"#,
        ] {
            assert!(Response::decode(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn error_responses_carry_their_message() {
        match Response::decode(br#"{"v":1,"ok":false,"error":"nope"}"#).unwrap() {
            Response::Error { message } => assert_eq!(message, "nope"),
            other => panic!("{other:?}"),
        }
    }
}
