#![warn(missing_docs)]

//! Persistent, shardable experiment results for the GhostMinion
//! reproduction.
//!
//! Re-simulating the paper's figures means hundreds of
//! (workload × scheme) jobs at up to 2×10⁹ cycles each. This crate
//! gives each such job a stable identity and a durable home, which is
//! what result caching, warm re-runs, and cross-machine sharding all
//! hang off:
//!
//! * [`fingerprint`] — a job's content address: the SHA-256 of a
//!   canonical-JSON descriptor covering the workload's program content,
//!   the scheme, the scale, and the full
//!   [`ghostminion::SystemConfig`]. Equal fingerprint ⇒ equal
//!   simulation; any behavioural change ⇒ a clean cache miss.
//! * [`record`] — the flat JSON form of one finished job, carrying
//!   enough (cycles, per-core pipeline stats, all memory counters,
//!   wall-clock) to rebuild the [`ghostminion::MachineResult`] a report
//!   renderer consumes.
//! * [`store`] — append-only JSON-lines per experiment with per-record
//!   checksums, tolerant reads (corrupt lines quarantined, never
//!   silently dropped), and atomic compaction; the cache the `gm-bench`
//!   runner consults before simulating and appends to after.
//! * [`faults`] — deterministic I/O fault injection behind the store's
//!   [`store::StoreIo`] seam, for crash and corruption tests.
//! * [`protocol`] — the result service's wire format: length-prefixed
//!   canonical-JSON `Get`/`Put`/`Health`/`Stats` frames.
//! * [`net`] — the [`net::NetIo`] seam the remote tier talks through
//!   ([`net::TcpIo`] in production), plus deterministic network fault
//!   injection ([`net::FaultyNet`]) mirroring [`faults`].
//! * [`remote`] — the resilient client of a `gm-serve` daemon:
//!   bounded seeded retries, a trip-once circuit breaker, and
//!   client-side quarantine of garbled responses.
//! * [`hash`] — the dependency-free SHA-256 underneath it all.
//!
//! The `gm-bench` crate layers the user-visible behaviour on top:
//! `--store DIR` for cache-aware re-runs, `--shard K/N` for
//! deterministic job partitioning, and `gm-run merge` for combining
//! shard outputs into a report bit-identical to an unsharded run.

pub mod faults;
pub mod fingerprint;
pub mod hash;
pub mod net;
pub mod protocol;
pub mod record;
pub mod remote;
pub mod store;

pub use faults::{FaultControl, FaultyIo};
pub use fingerprint::{job_descriptor, job_fingerprint, program_sha, FORMAT_VERSION};
pub use hash::{sha256_hex, Sha256};
pub use net::{FaultyNet, NetFaultControl, NetIo, NetTimeouts, TcpIo};
pub use protocol::{read_frame, write_frame, Request, Response, MAX_FRAME, PROTOCOL_VERSION};
pub use record::{
    job_record, record_fingerprint, record_wall_us, result_from_record, validate_record,
};
pub use remote::{RemoteCounters, RemoteStore, RetryPolicy};
pub use store::{
    parse_store_line, CompactStats, GcStats, LoadedShard, QuarantineStats, RealIo, ResultStore,
    StoreIo, StoreLine,
};
