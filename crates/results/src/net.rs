//! The network seam of the remote result store, and deterministic
//! fault injection behind it.
//!
//! [`NetIo`] is to the network what [`crate::StoreIo`] is to the disk:
//! the one trait everything remote goes through. Its single operation,
//! [`NetIo::exchange`], performs a whole request/response round trip —
//! connect, send one frame, read one frame, close — which is exactly
//! the granularity the failure modes of interest live at: a refused
//! connection, a dropped (timed-out) exchange, a delayed one, a
//! garbled response, a half-closed connection that truncates the
//! response. [`TcpIo`] is the production implementation with explicit
//! connect/read/write timeouts; [`FaultyNet`] wraps any [`NetIo`] and
//! injects the faults its shared [`NetFaultControl`] arms, mirroring
//! the disk-side [`crate::FaultControl`] — one-shot rules plus a
//! seeded chaos stream, so every network failure test is deterministic.

use crate::protocol::{read_frame, write_frame};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Connect/read/write deadlines for one exchange. Every timeout is
/// explicit: a dead or wedged remote must surface as an error the
/// retry/breaker machinery can act on, never as a hung sweep.
#[derive(Clone, Copy, Debug)]
pub struct NetTimeouts {
    /// Deadline for establishing the TCP connection.
    pub connect: Duration,
    /// Deadline for each read of the response.
    pub read: Duration,
    /// Deadline for each write of the request.
    pub write: Duration,
}

impl Default for NetTimeouts {
    fn default() -> Self {
        Self {
            connect: Duration::from_secs(2),
            read: Duration::from_secs(5),
            write: Duration::from_secs(5),
        }
    }
}

/// The minimal network surface the remote store talks through.
pub trait NetIo: Send + Sync {
    /// Performs one whole request/response exchange with `addr`:
    /// connect, send `request` as one frame, read one response frame,
    /// close. Returns the response payload.
    fn exchange(&self, addr: &str, request: &[u8]) -> io::Result<Vec<u8>>;
}

/// The production [`NetIo`]: one TCP connection per exchange, with the
/// configured timeouts applied to every phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpIo {
    timeouts: NetTimeouts,
}

impl TcpIo {
    /// A `TcpIo` with the given deadlines.
    pub fn new(timeouts: NetTimeouts) -> Self {
        Self { timeouts }
    }
}

impl NetIo for TcpIo {
    fn exchange(&self, addr: &str, request: &[u8]) -> io::Result<Vec<u8>> {
        let sockaddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
        })?;
        let mut stream = TcpStream::connect_timeout(&sockaddr, self.timeouts.connect)?;
        stream.set_read_timeout(Some(self.timeouts.read))?;
        stream.set_write_timeout(Some(self.timeouts.write))?;
        write_frame(&mut stream, request)?;
        read_frame(&mut stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed without responding",
            )
        })
    }
}

#[derive(Debug, Default)]
struct State {
    /// Refuse this many upcoming exchanges with `ConnectionRefused`
    /// (without touching the network). `u32::MAX` from
    /// [`NetFaultControl::refuse_all`] is effectively forever.
    refuse: u32,
    /// Next exchange is dropped: no network traffic, `TimedOut`.
    drop_next: bool,
    /// Next exchange really runs, after this delay.
    delay_next: Option<Duration>,
    /// Next exchange really runs, then its response bytes are garbled.
    garble_next: bool,
    /// Next exchange really runs, then its response is truncated to
    /// this many bytes — what a half-closed connection delivers.
    half_close_next: Option<usize>,
    /// Seeded chaos: (seed, percent) — each exchange independently
    /// refuses, drops, or garbles with the given probability.
    seeded: Option<(u64, u32)>,
    /// Exchanges attempted so far (the chaos stream's position). Also
    /// how breaker tests prove short-circuiting: a tripped client
    /// stops adding to this.
    ops: u64,
    /// Faults actually injected.
    injected: u64,
}

/// Shared handle steering a [`FaultyNet`]. Clone it before handing the
/// io to the remote store so the test keeps a control channel.
#[derive(Clone, Debug, Default)]
pub struct NetFaultControl(Arc<Mutex<State>>);

impl NetFaultControl {
    /// A control with no faults armed.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Refuses the next `n` exchanges with `ConnectionRefused`.
    pub fn refuse_next(&self, n: u32) {
        self.lock().refuse = n;
    }

    /// Refuses every exchange until [`NetFaultControl::clear`] — a dead
    /// remote.
    pub fn refuse_all(&self) {
        self.lock().refuse = u32::MAX;
    }

    /// Drops the next exchange: no traffic, `TimedOut`.
    pub fn drop_next(&self) {
        self.lock().drop_next = true;
    }

    /// Delays the next exchange by `d`, then lets it run.
    pub fn delay_next(&self, d: Duration) {
        self.lock().delay_next = Some(d);
    }

    /// Garbles the next exchange's response bytes.
    pub fn garble_next(&self) {
        self.lock().garble_next = true;
    }

    /// Truncates the next exchange's response to `keep` bytes — the
    /// payload a half-closed connection delivers.
    pub fn half_close_next(&self, keep: usize) {
        self.lock().half_close_next = Some(keep);
    }

    /// Enables seeded chaos: each exchange faults (refuse, drop, or
    /// garble, derived from the stream) with probability `percent`/100.
    pub fn seed(&self, seed: u64, percent: u32) {
        self.lock().seeded = Some((seed, percent));
    }

    /// Disarms every fault, keeping the counters.
    pub fn clear(&self) {
        let mut s = self.lock();
        let ops = s.ops;
        let injected = s.injected;
        *s = State::default();
        s.ops = ops;
        s.injected = injected;
    }

    /// Exchanges attempted through the faulty io so far.
    pub fn exchanges(&self) -> u64 {
        self.lock().ops
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> u64 {
        self.lock().injected
    }
}

/// SplitMix64, as in [`crate::faults`].
fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed
        .wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn injected_err(kind: io::ErrorKind, what: &str) -> io::Error {
    io::Error::new(kind, format!("injected fault: {what}"))
}

/// What one exchange should do, decided under the control lock.
enum Plan {
    Clean,
    Refuse,
    Drop,
    Delay(Duration),
    Garble,
    HalfClose(usize),
}

/// A [`NetIo`] that injects the faults its [`NetFaultControl`] arms
/// and delegates everything else to the wrapped io.
pub struct FaultyNet {
    inner: Box<dyn NetIo>,
    ctl: NetFaultControl,
}

impl FaultyNet {
    /// Wraps `inner` with the given control handle.
    pub fn new(inner: Box<dyn NetIo>, ctl: NetFaultControl) -> Self {
        Self { inner, ctl }
    }
}

impl NetIo for FaultyNet {
    fn exchange(&self, addr: &str, request: &[u8]) -> io::Result<Vec<u8>> {
        let plan = {
            let mut s = self.ctl.lock();
            s.ops += 1;
            if s.refuse > 0 {
                // `refuse_all` (u32::MAX) never counts down.
                if s.refuse != u32::MAX {
                    s.refuse -= 1;
                }
                s.injected += 1;
                Plan::Refuse
            } else if s.drop_next {
                s.drop_next = false;
                s.injected += 1;
                Plan::Drop
            } else if let Some(d) = s.delay_next.take() {
                s.injected += 1;
                Plan::Delay(d)
            } else if s.garble_next {
                s.garble_next = false;
                s.injected += 1;
                Plan::Garble
            } else if let Some(keep) = s.half_close_next.take() {
                s.injected += 1;
                Plan::HalfClose(keep)
            } else if let Some((seed, percent)) = s.seeded {
                let r = mix(seed, s.ops);
                if r % 100 < u64::from(percent) {
                    s.injected += 1;
                    match (r >> 8) % 3 {
                        0 => Plan::Refuse,
                        1 => Plan::Drop,
                        _ => Plan::Garble,
                    }
                } else {
                    Plan::Clean
                }
            } else {
                Plan::Clean
            }
        };
        match plan {
            Plan::Clean => self.inner.exchange(addr, request),
            Plan::Refuse => Err(injected_err(
                io::ErrorKind::ConnectionRefused,
                "connection refused",
            )),
            Plan::Drop => Err(injected_err(io::ErrorKind::TimedOut, "exchange dropped")),
            Plan::Delay(d) => {
                std::thread::sleep(d);
                self.inner.exchange(addr, request)
            }
            Plan::Garble => {
                let mut payload = self.inner.exchange(addr, request)?;
                // Flip a bit in every 7th byte: still a frame-sized
                // payload, no longer the JSON the server sent.
                for (i, b) in payload.iter_mut().enumerate() {
                    if i % 7 == 0 {
                        *b ^= 0x20;
                    }
                }
                Ok(payload)
            }
            Plan::HalfClose(keep) => {
                let mut payload = self.inner.exchange(addr, request)?;
                payload.truncate(keep);
                Ok(payload)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// A scripted in-memory peer: always answers with the configured
    /// payload and records what it was asked.
    struct Scripted {
        answer: Vec<u8>,
        asked: StdMutex<Vec<Vec<u8>>>,
    }

    impl NetIo for Scripted {
        fn exchange(&self, _addr: &str, request: &[u8]) -> io::Result<Vec<u8>> {
            self.asked.lock().unwrap().push(request.to_vec());
            Ok(self.answer.clone())
        }
    }

    fn scripted(answer: &[u8]) -> (FaultyNet, NetFaultControl) {
        let ctl = NetFaultControl::new();
        let net = FaultyNet::new(
            Box::new(Scripted {
                answer: answer.to_vec(),
                asked: StdMutex::new(Vec::new()),
            }),
            ctl.clone(),
        );
        (net, ctl)
    }

    #[test]
    fn one_shot_rules_fire_once_then_disarm() {
        let (net, ctl) = scripted(b"pong");
        ctl.drop_next();
        assert_eq!(
            net.exchange("x", b"ping").unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
        assert_eq!(net.exchange("x", b"ping").unwrap(), b"pong");
        ctl.garble_next();
        assert_ne!(net.exchange("x", b"ping").unwrap(), b"pong");
        assert_eq!(net.exchange("x", b"ping").unwrap(), b"pong");
        ctl.half_close_next(2);
        assert_eq!(net.exchange("x", b"ping").unwrap(), b"po");
        assert_eq!(ctl.injected(), 3);
        assert_eq!(ctl.exchanges(), 5);
    }

    #[test]
    fn refusals_count_down_and_refuse_all_persists() {
        let (net, ctl) = scripted(b"pong");
        ctl.refuse_next(2);
        for _ in 0..2 {
            assert_eq!(
                net.exchange("x", b"ping").unwrap_err().kind(),
                io::ErrorKind::ConnectionRefused
            );
        }
        assert_eq!(net.exchange("x", b"ping").unwrap(), b"pong");
        ctl.refuse_all();
        for _ in 0..5 {
            assert!(net.exchange("x", b"ping").is_err());
        }
        ctl.clear();
        assert_eq!(net.exchange("x", b"ping").unwrap(), b"pong");
    }

    #[test]
    fn seeded_chaos_is_deterministic() {
        let outcomes = |seed| {
            let (net, ctl) = scripted(b"pong");
            ctl.seed(seed, 40);
            (0..30)
                .map(|_| match net.exchange("x", b"ping") {
                    Ok(p) if p == b"pong" => 'c',
                    Ok(_) => 'g',
                    Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => 'r',
                    Err(_) => 'd',
                })
                .collect::<String>()
        };
        let a = outcomes(7);
        assert_eq!(a, outcomes(7), "same seed, same fault stream");
        assert!(a.contains('c') && a.chars().any(|c| c != 'c'));
    }

    #[test]
    fn tcp_io_refuses_cleanly_on_a_dead_port() {
        // Bind-then-drop guarantees the port is closed right now.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let io = TcpIo::new(NetTimeouts {
            connect: Duration::from_millis(250),
            ..NetTimeouts::default()
        });
        assert!(io.exchange(&addr, b"ping").is_err());
    }
}
