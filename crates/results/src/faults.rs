//! Deterministic I/O fault injection for store crash tests.
//!
//! [`FaultyIo`] implements [`StoreIo`] by delegating to [`RealIo`] and
//! injecting faults its shared [`FaultControl`] handle arms: torn
//! appends cut at an exact byte offset (the on-disk prefix is really
//! written, then the call errors — exactly what a crash mid-`write`
//! leaves behind), half-written snapshot files, failed renames, and
//! path-matched read errors. A seeded chaos mode derives a
//! deterministic fault (or none) for every operation from a SplitMix64
//! stream, so "appends keep failing randomly" is a reproducible test,
//! not a flake.
//!
//! ```
//! use gm_results::{FaultControl, FaultyIo, ResultStore};
//! use gm_stats::Json;
//!
//! let dir = std::env::temp_dir().join(format!("gm-faults-doc-{}", std::process::id()));
//! let ctl = FaultControl::new();
//! let store = ResultStore::open_with_io(&dir, Box::new(FaultyIo::new(ctl.clone())))?;
//!
//! let mut record = Json::object();
//! record.set("fingerprint", "a".repeat(64)).set("cycles", 7u64);
//! ctl.truncate_next_append(10);
//! assert!(store.append("fig6", &record).is_err(), "torn append reports failure");
//! assert_eq!(ctl.injected(), 1);
//!
//! // The torn prefix is on disk, but a load survives it: the damaged
//! // line is quarantined and the record simply re-simulates.
//! let shard = store.load("fig6")?;
//! assert_eq!(shard.records.len(), 0);
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), std::io::Error>(())
//! ```

use crate::store::{RealIo, StoreIo};
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

#[derive(Debug, Default)]
struct State {
    /// Next append writes only this many payload bytes, then errors.
    truncate_next_append: Option<usize>,
    /// Next snapshot write puts only this many bytes in the file, then
    /// errors (a crash while writing a compact/gc temporary).
    truncate_next_write: Option<usize>,
    /// Fail the next rename (crash between snapshot and swap).
    fail_next_rename: bool,
    /// Fail every read whose path contains this substring.
    fail_reads_matching: Option<String>,
    /// Seeded chaos: (seed, percent) — each mutation derives a
    /// deterministic fault with the given probability.
    seeded: Option<(u64, u32)>,
    /// Operations seen so far (the chaos stream's position).
    ops: u64,
    /// Faults actually injected.
    injected: u64,
}

/// Shared handle steering a [`FaultyIo`]. Clone it before handing the
/// io to [`crate::ResultStore::open_with_io`] so the test keeps a
/// control channel.
#[derive(Clone, Debug, Default)]
pub struct FaultControl(Arc<Mutex<State>>);

impl FaultControl {
    /// A control with no faults armed.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms a one-shot torn append: only `keep` bytes of the payload
    /// reach the file, then the call errors.
    pub fn truncate_next_append(&self, keep: usize) {
        self.lock().truncate_next_append = Some(keep);
    }

    /// Arms a one-shot torn snapshot write (compact/gc temporary).
    pub fn truncate_next_write(&self, keep: usize) {
        self.lock().truncate_next_write = Some(keep);
    }

    /// Arms a one-shot rename failure.
    pub fn fail_next_rename(&self) {
        self.lock().fail_next_rename = true;
    }

    /// Fails every read whose path contains `needle` (until cleared).
    pub fn fail_reads_matching(&self, needle: &str) {
        self.lock().fail_reads_matching = Some(needle.to_owned());
    }

    /// Enables seeded chaos: each mutation faults with probability
    /// `percent`/100, deterministically derived from `seed` and the
    /// operation index.
    pub fn seed(&self, seed: u64, percent: u32) {
        self.lock().seeded = Some((seed, percent));
    }

    /// Disarms every fault.
    pub fn clear(&self) {
        let mut s = self.lock();
        let ops = s.ops;
        let injected = s.injected;
        *s = State::default();
        s.ops = ops;
        s.injected = injected;
    }

    /// How many faults have actually fired.
    pub fn injected(&self) -> u64 {
        self.lock().injected
    }
}

/// SplitMix64: a tiny, high-quality deterministic mixer.
fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed
        .wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn injected_err(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

/// What one append should do, decided under the control lock.
enum AppendPlan {
    Clean,
    Torn(usize),
    Fail,
}

/// A [`StoreIo`] that injects the faults its [`FaultControl`] arms and
/// delegates everything else to [`RealIo`].
#[derive(Debug)]
pub struct FaultyIo {
    real: RealIo,
    ctl: FaultControl,
}

impl FaultyIo {
    /// Wraps [`RealIo`] with the given control handle.
    pub fn new(ctl: FaultControl) -> Self {
        Self { real: RealIo, ctl }
    }
}

impl StoreIo for FaultyIo {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let fail = {
            let mut s = self.ctl.lock();
            s.ops += 1;
            let fail = s
                .fail_reads_matching
                .as_deref()
                .is_some_and(|needle| path.to_string_lossy().contains(needle));
            if fail {
                s.injected += 1;
            }
            fail
        };
        if fail {
            return Err(injected_err("read error"));
        }
        self.real.read_to_string(path)
    }

    fn append(&self, path: &Path, bytes: &[u8], sync: bool) -> io::Result<()> {
        let plan = {
            let mut s = self.ctl.lock();
            s.ops += 1;
            if let Some(keep) = s.truncate_next_append.take() {
                s.injected += 1;
                AppendPlan::Torn(keep)
            } else if let Some((seed, percent)) = s.seeded {
                let r = mix(seed, s.ops);
                if r % 100 < u64::from(percent) {
                    s.injected += 1;
                    if (r >> 8) % 2 == 0 {
                        AppendPlan::Fail
                    } else {
                        AppendPlan::Torn((r >> 16) as usize % (bytes.len() + 1))
                    }
                } else {
                    AppendPlan::Clean
                }
            } else {
                AppendPlan::Clean
            }
        };
        match plan {
            AppendPlan::Clean => self.real.append(path, bytes, sync),
            AppendPlan::Fail => Err(injected_err("append refused")),
            AppendPlan::Torn(keep) => {
                let keep = keep.min(bytes.len());
                self.real.append(path, &bytes[..keep], sync)?;
                Err(injected_err("torn append"))
            }
        }
    }

    fn write_synced(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let torn = {
            let mut s = self.ctl.lock();
            s.ops += 1;
            let torn = s.truncate_next_write.take();
            if torn.is_some() {
                s.injected += 1;
            }
            torn
        };
        match torn {
            None => self.real.write_synced(path, bytes),
            Some(keep) => {
                let keep = keep.min(bytes.len());
                self.real.write_synced(path, &bytes[..keep])?;
                Err(injected_err("torn snapshot write"))
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let fail = {
            let mut s = self.ctl.lock();
            s.ops += 1;
            let fail = s.fail_next_rename;
            s.fail_next_rename = false;
            if fail {
                s.injected += 1;
            }
            fail
        };
        if fail {
            return Err(injected_err("rename refused"));
        }
        self.real.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.ctl.lock().ops += 1;
        self.real.remove_file(path)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        self.ctl.lock().ops += 1;
        self.real.len(path)
    }
}
