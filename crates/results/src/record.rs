//! The stored form of one job result: a flat JSON object that both the
//! result store (one per line) and the harness's per-job JSON output
//! (one per array element) use, so a store line *is* a report record.
//!
//! A record carries everything needed to rebuild the
//! [`MachineResult`] a report renderer consumes — cycles, per-core
//! pipeline statistics, and the full memory-system counter set — plus
//! the job's fingerprint and wall-clock. Reconstruction is strict: a
//! record missing fields, or one whose workload/scheme do not match the
//! job being looked up, fails with a message and the runner falls back
//! to re-simulating (a corrupt store heals itself at the cost of one
//! cache miss).

use crate::fingerprint::FORMAT_VERSION;
use ghostminion::{MachineResult, MemStats};
use gm_sim::CoreStats;
use gm_stats::Json;

/// Builds the JSON record for one completed job.
///
/// `scheme_label` is the experiment's column label (e.g. `"2048B"` in
/// Fig. 11); `result.scheme_name` is the scheme's legend name. Both are
/// stored: the label keys merge reconstruction, the name is validated on
/// cache hits.
pub fn job_record(
    workload: &str,
    scheme_label: &str,
    result: &MachineResult,
    wall_us: u64,
    fingerprint: &str,
) -> Json {
    let mut counters = Json::object();
    for (name, value) in result.mem_stats.iter() {
        counters.set(name, value);
    }
    let mut cores = Vec::with_capacity(result.core_stats.len());
    for s in &result.core_stats {
        let mut core = Json::object();
        core.set("cycles", s.cycles)
            .set("committed", s.committed)
            .set("fetched", s.fetched)
            .set("squashed", s.squashed)
            .set("mispredicts", s.mispredicts)
            .set("loads_committed", s.loads_committed)
            .set("stores_committed", s.stores_committed)
            .set("load_forwards", s.load_forwards)
            .set("stt_delays", s.stt_delays)
            .set("strict_fu_delays", s.strict_fu_delays)
            .set("load_replays", s.load_replays)
            .set("load_retries", s.load_retries);
        cores.push(core);
    }
    let mut j = Json::object();
    j.set("v", FORMAT_VERSION)
        .set("workload", workload)
        .set("scheme", scheme_label)
        .set("scheme_name", result.scheme_name)
        .set("threads", result.threads)
        .set("cycles", result.cycles)
        .set("committed", result.committed())
        .set("wall_us", wall_us)
        .set("fingerprint", fingerprint)
        .set("counters", counters)
        .set("cores", Json::Array(cores));
    j
}

fn field_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("record field {key:?} missing or not a u64"))
}

fn core_stats_from(j: &Json) -> Result<CoreStats, String> {
    // Exhaustive struct literal: adding a field to CoreStats fails to
    // compile here, forcing the record schema (and FORMAT_VERSION) to be
    // updated with it.
    Ok(CoreStats {
        cycles: field_u64(j, "cycles")?,
        committed: field_u64(j, "committed")?,
        fetched: field_u64(j, "fetched")?,
        squashed: field_u64(j, "squashed")?,
        mispredicts: field_u64(j, "mispredicts")?,
        loads_committed: field_u64(j, "loads_committed")?,
        stores_committed: field_u64(j, "stores_committed")?,
        load_forwards: field_u64(j, "load_forwards")?,
        stt_delays: field_u64(j, "stt_delays")?,
        strict_fu_delays: field_u64(j, "strict_fu_delays")?,
        load_replays: field_u64(j, "load_replays")?,
        load_retries: field_u64(j, "load_retries")?,
    })
}

/// Rebuilds a [`MachineResult`] from a record, validating that it
/// belongs to (`workload`, `scheme_name`). The returned result uses the
/// caller's `scheme_name` (a `&'static str` from the live [`ghostminion::Scheme`]),
/// so a reconstructed result is indistinguishable from a fresh one.
pub fn result_from_record(
    record: &Json,
    workload: &str,
    scheme_name: &'static str,
) -> Result<MachineResult, String> {
    if field_u64(record, "v")? != FORMAT_VERSION {
        return Err(format!(
            "record format v{} (this binary writes v{FORMAT_VERSION})",
            field_u64(record, "v")?
        ));
    }
    let rec_workload = record
        .get("workload")
        .and_then(Json::as_str)
        .ok_or("record has no workload")?;
    if rec_workload != workload {
        return Err(format!(
            "record is for workload {rec_workload:?}, not {workload:?}"
        ));
    }
    let rec_scheme = record
        .get("scheme_name")
        .and_then(Json::as_str)
        .ok_or("record has no scheme_name")?;
    if rec_scheme != scheme_name {
        return Err(format!(
            "record is for scheme {rec_scheme:?}, not {scheme_name:?}"
        ));
    }
    let threads = field_u64(record, "threads")? as usize;
    let cores = record
        .get("cores")
        .and_then(Json::as_array)
        .ok_or("record has no cores array")?;
    if cores.len() != threads {
        return Err(format!(
            "{} core entries for {threads} threads",
            cores.len()
        ));
    }
    let core_stats = cores
        .iter()
        .map(core_stats_from)
        .collect::<Result<Vec<_>, _>>()?;
    let mut mem_stats = MemStats::new();
    for (name, value) in record
        .get("counters")
        .and_then(Json::as_object)
        .ok_or("record has no counters object")?
    {
        mem_stats.add(
            name,
            value
                .as_u64()
                .ok_or_else(|| format!("counter {name:?} is not a u64"))?,
        );
    }
    Ok(MachineResult {
        cycles: field_u64(record, "cycles")?,
        core_stats,
        mem_stats,
        scheme_name,
        threads,
    })
}

/// Shape-checks a record without reconstructing a result from it:
/// format version, identity fields, well-formed fingerprint, complete
/// per-core statistics consistent with `threads`, and all-integer
/// counters. Unlike [`result_from_record`] it needs no live
/// [`ghostminion::Scheme`] to compare against, so `gm-run store
/// --verify` can run it over every record the store holds — including
/// records of schemes or workloads the current registry no longer
/// produces.
pub fn validate_record(record: &Json) -> Result<(), String> {
    let v = field_u64(record, "v")?;
    if v != FORMAT_VERSION {
        return Err(format!(
            "record format v{v} (this binary writes v{FORMAT_VERSION})"
        ));
    }
    for key in ["workload", "scheme", "scheme_name"] {
        record
            .get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record field {key:?} missing or not a string"))?;
    }
    for key in ["cycles", "committed", "wall_us"] {
        field_u64(record, key)?;
    }
    let fp = record_fingerprint(record)?;
    if fp.len() != 64 || !fp.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
        return Err(format!("fingerprint {fp:?} is not 64 lowercase hex digits"));
    }
    let threads = field_u64(record, "threads")? as usize;
    let cores = record
        .get("cores")
        .and_then(Json::as_array)
        .ok_or("record has no cores array")?;
    if cores.len() != threads {
        return Err(format!(
            "{} core entries for {threads} threads",
            cores.len()
        ));
    }
    for core in cores {
        core_stats_from(core)?;
    }
    for (name, value) in record
        .get("counters")
        .and_then(Json::as_object)
        .ok_or("record has no counters object")?
    {
        value
            .as_u64()
            .ok_or_else(|| format!("counter {name:?} is not a u64"))?;
    }
    Ok(())
}

/// The stored wall-clock of a record, in microseconds.
pub fn record_wall_us(record: &Json) -> Result<u64, String> {
    field_u64(record, "wall_us")
}

/// The fingerprint a record was stored under.
pub fn record_fingerprint(record: &Json) -> Result<&str, String> {
    record
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or_else(|| "record has no fingerprint".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostminion::machine::run_single;
    use ghostminion::{Scheme, SystemConfig};
    use gm_isa::{Asm, Reg};

    fn small_result() -> MachineResult {
        // A real (tiny) simulation so counters and core stats are
        // populated the way production records are.
        let mut a = Asm::new("record-test");
        let (cnt, acc) = (Reg::x(1), Reg::x(2));
        a.li(cnt, 5);
        a.li(acc, 0);
        let top = a.here();
        a.addi(acc, acc, 1);
        a.addi(cnt, cnt, -1);
        a.bne(cnt, Reg::ZERO, top);
        a.halt();
        run_single(Scheme::ghost_minion(), SystemConfig::tiny(), a.assemble())
    }

    #[test]
    fn record_round_trips_machine_results() {
        let r = small_result();
        let rec = job_record("record-test", "GhostMinion", &r, 1234, "feed");
        let back = result_from_record(&rec, "record-test", "GhostMinion").unwrap();
        // MachineResult has no PartialEq; its derived Debug form covers
        // every field.
        assert_eq!(format!("{back:?}"), format!("{r:?}"));
        assert_eq!(record_wall_us(&rec).unwrap(), 1234);
        assert_eq!(record_fingerprint(&rec).unwrap(), "feed");
    }

    #[test]
    fn record_survives_a_render_parse_cycle() {
        let r = small_result();
        let rec = job_record("record-test", "GhostMinion", &r, 7, "00ff");
        let parsed = Json::parse(&rec.render()).unwrap();
        let back = result_from_record(&parsed, "record-test", "GhostMinion").unwrap();
        assert_eq!(format!("{back:?}"), format!("{r:?}"));
        assert_eq!(parsed.render(), rec.render());
    }

    #[test]
    fn reconstruction_validates_identity_and_shape() {
        let r = small_result();
        let rec = job_record("record-test", "GhostMinion", &r, 0, "f");
        assert!(result_from_record(&rec, "other", "GhostMinion")
            .unwrap_err()
            .contains("workload"));
        assert!(result_from_record(&rec, "record-test", "Unsafe")
            .unwrap_err()
            .contains("scheme"));
        let mut wrong_v = rec.clone();
        wrong_v.set("v", 999u64);
        assert!(result_from_record(&wrong_v, "record-test", "GhostMinion")
            .unwrap_err()
            .contains("format"));
        assert!(result_from_record(&Json::object(), "record-test", "GhostMinion").is_err());
    }
}
