use ghostminion::{Machine, Scheme, SystemConfig};
use gm_workloads::{spec2006_analogs, Scale};
use std::time::Instant;

fn main() {
    let cfg = SystemConfig::micro2021();
    for w in spec2006_analogs(Scale::Test) {
        let t0 = Instant::now();
        let mut m = Machine::new(Scheme::unsafe_baseline(), cfg, vec![w.program.clone()]);
        let r = m.run(50_000_000);
        let dt = t0.elapsed();
        let t1 = Instant::now();
        let mut mg = Machine::new(Scheme::ghost_minion(), cfg, vec![w.program]);
        let rg = mg.run(50_000_000);
        let dtg = t1.elapsed();
        println!(
            "{:12} base: {:9} cyc {:8} inst ipc {:.2} ({:5.0}ms) | GM: {:9} cyc ratio {:.3} ({:5.0}ms)",
            w.name, r.cycles, r.committed(), r.core_stats[0].ipc(), dt.as_millis(),
            rg.cycles, rg.cycles as f64 / r.cycles as f64, dtg.as_millis()
        );
    }
}
