//! Criterion benches: scaled-down versions of each figure's sweep, so
//! `cargo bench` exercises every experiment path with stable timing.
//! The full paper-shaped tables come from the `fig*` binaries; these
//! benches track the simulator's own performance per experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use ghostminion::{GhostMinionConfig, Scheme};
use gm_bench::{run_parsec, run_workload};
use gm_workloads::{parsec_analogs, spec2006_analogs, spec2017_analogs, Scale};

fn pick(names: &[&str], scale: Scale) -> Vec<gm_workloads::Workload> {
    spec2006_analogs(scale)
        .into_iter()
        .filter(|w| names.contains(&w.name))
        .collect()
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    for w in pick(&["gamess", "hmmer", "mcf"], Scale::Test) {
        for scheme in [Scheme::unsafe_baseline(), Scheme::ghost_minion()] {
            g.bench_function(format!("{}/{}", w.name, scheme.name()), |b| {
                b.iter(|| run_workload(scheme, &w).cycles)
            });
        }
    }
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    let parsec = parsec_analogs(Scale::Test);
    let w = parsec
        .iter()
        .find(|p| p.name == "swaptions")
        .expect("present");
    for scheme in [Scheme::unsafe_baseline(), Scheme::ghost_minion()] {
        g.bench_function(format!("swaptions/{}", scheme.name()), |b| {
            b.iter(|| run_parsec(scheme, w).cycles)
        });
    }
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    let w = spec2017_analogs(Scale::Test)
        .into_iter()
        .find(|w| w.name == "exchange2")
        .expect("present");
    for scheme in [Scheme::unsafe_baseline(), Scheme::ghost_minion()] {
        g.bench_function(format!("exchange2/{}", scheme.name()), |b| {
            b.iter(|| run_workload(scheme, &w).cycles)
        });
    }
    g.finish();
}

fn bench_fig9_breakdown(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    let w = pick(&["povray"], Scale::Test).remove(0);
    for scheme in [
        Scheme::dminion_timeless(),
        Scheme::dminion_only(),
        Scheme::ghost_minion(),
    ] {
        g.bench_function(format!("povray/{}", scheme.name()), |b| {
            b.iter(|| run_workload(scheme, &w).cycles)
        });
    }
    g.finish();
}

fn bench_fig10_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    let w = pick(&["omnetpp"], Scale::Test).remove(0);
    g.bench_function("omnetpp/event-counting", |b| {
        b.iter(|| {
            let r = run_workload(Scheme::ghost_minion(), &w);
            (
                r.mem_stats.get("timeguards"),
                r.mem_stats.get("timeleaps"),
                r.mem_stats.get("leapfrogs"),
            )
        })
    });
    g.finish();
}

fn bench_fig11_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    let w = pick(&["povray"], Scale::Test).remove(0);
    for bytes in [2048u64, 128] {
        let scheme = Scheme::ghost_minion_with(GhostMinionConfig {
            minion_bytes: bytes,
            ..GhostMinionConfig::default()
        });
        g.bench_function(format!("povray/{bytes}B"), |b| {
            b.iter(|| run_workload(scheme, &w).cycles)
        });
    }
    g.finish();
}

fn bench_minion_micro(c: &mut Criterion) {
    use ghostminion::GhostMinionCache;
    let mut g = c.benchmark_group("minion-micro");
    g.bench_function("fill+read+wipe", |b| {
        b.iter(|| {
            let mut m = GhostMinionCache::new(2048, 2, true);
            for i in 0..64u64 {
                m.fill(0x1000 + i * 64, i);
            }
            let mut hits = 0;
            for i in 0..64u64 {
                if matches!(
                    m.read(0x1000 + i * 64, 100),
                    ghostminion::minion::MinionRead::Hit { .. }
                ) {
                    hits += 1;
                }
            }
            m.wipe_above(32);
            hits
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9_breakdown,
    bench_fig10_events,
    bench_fig11_sizes,
    bench_minion_micro
);
criterion_main!(benches);
