//! Criterion benches, driven by the experiment registry: every
//! registered experiment automatically gains a timing bench, so a new
//! registry entry shows up in `cargo bench` without touching this file.
//! The full paper-shaped tables come from `gm-run` and the `fig*`
//! binaries; these benches track the simulator's own performance per
//! experiment.
//!
//! For sweep experiments the bench runs the suite's first workload unit
//! under (up to) the first two schemes of the experiment's own lineup —
//! a representative, stable slice rather than the whole grid. Non-sweep
//! experiments bench their complete `run_experiment` path. Two
//! micro-benches cover the hot non-simulation paths: the GhostMinion
//! cache itself, and `gm_results` job fingerprinting (the store's
//! per-job overhead).

use criterion::{criterion_group, criterion_main, Criterion};
use gm_bench::experiment::{registry, ExperimentKind};
use gm_bench::report::run_experiment;
use gm_bench::{run_unit, Runner};
use gm_workloads::Scale;

fn bench_registry(c: &mut Criterion) {
    for exp in registry() {
        let mut g = c.benchmark_group(exp.name);
        g.sample_size(10);
        match &exp.kind {
            ExperimentKind::Sweep(sweep) => {
                let set = sweep.workload_set(Scale::Test);
                let unit = set.units.first().expect("suite has workloads").clone();
                for col in sweep.schemes.iter().take(2) {
                    g.bench_function(format!("{}/{}", unit.name, col.label), |b| {
                        b.iter(|| run_unit(col.scheme, &unit, sweep.config).cycles)
                    });
                }
            }
            ExperimentKind::Security | ExperimentKind::Table1 => {
                let runner = Runner::new(1);
                g.bench_function("run_experiment", |b| {
                    b.iter(|| {
                        run_experiment(&runner, &exp, Scale::Test, None, None)
                            .expect("storeless runs cannot fail")
                            .table
                            .len()
                    })
                });
            }
        }
        g.finish();
    }
}

fn bench_minion_micro(c: &mut Criterion) {
    use ghostminion::GhostMinionCache;
    let mut g = c.benchmark_group("minion-micro");
    g.bench_function("fill+read+wipe", |b| {
        b.iter(|| {
            let mut m = GhostMinionCache::new(2048, 2, true);
            for i in 0..64u64 {
                m.fill(0x1000 + i * 64, i);
            }
            let mut hits = 0;
            for i in 0..64u64 {
                if matches!(
                    m.read(0x1000 + i * 64, 100),
                    ghostminion::minion::MinionRead::Hit { .. }
                ) {
                    hits += 1;
                }
            }
            m.wipe_above(32);
            hits
        })
    });
    g.finish();
}

fn bench_fingerprint(c: &mut Criterion) {
    use ghostminion::Scheme;
    let mut g = c.benchmark_group("results-micro");
    let exp = registry().into_iter().next().expect("registry non-empty");
    let ExperimentKind::Sweep(sweep) = exp.kind else {
        panic!("first experiment is a sweep");
    };
    let unit = sweep.workload_set(Scale::Test).units.remove(0);
    g.bench_function(format!("fingerprint/{}", unit.name), |b| {
        b.iter(|| {
            gm_results::job_fingerprint(&unit, &Scheme::ghost_minion(), Scale::Test, &sweep.config)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_registry,
    bench_minion_micro,
    bench_fingerprint
);
criterion_main!(benches);
