//! Criterion benches: scaled-down versions of each figure's sweep, so
//! `cargo bench` exercises every experiment path with stable timing.
//! The full paper-shaped tables come from `gm-run` and the `fig*`
//! binaries; these benches track the simulator's own performance per
//! experiment.
//!
//! Like the binaries, the benches are thin clients of the harness: they
//! pull workload units from `WorkloadSet` and run them through
//! `gm_bench::run_unit` with the Table 1 configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use ghostminion::{GhostMinionConfig, Scheme, SystemConfig};
use gm_bench::run_unit;
use gm_workloads::{Scale, Suite, WorkloadSet, WorkloadUnit};

/// The named units of a suite at test scale.
fn units(suite: Suite, names: &[&str]) -> Vec<WorkloadUnit> {
    let mut set = WorkloadSet::new(suite, Scale::Test);
    set.retain_names(names);
    assert_eq!(set.len(), names.len(), "missing workload in {suite:?}");
    set.units
}

fn cfg() -> SystemConfig {
    SystemConfig::micro2021()
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    for w in units(Suite::Spec2006, &["gamess", "hmmer", "mcf"]) {
        for scheme in [Scheme::unsafe_baseline(), Scheme::ghost_minion()] {
            g.bench_function(format!("{}/{}", w.name, scheme.name()), |b| {
                b.iter(|| run_unit(scheme, &w, cfg()).cycles)
            });
        }
    }
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    let w = units(Suite::Parsec, &["swaptions"]).remove(0);
    for scheme in [Scheme::unsafe_baseline(), Scheme::ghost_minion()] {
        g.bench_function(format!("swaptions/{}", scheme.name()), |b| {
            b.iter(|| run_unit(scheme, &w, cfg()).cycles)
        });
    }
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    let w = units(Suite::Spec2017, &["exchange2"]).remove(0);
    for scheme in [Scheme::unsafe_baseline(), Scheme::ghost_minion()] {
        g.bench_function(format!("exchange2/{}", scheme.name()), |b| {
            b.iter(|| run_unit(scheme, &w, cfg()).cycles)
        });
    }
    g.finish();
}

fn bench_fig9_breakdown(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    let w = units(Suite::Spec2006, &["povray"]).remove(0);
    for scheme in [
        Scheme::dminion_timeless(),
        Scheme::dminion_only(),
        Scheme::ghost_minion(),
    ] {
        g.bench_function(format!("povray/{}", scheme.name()), |b| {
            b.iter(|| run_unit(scheme, &w, cfg()).cycles)
        });
    }
    g.finish();
}

fn bench_fig10_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    let w = units(Suite::Spec2006, &["omnetpp"]).remove(0);
    g.bench_function("omnetpp/event-counting", |b| {
        b.iter(|| {
            let r = run_unit(Scheme::ghost_minion(), &w, cfg());
            (
                r.mem_stats.get("timeguards"),
                r.mem_stats.get("timeleaps"),
                r.mem_stats.get("leapfrogs"),
            )
        })
    });
    g.finish();
}

fn bench_fig11_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    let w = units(Suite::Spec2006, &["povray"]).remove(0);
    for bytes in [2048u64, 128] {
        let scheme = Scheme::ghost_minion_with(GhostMinionConfig {
            minion_bytes: bytes,
            ..GhostMinionConfig::default()
        });
        g.bench_function(format!("povray/{bytes}B"), |b| {
            b.iter(|| run_unit(scheme, &w, cfg()).cycles)
        });
    }
    g.finish();
}

fn bench_minion_micro(c: &mut Criterion) {
    use ghostminion::GhostMinionCache;
    let mut g = c.benchmark_group("minion-micro");
    g.bench_function("fill+read+wipe", |b| {
        b.iter(|| {
            let mut m = GhostMinionCache::new(2048, 2, true);
            for i in 0..64u64 {
                m.fill(0x1000 + i * 64, i);
            }
            let mut hits = 0;
            for i in 0..64u64 {
                if matches!(
                    m.read(0x1000 + i * 64, 100),
                    ghostminion::minion::MinionRead::Hit { .. }
                ) {
                    hits += 1;
                }
            }
            m.wipe_above(32);
            hits
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9_breakdown,
    bench_fig10_events,
    bench_fig11_sizes,
    bench_minion_micro
);
criterion_main!(benches);
