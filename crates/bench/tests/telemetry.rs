//! Integration tests for `--telemetry` JSON-lines span events: every
//! emitted line must round-trip through the strict `gm_stats::Json`
//! parser, spans must nest and balance, and the event *set* must be
//! independent of the worker count (`--jobs 1` vs `--jobs 4`).

use ghostminion::{Scheme, SystemConfig};
use gm_bench::experiment::{Report, SchemeCol, Sweep};
use gm_bench::telemetry::{self, Telemetry};
use gm_bench::{FaultPlan, Runner, Shard};
use gm_results::ResultStore;
use gm_stats::Json;
use gm_workloads::{Scale, Suite};
use std::path::PathBuf;

/// A unique scratch directory under the system temp dir, removed on
/// drop (the offline environment has no `tempfile` crate).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gm-telemetry-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir creates");
        Self(dir)
    }

    fn store(&self) -> ResultStore {
        ResultStore::open(self.0.join("store")).expect("scratch store opens")
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_str().expect("utf-8 path").to_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_sweep() -> Sweep {
    Sweep {
        suite: Suite::Spec2006,
        workloads: Some(vec!["gamess", "hmmer"]),
        schemes: vec![
            SchemeCol::named(Scheme::unsafe_baseline()),
            SchemeCol::named(Scheme::ghost_minion()),
        ],
        report: Report::NormalizedTime,
        config: SystemConfig::micro2021(),
    }
}

/// Emulates the driver's span bracketing around one sweep, the way
/// `gm-run --telemetry` runs it.
fn run_with_telemetry(path: &str, jobs: usize, store: &ResultStore, sweep: &Sweep) {
    run_faulted_with_telemetry(path, jobs, store, sweep, FaultPlan::none());
}

/// Same bracketing, with an injected [`FaultPlan`] on the runner.
fn run_faulted_with_telemetry(
    path: &str,
    jobs: usize,
    store: &ResultStore,
    sweep: &Sweep,
    faults: FaultPlan,
) {
    let tel = Telemetry::create(path).expect("telemetry file creates");
    tel.emit("run_start", |j| {
        j.set("program", "test").set("scale", "test");
    });
    tel.emit("experiment_start", |j| {
        j.set("experiment", "t");
    });
    let run = Runner::new(jobs)
        .with_faults(faults)
        .run_sweep_shard(
            sweep,
            Scale::Test,
            "t",
            Some(store),
            Shard::full(),
            Some(&tel),
        )
        .expect("sweep runs");
    tel.emit("experiment_end", |j| {
        j.set("experiment", "t")
            .set("jobs", run.owned_jobs())
            .set("hits", run.cache.hits)
            .set("misses", run.cache.misses)
            .set("sim_wall_us", run.sim_wall_us());
        if !run.failures.is_empty() {
            j.set("failed", run.failures.len());
        }
    });
    tel.emit("run_end", |j| {
        j.set("experiments", 1usize);
    });
    tel.finish().expect("telemetry flushes");
}

#[test]
fn every_line_parses_strictly_and_spans_balance() {
    let scratch = Scratch::new("balance");
    let store = scratch.store();
    let sweep = small_sweep();
    let path = scratch.path("events.jsonl");
    run_with_telemetry(&path, 2, &store, &sweep);
    let text = std::fs::read_to_string(&path).expect("telemetry file reads");

    // Each line individually round-trips through the strict parser.
    for line in text.lines() {
        let j = Json::parse(line).expect("line parses strictly");
        assert_eq!(j.render(), line, "render/parse round-trip is exact");
        assert!(
            j.get("event").and_then(Json::as_str).is_some(),
            "every line carries an event"
        );
    }
    // The validator agrees: balanced spans, 2 run + 2 experiment events
    // and a start/end pair per (2 workloads x 2 schemes) job.
    let s = telemetry::validate(&text).expect("stream validates");
    assert_eq!(s.events, 2 + 2 + 2 * 4);
    assert_eq!(s.experiments, 1);
    assert_eq!(s.jobs, 4);
    // A cold run simulated everything.
    assert!(
        text.contains("\"cached\":false"),
        "cold jobs are marked uncached"
    );
}

#[test]
fn injected_faults_emit_retry_and_fail_spans_the_validator_accepts() {
    let scratch = Scratch::new("faults");
    let store = scratch.store();
    let sweep = small_sweep();
    let path = scratch.path("faults.jsonl");
    // gamess/Unsafe: transient, heals on the retry (one job_retry, then
    // job_end). hmmer/GhostMinion: permanent, exhausts the default two
    // attempts (one job_retry, then job_fail).
    let plan = FaultPlan::none()
        .panic_once("gamess", "Unsafe")
        .panic_on("hmmer", "GhostMinion");
    run_faulted_with_telemetry(&path, 2, &store, &sweep, plan);
    let text = std::fs::read_to_string(&path).expect("telemetry file reads");
    let s = telemetry::validate(&text).expect("faulted stream still validates");
    assert_eq!(s.experiments, 1);
    assert_eq!(s.jobs, 3, "three jobs produced results");
    assert_eq!(s.failed, 1, "one job exhausted supervision");
    assert_eq!(s.retries, 2, "each faulted job retried once");
    assert!(text.contains("\"event\":\"job_fail\""));
    assert!(text.contains("\"error\":\"injected fault: panic\""));
    assert!(text.contains("\"failed\":1"), "experiment_end counts it");

    // The three surviving jobs are in the store; the failed one is not.
    let shard = store.load("t").expect("store loads");
    assert_eq!(shard.records.len(), 3);
}

#[test]
fn worker_count_does_not_change_the_event_set() {
    let scratch = Scratch::new("jobs");
    let store = scratch.store();
    let sweep = small_sweep();

    // Warm the store first, so both telemetry runs replay identical
    // records: cache hits report the stored wall-clock, which makes the
    // streams deterministic and byte-comparable as sets.
    Runner::new(2)
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .expect("warm-up runs");

    let p1 = scratch.path("jobs1.jsonl");
    let p4 = scratch.path("jobs4.jsonl");
    run_with_telemetry(&p1, 1, &store, &sweep);
    run_with_telemetry(&p4, 4, &store, &sweep);
    let t1 = std::fs::read_to_string(&p1).unwrap();
    let t4 = std::fs::read_to_string(&p4).unwrap();
    telemetry::validate(&t1).expect("jobs=1 stream validates");
    telemetry::validate(&t4).expect("jobs=4 stream validates");

    // Parallel workers may interleave job spans, but the event *set*
    // (every line, byte for byte) is identical.
    let mut lines1: Vec<&str> = t1.lines().collect();
    let mut lines4: Vec<&str> = t4.lines().collect();
    lines1.sort_unstable();
    lines4.sort_unstable();
    assert_eq!(
        lines1, lines4,
        "event set must not depend on the worker count"
    );
    assert!(t4.contains("\"cached\":true"), "warm jobs replay the store");
    assert!(
        t4.contains("\"sim_wall_us\":0"),
        "a fully warm run simulates nothing"
    );
}
