//! Integration tests for the experiment harness: the parallel runner
//! must be a pure wall-clock optimisation — tables, CSV and JSON have to
//! be bit-identical to the serial run.

use ghostminion::{Scheme, SystemConfig};
use gm_bench::experiment::{Report, SchemeCol, Sweep};
use gm_bench::report::{render_sweep, sweep_results_json};
use gm_bench::Runner;
use gm_workloads::{Scale, Suite};

fn small_sweep(suite: Suite, workloads: Vec<&'static str>) -> Sweep {
    Sweep {
        suite,
        workloads: Some(workloads),
        schemes: vec![
            SchemeCol::named(Scheme::unsafe_baseline()),
            SchemeCol::named(Scheme::ghost_minion()),
        ],
        report: Report::NormalizedTime,
        config: SystemConfig::micro2021(),
    }
}

#[test]
fn jobs4_is_bit_identical_to_jobs1() {
    let sweep = small_sweep(Suite::Spec2006, vec!["gamess", "hmmer"]);
    let serial = Runner::new(1).run_sweep(&sweep, Scale::Test);
    let parallel = Runner::new(4).run_sweep(&sweep, Scale::Test);

    let (_, t1, _) = render_sweep(&sweep, &serial);
    let (_, t4, _) = render_sweep(&sweep, &parallel);
    assert_eq!(t1.render(), t4.render(), "table must not depend on --jobs");
    assert_eq!(t1.to_csv(), t4.to_csv(), "CSV must not depend on --jobs");
    assert_eq!(
        sweep_results_json(&sweep, &serial).render(),
        sweep_results_json(&sweep, &parallel).render(),
        "JSON must not depend on --jobs"
    );
}

#[test]
fn normalized_sweep_has_rows_plus_geomean() {
    let sweep = small_sweep(Suite::Spec2006, vec!["gamess", "hmmer"]);
    let res = Runner::new(2).run_sweep(&sweep, Scale::Test);
    let (_, table, _) = render_sweep(&sweep, &res);
    assert_eq!(table.len(), 3, "two workloads + geomean");
    let csv = table.to_csv();
    assert!(csv.starts_with("workload,GhostMinion"));
    assert!(csv.contains("geomean"));
}

#[test]
fn the_same_sweep_loop_handles_multithreaded_units() {
    // Fig. 7's 4-thread Parsec units flow through the identical
    // (workload × scheme) expansion — no private sweep loop.
    let sweep = small_sweep(Suite::Parsec, vec!["swaptions"]);
    let res = Runner::new(2).run_sweep(&sweep, Scale::Test);
    assert_eq!(res.rows.len(), 1);
    assert!(res.rows[0].iter().all(|r| r.threads == 4));
    let (_, table, _) = render_sweep(&sweep, &res);
    assert_eq!(table.len(), 2, "one workload + geomean");
}

#[test]
fn sweep_json_carries_per_job_metadata() {
    let sweep = small_sweep(Suite::Spec2006, vec!["gamess"]);
    let res = Runner::new(1).run_sweep(&sweep, Scale::Test);
    let json = sweep_results_json(&sweep, &res).render();
    for field in [
        "\"workload\":\"gamess\"",
        "\"scheme\":\"Unsafe\"",
        "\"scheme\":\"GhostMinion\"",
        "\"threads\":1",
        "\"cycles\":",
        "\"committed\":",
        "\"counters\":{",
    ] {
        assert!(json.contains(field), "{field} missing from {json}");
    }
}
