//! Integration tests for the experiment harness: the parallel runner
//! must be a pure wall-clock optimisation (tables, CSV and JSON
//! bit-identical to the serial run), a warm result store must eliminate
//! re-simulation entirely, and any `--shard K/N` split must merge back
//! into a report bit-identical to the unsharded `--jobs 1` run.

use ghostminion::{Scheme, SystemConfig};
use gm_bench::experiment::{self, apply_workload_filter, ExperimentKind, Report, SchemeCol, Sweep};
use gm_bench::merge::{merge_docs, shard_doc, shard_entry};
use gm_bench::report::{render_sweep, report_text, run_experiment, sweep_results_json};
use gm_bench::{FaultPlan, Runner, Shard};
use gm_results::ResultStore;
use gm_workloads::{Scale, Suite};
use proptest::prelude::*;
use std::path::PathBuf;

/// A unique scratch directory under the system temp dir, removed on
/// drop (the offline environment has no `tempfile` crate).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        Self(std::env::temp_dir().join(format!(
            "gm-harness-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        )))
    }

    fn store(&self) -> ResultStore {
        ResultStore::open(&self.0).expect("scratch store opens")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_sweep(suite: Suite, workloads: Vec<&'static str>) -> Sweep {
    Sweep {
        suite,
        workloads: Some(workloads),
        schemes: vec![
            SchemeCol::named(Scheme::unsafe_baseline()),
            SchemeCol::named(Scheme::ghost_minion()),
        ],
        report: Report::NormalizedTime,
        config: SystemConfig::micro2021(),
    }
}

#[test]
fn jobs4_is_bit_identical_to_jobs1() {
    let sweep = small_sweep(Suite::Spec2006, vec!["gamess", "hmmer"]);
    let serial = Runner::new(1).run_sweep(&sweep, Scale::Test);
    let parallel = Runner::new(4).run_sweep(&sweep, Scale::Test);

    let (_, t1, _) = render_sweep(&sweep, &serial);
    let (_, t4, _) = render_sweep(&sweep, &parallel);
    assert_eq!(t1.render(), t4.render(), "table must not depend on --jobs");
    assert_eq!(t1.to_csv(), t4.to_csv(), "CSV must not depend on --jobs");
}

#[test]
fn store_backed_json_is_bit_identical_across_worker_counts() {
    // Per-job JSON carries wall-clock, so byte-identity across runs holds
    // when both runs replay the same store (hits report the stored wall).
    let scratch = Scratch::new("jobs-json");
    let store = scratch.store();
    let sweep = small_sweep(Suite::Spec2006, vec!["gamess", "hmmer"]);
    let warm = Runner::new(2)
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    assert_eq!(warm.cache.misses, 4);

    let serial = Runner::new(1)
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    let parallel = Runner::new(4)
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    assert_eq!(
        sweep_results_json(&sweep, &serial).render(),
        sweep_results_json(&sweep, &parallel).render(),
        "store-backed JSON must not depend on --jobs"
    );
    assert_eq!(
        sweep_results_json(&sweep, &warm).render(),
        sweep_results_json(&sweep, &serial).render(),
        "cache hits must replay the original records bit for bit"
    );
}

#[test]
fn a_warm_store_eliminates_all_simulation() {
    let scratch = Scratch::new("warm");
    let store = scratch.store();
    let sweep = small_sweep(Suite::Spec2006, vec!["gamess", "hmmer"]);

    let cold = Runner::new(2)
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    assert_eq!((cold.cache.hits, cold.cache.misses), (0, 4));
    assert!(cold.sim_wall_us() > 0, "misses must record wall-clock");
    assert!(cold.slowest_sim(&sweep).is_some());

    let warm = Runner::new(2)
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    assert_eq!((warm.cache.hits, warm.cache.misses), (4, 0));
    assert_eq!(warm.sim_wall_us(), 0, "zero re-simulation on a warm store");
    assert!(warm.slowest_sim(&sweep).is_none());

    // The replayed grid renders the same report.
    let (_, cold_table, _) = render_sweep(&sweep, &cold.to_results());
    let (_, warm_table, _) = render_sweep(&sweep, &warm.to_results());
    assert_eq!(cold_table.render(), warm_table.render());
}

/// Satellite of the fault-tolerance PR: everything operational (retry
/// warnings, quarantine notes) goes to stderr, so the *rendered report*
/// of a run that recovered from a bit-rotten store line and a transient
/// panic is byte-identical to a clean run's.
#[test]
fn reports_stay_byte_identical_under_recoverable_faults() {
    let scratch = Scratch::new("recoverable");
    let store = scratch.store();
    let sweep = small_sweep(Suite::Spec2006, vec!["gamess", "hmmer"]);

    // Clean reference: a cold run that also warms the store.
    let clean = Runner::new(2)
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    let (clean_res, omitted) = clean.complete_results();
    assert!(omitted.is_empty(), "fault-free run omits nothing");
    let (pre, clean_table, post) = render_sweep(&sweep, &clean_res);
    assert!(pre.is_empty() && post.is_empty());

    // Bit-rot the gamess/Unsafe record: its checksum now fails, the line
    // is quarantined on load, and the job re-simulates — where an
    // injected transient panic makes the first attempt fail too.
    let path = store.path("t");
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let idx = lines
        .iter()
        .position(|l| l.contains("\"workload\":\"gamess\"") && l.contains("\"scheme\":\"Unsafe\""))
        .expect("store holds the gamess/Unsafe record");
    lines[idx] = lines[idx].replacen("\"cycles\":", "\"cycles\":1", 1);
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();

    let healed = Runner::new(2)
        .with_faults(FaultPlan::none().panic_once("gamess", "Unsafe"))
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    assert!(healed.failures.is_empty(), "retry healed the transient");
    assert_eq!(
        (healed.cache.hits, healed.cache.misses),
        (3, 1),
        "only the quarantined record re-simulates"
    );
    assert!(
        store.quarantine_path("t").exists(),
        "the rotten line is preserved in the quarantine sidecar"
    );

    let (healed_res, omitted) = healed.complete_results();
    assert!(omitted.is_empty());
    let (pre, healed_table, post) = render_sweep(&sweep, &healed_res);
    assert!(pre.is_empty() && post.is_empty(), "no stdout annotations");
    assert_eq!(
        clean_table.render(),
        healed_table.render(),
        "recovered report must be byte-identical"
    );
    assert_eq!(clean_table.to_csv(), healed_table.to_csv());

    // The re-simulated record superseded the rotten one: a further warm
    // run replays everything.
    let warm = Runner::new(2)
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    assert_eq!((warm.cache.hits, warm.cache.misses), (4, 0));
}

#[test]
fn a_config_change_invalidates_the_cache() {
    let scratch = Scratch::new("invalidate");
    let store = scratch.store();
    let mut sweep = small_sweep(Suite::Spec2006, vec!["gamess"]);
    Runner::new(1)
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    // Any behavioural knob flips the fingerprint; the warm store misses.
    sweep.config.core.rob_entries -= 1;
    let run = Runner::new(1)
        .run_sweep_shard(&sweep, Scale::Test, "t", Some(&store), Shard::full(), None)
        .unwrap();
    assert_eq!((run.cache.hits, run.cache.misses), (0, 2));
}

#[test]
fn the_same_sweep_loop_handles_multithreaded_units() {
    // Fig. 7's 4-thread Parsec units flow through the identical
    // (workload × scheme) expansion — no private sweep loop.
    let sweep = small_sweep(Suite::Parsec, vec!["swaptions"]);
    let res = Runner::new(2).run_sweep(&sweep, Scale::Test);
    assert_eq!(res.rows.len(), 1);
    assert!(res.rows[0].iter().all(|r| r.threads == 4));
    let (_, table, _) = render_sweep(&sweep, &res);
    assert_eq!(table.len(), 2, "one workload + geomean");
}

#[test]
fn normalized_sweep_has_rows_plus_geomean() {
    let sweep = small_sweep(Suite::Spec2006, vec!["gamess", "hmmer"]);
    let res = Runner::new(2).run_sweep(&sweep, Scale::Test);
    let (_, table, _) = render_sweep(&sweep, &res);
    assert_eq!(table.len(), 3, "two workloads + geomean");
    let csv = table.to_csv();
    assert!(csv.starts_with("workload,GhostMinion"));
    assert!(csv.contains("geomean"));
}

#[test]
fn sweep_json_carries_per_job_records() {
    let sweep = small_sweep(Suite::Spec2006, vec!["gamess"]);
    let run = Runner::new(1)
        .run_sweep_shard(&sweep, Scale::Test, "t", None, Shard::full(), None)
        .unwrap();
    let json = sweep_results_json(&sweep, &run).render();
    for field in [
        "\"workload\":\"gamess\"",
        "\"scheme\":\"Unsafe\"",
        "\"scheme\":\"GhostMinion\"",
        "\"threads\":1",
        "\"cycles\":",
        "\"committed\":",
        "\"wall_us\":",
        "\"fingerprint\":",
        "\"counters\":{",
        "\"cores\":[{",
    ] {
        assert!(json.contains(field), "{field} missing from {json}");
    }
}

#[test]
fn workload_filter_is_strict_and_intersects() {
    let mut experiments = vec![experiment::find("fig6").unwrap()];
    let err = apply_workload_filter(&mut experiments, &["not-a-workload".to_owned()]).unwrap_err();
    assert!(err.contains("unknown workload"), "{err}");

    apply_workload_filter(&mut experiments, &["hmmer".to_owned(), "gamess".to_owned()]).unwrap();
    let ExperimentKind::Sweep(sweep) = &experiments[0].kind else {
        panic!("fig6 is a sweep");
    };
    // Suite order, not request order.
    assert_eq!(
        sweep.workloads.as_deref(),
        Some(["gamess", "hmmer"].as_slice())
    );

    // Intersecting an existing filter narrows it.
    apply_workload_filter(&mut experiments, &["hmmer".to_owned(), "mcf".to_owned()]).unwrap();
    let ExperimentKind::Sweep(sweep) = &experiments[0].kind else {
        panic!("fig6 is a sweep");
    };
    assert_eq!(sweep.workloads.as_deref(), Some(["hmmer"].as_slice()));

    // Non-sweep-only selections reject the flag outright.
    let mut t1 = vec![experiment::find("table1").unwrap()];
    assert!(apply_workload_filter(&mut t1, &["gamess".to_owned()]).is_err());
}

/// One sharded end-to-end round at `n` shards for the scoped-down
/// `fu_order` registry experiment, against a shared warm store:
/// partition must be disjoint and covering, and the merged report must
/// be bit-identical to the unsharded `--jobs 1` run. (A warm
/// same-configuration store has no *historical* records, so this is the
/// round-robin path; the LPT path is covered by
/// `historical_costs_shard_consistently_against_one_store`.)
fn shard_round(n: u32, store: &ResultStore, reference: &(String, String)) {
    let mut experiments = vec![experiment::find("fu_order").unwrap()];
    apply_workload_filter(&mut experiments, &["gamess".to_owned(), "hmmer".to_owned()]).unwrap();
    let exp = &experiments[0];
    let ExperimentKind::Sweep(sweep) = &exp.kind else {
        panic!("fu_order is a sweep");
    };

    let mut docs = Vec::new();
    let mut owned_per_job: Vec<usize> = Vec::new();
    for k in 1..=n {
        let shard = Shard::new(k, n).unwrap();
        let run = Runner::new(1)
            .run_sweep_shard(sweep, Scale::Test, exp.name, Some(store), shard, None)
            .unwrap();
        assert_eq!(run.cache.misses, 0, "warm store: shards never simulate");
        // Flatten ownership in job order.
        let flat: Vec<bool> = run
            .rows
            .iter()
            .flat_map(|row| row.iter().map(Option::is_some))
            .collect();
        if owned_per_job.is_empty() {
            owned_per_job = vec![0; flat.len()];
        }
        for (slot, owned) in owned_per_job.iter_mut().zip(&flat) {
            *slot += usize::from(*owned);
        }
        docs.push(shard_doc(
            "gm-run",
            Scale::Test,
            shard,
            vec![shard_entry(exp, Scale::Test, &run, sweep)],
        ));
    }
    // Disjoint and covering: every job owned by exactly one shard.
    assert!(
        owned_per_job.iter().all(|&owners| owners == 1),
        "{n}-way partition must own every job exactly once: {owned_per_job:?}"
    );

    let merged = merge_docs(&docs, &Runner::new(1)).unwrap();
    assert_eq!(merged.outputs.len(), 1);
    let (mexp, mout) = &merged.outputs[0];
    assert_eq!(mexp.name, "fu_order");
    assert_eq!(
        report_text(mexp.title, mout),
        reference.0,
        "{n}-way merge must reproduce the unsharded report"
    );
    assert_eq!(
        mout.results.render(),
        reference.1,
        "{n}-way merge must reproduce the unsharded per-job JSON"
    );
}

/// Cost-aware sharding from *historical* records: a store warmed under
/// a different configuration (fingerprints invalidated, workload and
/// scheme labels intact — the "previous code version / cheaper scale"
/// workflow) predicts job costs, and only `gamess` is warmed, so
/// `hmmer`'s jobs are predicted at the mean (partial knowledge). The
/// shards run *sequentially against the same store directory*: the
/// partition must not shift when shard 1 appends its freshly simulated
/// records (cost inputs are historical records only, which a
/// current-configuration run never writes), and the merged report must
/// match the unsharded run.
#[test]
fn historical_costs_shard_consistently_against_one_store() {
    let scratch = Scratch::new("historical-cost");
    let store = scratch.store();
    let mut experiments = vec![experiment::find("fu_order").unwrap()];
    apply_workload_filter(&mut experiments, &["gamess".to_owned(), "hmmer".to_owned()]).unwrap();
    let exp = &experiments[0];
    let ExperimentKind::Sweep(sweep) = &exp.kind else {
        panic!("fu_order is a sweep");
    };
    // Reference (storeless — the report depends only on the simulation).
    let reference = report_text(
        exp.title,
        &run_experiment(&Runner::new(1), exp, Scale::Test, None, None).unwrap(),
    );
    // Warm the store under an *older* configuration: every record's
    // fingerprint misses the current jobs, so nothing is cached, but
    // the (workload, scheme) wall-clocks still predict costs.
    let mut old = sweep.clone();
    old.config.core.rob_entries -= 1;
    old.workloads = Some(vec!["gamess"]);
    Runner::new(1)
        .run_sweep_shard(
            &old,
            Scale::Test,
            exp.name,
            Some(&store),
            Shard::full(),
            None,
        )
        .unwrap();

    let mut docs = Vec::new();
    let mut owned_per_job: Vec<usize> = Vec::new();
    let mut misses = 0;
    for k in 1..=2u32 {
        let shard = Shard::new(k, 2).unwrap();
        let run = Runner::new(1)
            .run_sweep_shard(sweep, Scale::Test, exp.name, Some(&store), shard, None)
            .unwrap();
        misses += run.cache.misses;
        let flat: Vec<bool> = run
            .rows
            .iter()
            .flat_map(|row| row.iter().map(Option::is_some))
            .collect();
        if owned_per_job.is_empty() {
            owned_per_job = vec![0; flat.len()];
        }
        for (slot, owned) in owned_per_job.iter_mut().zip(&flat) {
            *slot += usize::from(*owned);
        }
        docs.push(shard_doc(
            "gm-run",
            Scale::Test,
            shard,
            vec![shard_entry(exp, Scale::Test, &run, sweep)],
        ));
    }
    assert!(
        owned_per_job.iter().all(|&owners| owners == 1),
        "historical-cost LPT split must own every job exactly once even \
         when shards run sequentially against one store: {owned_per_job:?}"
    );
    assert_eq!(
        misses,
        owned_per_job.len(),
        "history predicts costs but caches nothing — every job simulates"
    );
    let merged = merge_docs(&docs, &Runner::new(1)).unwrap();
    let (mexp, mout) = &merged.outputs[0];
    assert_eq!(report_text(mexp.title, mout), reference);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Satellite requirement: every K/N partition is disjoint, covers
    /// all jobs, and its merged report is bit-identical to the
    /// unsharded `--jobs 1` output.
    #[test]
    fn any_shard_split_merges_bit_identically(n in 1u32..=4) {
        let scratch = Scratch::new("shard-prop");
        let store = scratch.store();
        // Unsharded --jobs 1 reference against the same (cold) store.
        let mut experiments = vec![experiment::find("fu_order").unwrap()];
        apply_workload_filter(
            &mut experiments,
            &["gamess".to_owned(), "hmmer".to_owned()],
        )
        .unwrap();
        let exp = &experiments[0];
        let out = run_experiment(&Runner::new(1), exp, Scale::Test, Some(&store), None).unwrap();
        let reference = (report_text(exp.title, &out), out.results.render());
        shard_round(n, &store, &reference);
    }
}
