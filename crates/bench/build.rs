//! Captures the compiler version and target triple at build time so
//! `gm-run bench` can stamp them into snapshot JSON headers. A perf
//! baseline is only comparable to a fresh run from the same compiler
//! on the same machine; recording both lets `bench --check` warn when
//! a comparison crosses that line instead of failing mysteriously.

use std::env;
use std::process::Command;

fn main() {
    // Cargo sets RUSTC to the exact compiler driving this build.
    let rustc = env::var("RUSTC").unwrap_or_else(|_| "rustc".into());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into());
    println!("cargo:rustc-env=GM_RUSTC_VERSION={version}");

    let target = env::var("TARGET").unwrap_or_else(|_| "unknown".into());
    println!("cargo:rustc-env=GM_HOST_TRIPLE={target}");

    // Re-run only when the toolchain changes, not on every source edit.
    println!("cargo:rerun-if-env-changed=RUSTC");
    println!("cargo:rerun-if-env-changed=TARGET");
}
