//! The experiment harness behind every figure/table binary and the
//! Criterion benches.
//!
//! The subsystem is layered:
//!
//! * [`experiment`] — each paper figure/table as *data*: an
//!   [`experiment::Experiment`] names a workload suite, a
//!   scheme lineup, a machine configuration and a report rule, and the
//!   [`experiment::registry`] holds all ten of them;
//! * [`runner`] — expands a sweep into independent (workload × scheme)
//!   jobs and executes them on a scoped thread pool with deterministic
//!   result ordering; consults a [`gm_results::ResultStore`] before
//!   simulating (cache-aware re-runs), partitions the job list under
//!   a [`runner::Shard`], and supervises each job (panic isolation,
//!   wall-clock budget, bounded retry — see [`runner::Supervision`]);
//! * [`fault`] — deterministic job-level fault injection
//!   ([`fault::FaultPlan`], `--inject`) driving the supervision tests
//!   and CI smokes;
//! * [`report`] — turns raw [`MachineResult`]s into the figures' tables
//!   and structured JSON (per-job [`gm_results::record`] objects);
//! * [`merge`] — shard documents and the `gm-run merge` recombination,
//!   bit-identical to an unsharded run;
//! * [`telemetry`] — append-only JSON-lines span events (`--telemetry`)
//!   for the run, each experiment, and each job, plus the strict
//!   validator CI runs over emitted streams;
//! * [`cli`] — argument parsing plus the `main` bodies of the thin
//!   figure binaries and the `gm-run` driver.
//!
//! Every binary in `src/bin/` is a one-line client: it names its
//! registry entry and delegates to [`cli::figure_main`].

pub mod cli;
pub mod experiment;
pub mod fault;
pub mod merge;
pub mod report;
pub mod runner;
pub mod telemetry;

pub use experiment::{Experiment, ExperimentKind, Report, SchemeCol, Sweep};
pub use fault::{FaultKind, FaultPlan};
pub use runner::{CacheStats, FailureKind, Job, JobFailure, Runner, Shard, Supervision, SweepRun};
pub use telemetry::Telemetry;

use ghostminion::{Machine, MachineResult, Scheme, SystemConfig};
use gm_workloads::WorkloadUnit;

/// Runs one workload unit (any thread count) under `scheme`, with the
/// simulation deadline taken from `cfg.max_cycles` — the single knob for
/// deadlock detection.
pub fn run_unit(scheme: Scheme, unit: &WorkloadUnit, cfg: SystemConfig) -> MachineResult {
    let mut m = Machine::new(scheme, cfg, unit.programs.clone());
    m.run(cfg.max_cycles)
}
