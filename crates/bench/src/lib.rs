//! The experiment harness behind every figure/table binary and the
//! Criterion benches.
//!
//! The subsystem is layered:
//!
//! * [`experiment`] — each paper figure/table as *data*: an
//!   [`Experiment`](experiment::Experiment) names a workload suite, a
//!   scheme lineup, a machine configuration and a report rule, and the
//!   [`experiment::registry`] holds all ten of them;
//! * [`runner`] — expands a sweep into independent (workload × scheme)
//!   jobs and executes them on a scoped thread pool with deterministic
//!   result ordering;
//! * [`report`] — turns raw [`MachineResult`]s into the figures' tables
//!   and structured JSON;
//! * [`cli`] — argument parsing plus the `main` bodies of the thin
//!   figure binaries and the `gm-run` driver.
//!
//! Every binary in `src/bin/` is a one-line client: it names its
//! registry entry and delegates to [`cli::figure_main`].

pub mod cli;
pub mod experiment;
pub mod report;
pub mod runner;

pub use experiment::{Experiment, ExperimentKind, Report, SchemeCol, Sweep};
pub use runner::Runner;

use ghostminion::{Machine, MachineResult, Scheme, SystemConfig};
use gm_stats::Table;
use gm_workloads::WorkloadUnit;

/// Runs one workload unit (any thread count) under `scheme`, with the
/// simulation deadline taken from `cfg.max_cycles` — the single knob for
/// deadlock detection.
pub fn run_unit(scheme: Scheme, unit: &WorkloadUnit, cfg: SystemConfig) -> MachineResult {
    let mut m = Machine::new(scheme, cfg, unit.programs.clone());
    m.run(cfg.max_cycles)
}

/// Prints a table in both human and CSV form, the convention all
/// binaries follow.
pub fn emit(title: &str, table: &Table) {
    println!("== {title} ==\n");
    println!("{}", table.render());
    println!("-- csv --");
    println!("{}", table.to_csv());
}
