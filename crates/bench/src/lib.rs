//! Shared harness for the figure-regeneration binaries and Criterion
//! benches.
//!
//! Every binary follows the same pattern: build the workload set, run it
//! under the relevant schemes on the Table 1 machine, normalise against
//! the unsafe baseline, and print the same rows/series the paper's figure
//! plots (plus CSV for external plotting).

use ghostminion::{Machine, MachineResult, Scheme, SystemConfig};
use gm_stats::{geomean, Table};
use gm_workloads::{ParsecWorkload, Scale, Workload};

/// Upper bound for any single simulation (a run that exceeds this has
/// deadlocked).
pub const MAX_CYCLES: u64 = 2_000_000_000;

/// Runs one single-threaded workload under `scheme` on the Table 1
/// machine.
pub fn run_workload(scheme: Scheme, w: &Workload) -> MachineResult {
    let mut m = Machine::new(scheme, SystemConfig::micro2021(), vec![w.program.clone()]);
    m.run(MAX_CYCLES)
}

/// Runs a 4-thread Parsec workload under `scheme`.
pub fn run_parsec(scheme: Scheme, w: &ParsecWorkload) -> MachineResult {
    let mut m = Machine::new(scheme, SystemConfig::micro2021(), w.thread_programs.clone());
    m.run(MAX_CYCLES)
}

/// Chooses the workload scale from argv: `--bench` selects the longer
/// runs, anything else the quick ones. The figures' *shape* is stable
/// across scales; the longer runs tighten the numbers.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--bench" || a == "--full") {
        Scale::Bench
    } else {
        Scale::Test
    }
}

/// Normalised-execution-time sweep: one row per workload, one column per
/// scheme (the first scheme must be the baseline), plus a geomean row —
/// the format of Figures 6, 8 and 9.
pub fn normalized_sweep(
    workloads: &[Workload],
    schemes: &[Scheme],
    run: impl Fn(Scheme, &Workload) -> MachineResult,
) -> Table {
    assert!(!schemes.is_empty());
    let mut header = vec!["workload".to_owned()];
    header.extend(schemes.iter().skip(1).map(|s| s.name().to_owned()));
    let mut table = Table::new(header);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); schemes.len() - 1];
    for w in workloads {
        let base = run(schemes[0], w).cycles as f64;
        let mut row = Vec::new();
        for (i, s) in schemes.iter().skip(1).enumerate() {
            let cycles = run(*s, w).cycles as f64;
            let ratio = cycles / base;
            columns[i].push(ratio);
            row.push(ratio);
        }
        table.row_f64(w.name, &row);
    }
    let geo: Vec<f64> = columns
        .iter()
        .map(|c| geomean(c).expect("all ratios positive"))
        .collect();
    table.row_f64("geomean", &geo);
    table
}

/// Prints a table in both human and CSV form, the convention all
/// binaries follow.
pub fn emit(title: &str, table: &Table) {
    println!("== {title} ==\n");
    println!("{}", table.render());
    println!("-- csv --");
    println!("{}", table.to_csv());
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_workloads::spec2006_analogs;

    #[test]
    fn sweep_produces_normalized_rows_with_geomean() {
        let workloads: Vec<Workload> = spec2006_analogs(Scale::Test)
            .into_iter()
            .filter(|w| w.name == "gamess" || w.name == "hmmer")
            .collect();
        let schemes = [Scheme::unsafe_baseline(), Scheme::ghost_minion()];
        let t = normalized_sweep(&workloads, &schemes, run_workload);
        assert_eq!(t.len(), 3, "two workloads + geomean");
        let csv = t.to_csv();
        assert!(csv.starts_with("workload,GhostMinion"));
        assert!(csv.contains("geomean"));
    }
}
