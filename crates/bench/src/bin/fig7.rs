//! Regenerates Figure 7: 4-thread Parsec normalised execution time.
//!
//! Paper shape: GhostMinion ≈ 0% overhead; InvisiSpec variants the worst
//! (up to ≈2.4×), driven by commit-time coherence work.
//!
//! Thin client of the `fig7` registry entry — the same generalized
//! normalised sweep as Figures 6/8/9, just over 4-thread workload units.

fn main() {
    gm_bench::cli::figure_main("fig7");
}
