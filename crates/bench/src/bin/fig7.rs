//! Regenerates Figure 7: 4-thread Parsec normalised execution time.
//!
//! Paper shape: GhostMinion ≈ 0% overhead; InvisiSpec variants the worst
//! (up to ≈2.4×), driven by commit-time coherence work.

use ghostminion::Scheme;
use gm_bench::{emit, run_parsec, scale_from_args};
use gm_stats::{geomean, Table};
use gm_workloads::parsec_analogs;

fn main() {
    let workloads = parsec_analogs(scale_from_args());
    let schemes = Scheme::figure_lineup();
    let mut header = vec!["workload".to_owned()];
    header.extend(schemes.iter().skip(1).map(|s| s.name().to_owned()));
    let mut t = Table::new(header);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); schemes.len() - 1];
    for w in &workloads {
        let base = run_parsec(schemes[0], w).cycles as f64;
        let mut row = Vec::new();
        for (i, s) in schemes.iter().skip(1).enumerate() {
            let r = run_parsec(*s, w).cycles as f64 / base;
            cols[i].push(r);
            row.push(r);
        }
        t.row_f64(w.name, &row);
    }
    let geo: Vec<f64> = cols.iter().map(|c| geomean(c).unwrap()).collect();
    t.row_f64("geomean", &geo);
    emit("Figure 7: Parsec (4 threads) normalised execution time", &t);
}
