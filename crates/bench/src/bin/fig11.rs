//! Regenerates Figure 11: GhostMinion sizing sensitivity — 4 KiB down to
//! 128 B minions, plus a 128 B + asynchronous-reload column ("geo.
//! async." in the paper).
//!
//! Paper shape: 4 KiB ≈ 2 KiB ≈ 1 KiB; spikes appear at 512 B and below
//! as lines leave the minion before commit and must be re-fetched from
//! memory; asynchronous reload removes the spikes.
//!
//! Thin client of the `fig11` registry entry.

fn main() {
    gm_bench::cli::figure_main("fig11");
}
