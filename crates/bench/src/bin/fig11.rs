//! Regenerates Figure 11: GhostMinion sizing sensitivity — 4 KiB down to
//! 128 B minions, plus the asynchronous-reload geomean.
//!
//! Paper shape: 4 KiB ≈ 2 KiB ≈ 1 KiB; spikes appear at 512 B and below
//! as lines leave the minion before commit and must be re-fetched from
//! memory; asynchronous reload removes the spikes.

use ghostminion::{GhostMinionConfig, Scheme};
use gm_bench::{emit, run_workload, scale_from_args};
use gm_stats::{geomean, Table};
use gm_workloads::spec2006_analogs;

const SIZES: [u64; 6] = [4096, 2048, 1024, 512, 256, 128];

fn main() {
    let workloads = spec2006_analogs(scale_from_args());
    let mut header = vec!["workload".to_owned()];
    header.extend(SIZES.iter().map(|s| format!("{s}B")));
    let mut t = Table::new(header);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); SIZES.len()];
    let mut async_ratios: Vec<f64> = Vec::new();
    for w in &workloads {
        let base = run_workload(Scheme::unsafe_baseline(), w).cycles as f64;
        let mut row = Vec::new();
        for (i, &bytes) in SIZES.iter().enumerate() {
            let s = Scheme::ghost_minion_with(GhostMinionConfig {
                minion_bytes: bytes,
                ..GhostMinionConfig::default()
            });
            let r = run_workload(s, w).cycles as f64 / base;
            cols[i].push(r);
            row.push(r);
        }
        // Asynchronous reload at the smallest size, geomean-only as in
        // the paper ("geo. async.").
        let s = Scheme::ghost_minion_with(GhostMinionConfig {
            minion_bytes: 128,
            async_reload: true,
            ..GhostMinionConfig::default()
        });
        async_ratios.push(run_workload(s, w).cycles as f64 / base);
        t.row_f64(w.name, &row);
    }
    let geo: Vec<f64> = cols.iter().map(|c| geomean(c).unwrap()).collect();
    t.row_f64("geomean", &geo);
    emit("Figure 11: GhostMinion sizing sensitivity", &t);
    println!(
        "geo. async. (128B minion + asynchronous reload): {:.3}",
        geomean(&async_ratios).unwrap()
    );
}
