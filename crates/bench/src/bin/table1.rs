//! Regenerates Table 1: the simulated system configuration, as a
//! component/configuration table.
//!
//! Thin client of the `table1` registry entry (no simulation involved).

fn main() {
    gm_bench::cli::figure_main("table1");
}
