//! Regenerates Table 1: the simulated system configuration.

use ghostminion::SystemConfig;

fn main() {
    let cfg = SystemConfig::micro2021();
    let c = cfg.core;
    let h = cfg.hierarchy;
    println!("== Table 1: system experimental setup ==\n");
    println!("Core      {}-wide out-of-order, 2.0 GHz", c.fetch_width);
    println!(
        "Pipeline  {}-entry ROB, {}-entry IQ, {}-entry LQ, {}-entry SQ,",
        c.rob_entries, c.iq_entries, c.lq_entries, c.sq_entries
    );
    println!(
        "          {} Int / {} FP registers, {} Int ALUs, {} FP ALUs, {} Mult/Div ALUs",
        c.int_regs, c.fp_regs, c.int_alu, c.fp_alu, c.muldiv
    );
    println!(
        "Predictor tournament 2-bit, {}-entry local, {} global, {} choice, {} BTB, {} RAS",
        c.bpred.local_entries,
        c.bpred.global_entries,
        c.bpred.choice_entries,
        c.bpred.btb_entries,
        c.bpred.ras_entries
    );
    println!(
        "L1 ICache {} KiB, {}-way, {}-cycle, {} MSHRs",
        h.l1i.size_bytes / 1024,
        h.l1i.ways,
        h.l1i.latency,
        h.l1_mshrs
    );
    println!(
        "L1 DCache {} KiB, {}-way, {}-cycle, {} MSHRs",
        h.l1d.size_bytes / 1024,
        h.l1d.ways,
        h.l1d.latency,
        h.l1_mshrs
    );
    println!("Minions   2 KiB data + 2 KiB instruction, 2-way, accessed with I/D cache");
    println!(
        "L2 Cache  {} MiB shared, {}-way, {}-cycle, {} MSHRs, stride prefetcher (64-entry RPT)",
        h.l2.size_bytes / 1024 / 1024,
        h.l2.ways,
        h.l2.latency,
        h.l2_mshrs
    );
    println!(
        "Memory    DDR3-1600-like: {} banks, {} KiB rows, tCAS/tRCD/tRP = {}/{}/{} cycles",
        h.dram.banks,
        h.dram.row_bytes / 1024,
        h.dram.t_cas,
        h.dram.t_rcd,
        h.dram.t_rp
    );
}
