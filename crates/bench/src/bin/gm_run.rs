//! `gm-run`: the experiment driver. Reproduces any subset of the
//! paper's figures/tables from the shared registry, in parallel, with
//! optional structured JSON output.
//!
//! ```text
//! gm-run --list
//! gm-run --filter fig6 --scale test --jobs 2 --json results.json
//! gm-run --scale full               # every experiment, long workloads
//! ```

fn main() {
    gm_bench::cli::gm_run_main();
}
