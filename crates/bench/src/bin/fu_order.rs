//! Regenerates the §4.9 experiment: strictness-ordered scheduling of the
//! non-pipelined functional units (IntDiv, FpDiv, FpSqrt).
//!
//! Paper shape: no workload slows by more than ≈0.08%; several speed up
//! slightly (the paper reports a small geomean *speedup*), because
//! favouring older operations drains the reorder buffer faster.
//!
//! Thin client of the `fu_order` registry entry.

fn main() {
    gm_bench::cli::figure_main("fu_order");
}
