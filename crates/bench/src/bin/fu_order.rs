//! Regenerates the §4.9 experiment: strictness-ordered scheduling of the
//! non-pipelined functional units (IntDiv, FpDiv, FpSqrt).
//!
//! Paper shape: no workload slows by more than ≈0.08%; several speed up
//! slightly (the paper reports a small geomean *speedup*), because
//! favouring older operations drains the reorder buffer faster.

use ghostminion::Scheme;
use gm_bench::{emit, run_workload, scale_from_args};
use gm_stats::{geomean, Table};
use gm_workloads::spec2006_analogs;

fn main() {
    let workloads = spec2006_analogs(scale_from_args());
    let mut t = Table::new(vec![
        "workload".into(),
        "strict/greedy".into(),
        "strict_delays".into(),
    ]);
    let mut ratios = Vec::new();
    for w in &workloads {
        let greedy = run_workload(Scheme::ghost_minion(), w);
        let mut strict_scheme = Scheme::ghost_minion();
        strict_scheme.strict_fu_order = true;
        let strict = run_workload(strict_scheme, w);
        let ratio = strict.cycles as f64 / greedy.cycles as f64;
        ratios.push(ratio);
        t.row(vec![
            w.name.to_owned(),
            format!("{ratio:.4}"),
            strict.core_stats[0].strict_fu_delays.to_string(),
        ]);
    }
    t.row(vec![
        "geomean".into(),
        format!("{:.4}", geomean(&ratios).unwrap()),
        String::new(),
    ]);
    emit(
        "§4.9: strictness-ordered non-pipelined FU scheduling vs greedy",
        &t,
    );
}
