//! Security litmus tests (threat model §1.1): runs the Spectre v1,
//! SpectreRewind and Speculative-Interference attacks against every
//! scheme and reports which leak.
//!
//! Expected: the unsafe baseline leaks everything; MuonTrap (no flush)
//! still leaks classic Spectre to a same-address-space attacker;
//! GhostMinion without §4.9 FU ordering leaks the divider channel and
//! closes it with FU ordering on; full GhostMinion closes the cache and
//! MSHR channels.

use ghostminion::Scheme;
use gm_attacks::{run_all, spectre_rewind, spectre_v1_string};
use gm_stats::Table;

fn main() {
    let mut t = Table::new(vec![
        "scheme".into(),
        "spectre-v1".into(),
        "rewind".into(),
        "interference".into(),
    ]);
    for scheme in Scheme::figure_lineup() {
        let outcomes = run_all(scheme);
        t.row(vec![
            scheme.name().to_owned(),
            if outcomes[0].leaked { "LEAKS" } else { "safe" }.into(),
            if outcomes[1].leaked { "LEAKS" } else { "safe" }.into(),
            if outcomes[2].leaked { "LEAKS" } else { "safe" }.into(),
        ]);
    }
    let mut strict = Scheme::ghost_minion();
    strict.strict_fu_order = true;
    let rewind = spectre_rewind(strict);
    t.row(vec![
        "GhostMinion+§4.9".into(),
        "safe".into(),
        if rewind.leaked { "LEAKS" } else { "safe" }.into(),
        "safe".into(),
    ]);
    gm_bench::emit("Security litmus tests", &t);

    let (recovered, planted) = spectre_v1_string(Scheme::unsafe_baseline(), b"GHOST");
    println!(
        "spectre-v1 string recovery on Unsafe: planted {:?}, recovered {:?}",
        String::from_utf8_lossy(&planted),
        String::from_utf8_lossy(&recovered)
    );
}
