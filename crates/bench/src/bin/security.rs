//! Security litmus tests (threat model §1.1): runs the Spectre v1,
//! SpectreRewind and Speculative-Interference attacks against every
//! scheme and reports which leak.
//!
//! Expected: the unsafe baseline leaks everything; MuonTrap (no flush)
//! still leaks classic Spectre to a same-address-space attacker;
//! GhostMinion without §4.9 FU ordering leaks the divider channel and
//! closes it with FU ordering on; full GhostMinion closes the cache and
//! MSHR channels.
//!
//! Thin client of the `security` registry entry.

fn main() {
    gm_bench::cli::figure_main("security");
}
