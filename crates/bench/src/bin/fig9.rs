//! Regenerates Figure 9: breakdown of GhostMinion's overheads into its
//! components — DMinion-Timeless, DMinion (with TimeGuarding and
//! leapfrogging), IMinion alone, DMinion+Coherence, DMinion+Prefetcher
//! gate, and the full system.
//!
//! Paper shape: most of the overhead comes from the data-side minion and
//! the coherence extension; the instruction side is ≈0; TimeGuarding
//! over the timeless minion adds only ≈0.2%.

use ghostminion::Scheme;
use gm_bench::{emit, normalized_sweep, run_workload, scale_from_args};
use gm_workloads::spec2006_analogs;

fn main() {
    let workloads = spec2006_analogs(scale_from_args());
    let mut schemes = vec![Scheme::unsafe_baseline()];
    schemes.extend(Scheme::breakdown_lineup());
    let t = normalized_sweep(&workloads, &schemes, run_workload);
    emit("Figure 9: GhostMinion overhead breakdown", &t);
}
