//! Regenerates Figure 9: breakdown of GhostMinion's overheads into its
//! components — DMinion-Timeless, DMinion (with TimeGuarding and
//! leapfrogging), IMinion alone, DMinion+Coherence, DMinion+Prefetcher
//! gate, and the full system.
//!
//! Paper shape: most of the overhead comes from the data-side minion and
//! the coherence extension; the instruction side is ≈0; TimeGuarding
//! over the timeless minion adds only ≈0.2%.
//!
//! Thin client of the `fig9` registry entry.

fn main() {
    gm_bench::cli::figure_main("fig9");
}
