//! Regenerates the §6.5 power analysis: CACTI-anchored static power and
//! read energies, plus the measured dynamic power of the GhostMinion
//! accesses across SPEC CPU2006.
//!
//! Paper shape: ≤3 µW data-side and ≤1 µW instruction-side maximum
//! dynamic draw — negligible against ≈1 W per core.
//!
//! Thin client of the `power` registry entry.

fn main() {
    gm_bench::cli::figure_main("power");
}
