//! Regenerates the §6.5 power analysis: CACTI-anchored static power and
//! read energies, plus the measured dynamic power of the GhostMinion
//! accesses across SPEC CPU2006.
//!
//! Paper shape: ≤3 µW data-side and ≤1 µW instruction-side maximum
//! dynamic draw — negligible against ≈1 W per core.

use ghostminion::Scheme;
use gm_bench::{run_workload, scale_from_args};
use gm_energy::{dynamic_uw, section65_report, sram_model};
use gm_stats::Table;
use gm_workloads::spec2006_analogs;

fn main() {
    println!("== §6.5 CACTI-anchored SRAM model ==\n");
    println!("{}", section65_report());

    let minion = sram_model(2048);
    let workloads = spec2006_analogs(scale_from_args());
    let mut t = Table::new(vec![
        "workload".into(),
        "dminion(µW)".into(),
        "iminion(µW)".into(),
    ]);
    let (mut max_d, mut max_i) = (0.0f64, 0.0f64);
    for w in &workloads {
        let r = run_workload(Scheme::ghost_minion(), w);
        let d = dynamic_uw(
            &minion,
            r.mem_stats.get("energy_minion_reads"),
            r.mem_stats.get("energy_minion_writes"),
            r.cycles,
        );
        let i = dynamic_uw(
            &minion,
            r.mem_stats.get("energy_iminion_reads"),
            r.mem_stats.get("energy_iminion_writes"),
            r.cycles,
        );
        max_d = max_d.max(d);
        max_i = max_i.max(i);
        t.row(vec![
            w.name.to_owned(),
            format!("{d:.2}"),
            format!("{i:.2}"),
        ]);
    }
    gm_bench::emit("GhostMinion dynamic power across SPEC CPU2006", &t);
    println!("maximum dynamic draw: data {max_d:.2} µW, instruction {max_i:.2} µW");
}
