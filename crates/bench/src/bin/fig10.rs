//! Regenerates Figure 10: the proportion of loads that trigger
//! backwards-in-time prevention — TimeGuards (blocked minion reads),
//! timeleaps (hits on younger in-flight MSHRs) and leapfrogs (MSHR
//! steals).
//!
//! Paper shape: all three are rare (< 7% of loads in the worst case);
//! soplex stands out for timeleaps, and mcf/libquantum/omnetpp for
//! leapfrogs.
//!
//! Thin client of the `fig10` registry entry.

fn main() {
    gm_bench::cli::figure_main("fig10");
}
