//! Regenerates Figure 10: the proportion of loads that trigger
//! backwards-in-time prevention — TimeGuards (blocked minion reads),
//! timeleaps (hits on younger in-flight MSHRs) and leapfrogs (MSHR
//! steals).
//!
//! Paper shape: all three are rare (< 7% of loads in the worst case);
//! soplex stands out for timeleaps, and mcf/libquantum/omnetpp for
//! leapfrogs.

use ghostminion::Scheme;
use gm_bench::{run_workload, scale_from_args};
use gm_stats::Table;
use gm_workloads::spec2006_analogs;

fn main() {
    let workloads = spec2006_analogs(scale_from_args());
    let mut t = Table::new(vec![
        "workload".into(),
        "timeguards".into(),
        "timeleaps".into(),
        "leapfrogs".into(),
    ]);
    for w in &workloads {
        let r = run_workload(Scheme::ghost_minion(), w);
        let loads = r.mem_stats.get("loads").max(1) as f64;
        t.row(vec![
            w.name.to_owned(),
            format!("{:.5}", r.mem_stats.get("timeguards") as f64 / loads),
            format!("{:.5}", r.mem_stats.get("timeleaps") as f64 / loads),
            format!("{:.5}", r.mem_stats.get("leapfrogs") as f64 / loads),
        ]);
    }
    gm_bench::emit(
        "Figure 10: proportion of loads triggering backwards-in-time prevention",
        &t,
    );
}
