//! Regenerates Figure 6: SPEC CPU2006 normalised execution time for
//! GhostMinion vs MuonTrap(-Flush), InvisiSpec-Spectre/-Future and
//! STT-Spectre/-Future.
//!
//! Paper shape to check: GhostMinion geomean ≈ 1.025 with mcf its ≈1.3
//! worst case; STT large on pointer-chasing workloads (astar, mcf,
//! omnetpp, xalancbmk) and ≈1.0 on compute-bound ones; InvisiSpec-Future
//! the most expensive overall.

use ghostminion::Scheme;
use gm_bench::{emit, normalized_sweep, run_workload, scale_from_args};
use gm_workloads::spec2006_analogs;

fn main() {
    let workloads = spec2006_analogs(scale_from_args());
    let t = normalized_sweep(&workloads, &Scheme::figure_lineup(), run_workload);
    emit("Figure 6: SPEC CPU2006 normalised execution time", &t);
}
