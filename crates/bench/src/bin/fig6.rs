//! Regenerates Figure 6: SPEC CPU2006 normalised execution time for
//! GhostMinion vs MuonTrap(-Flush), InvisiSpec-Spectre/-Future and
//! STT-Spectre/-Future.
//!
//! Paper shape to check: GhostMinion geomean ≈ 1.025 with mcf its ≈1.3
//! worst case; STT large on pointer-chasing workloads (astar, mcf,
//! omnetpp, xalancbmk) and ≈1.0 on compute-bound ones; InvisiSpec-Future
//! the most expensive overall.
//!
//! Thin client of the `fig6` registry entry; `gm-run --filter fig6` runs
//! the same sweep.

fn main() {
    gm_bench::cli::figure_main("fig6");
}
