//! Regenerates Figure 8: SPECspeed 2017 normalised execution time.
//!
//! Paper shape: lower overheads than SPEC2006 across the board
//! (GhostMinion ≈ 0.6% geomean); mcf and wrf keep visible GhostMinion
//! overhead from lost misspeculated prefetching.
//!
//! Thin client of the `fig8` registry entry.

fn main() {
    gm_bench::cli::figure_main("fig8");
}
