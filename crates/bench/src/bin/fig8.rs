//! Regenerates Figure 8: SPECspeed 2017 normalised execution time.
//!
//! Paper shape: lower overheads than SPEC2006 across the board
//! (GhostMinion ≈ 0.6% geomean); mcf and wrf keep visible GhostMinion
//! overhead from lost misspeculated prefetching.

use ghostminion::Scheme;
use gm_bench::{emit, normalized_sweep, run_workload, scale_from_args};
use gm_workloads::spec2017_analogs;

fn main() {
    let workloads = spec2017_analogs(scale_from_args());
    let t = normalized_sweep(&workloads, &Scheme::figure_lineup(), run_workload);
    emit("Figure 8: SPECspeed 2017 normalised execution time", &t);
}
