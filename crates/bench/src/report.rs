//! Turns raw sweep results into the figures' tables, extra report
//! lines, and structured JSON.

use crate::experiment::{Experiment, ExperimentKind, Report, Sweep};
use crate::runner::{CacheStats, JobFailure, Runner, Shard, SweepResults, SweepRun};
use crate::telemetry::Telemetry;
use ghostminion::{Scheme, SystemConfig};
use gm_attacks::{run_all, spectre_rewind, spectre_v1_string};
use gm_results::{job_record, ResultStore};
use gm_stats::{geomean, Json, Table};
use gm_workloads::Scale;

/// Everything one experiment produces: lines printed before the table,
/// the table itself, lines printed after it, the raw per-job results
/// for JSON output, and runner telemetry for the stderr summary.
#[derive(Debug)]
pub struct ExperimentOutput {
    pub preamble: Vec<String>,
    pub table: Table,
    pub postamble: Vec<String>,
    /// Per-job raw results (empty array for non-sweep experiments).
    pub results: Json,
    /// Cache hit/miss counts (zero for non-sweep experiments; without a
    /// store every job is a miss).
    pub cache: CacheStats,
    /// Wall-clock spent simulating cache misses, µs.
    pub sim_wall_us: u64,
    /// Simulated cycles across cache misses (throughput telemetry).
    pub sim_cycles: u64,
    /// Slowest simulated job as ("workload/scheme", µs).
    pub slowest: Option<(String, u64)>,
    /// Jobs that exhausted supervision (empty on a fault-free run, so
    /// fault-free stdout and JSON are byte-identical to a run made with
    /// a build that predates supervision).
    pub failures: Vec<JobFailure>,
}

impl ExperimentOutput {
    fn non_sweep(
        table: Table,
        preamble: Vec<String>,
        postamble: Vec<String>,
        results: Json,
    ) -> Self {
        Self {
            preamble,
            table,
            postamble,
            results,
            cache: CacheStats::default(),
            sim_wall_us: 0,
            sim_cycles: 0,
            slowest: None,
            failures: Vec::new(),
        }
    }
}

/// Executes one registered experiment end to end, consulting (and
/// feeding) `store` for sweep jobs. With `telemetry`, the experiment
/// is bracketed by an `experiment_start`/`experiment_end` span and
/// sweep jobs emit their own spans (see [`crate::telemetry`]).
pub fn run_experiment(
    runner: &Runner,
    exp: &Experiment,
    scale: Scale,
    store: Option<&ResultStore>,
    telemetry: Option<&Telemetry>,
) -> Result<ExperimentOutput, String> {
    if let Some(tel) = telemetry {
        tel.emit("experiment_start", |j| {
            j.set("experiment", exp.name);
        });
    }
    let out = match &exp.kind {
        ExperimentKind::Sweep(sweep) => {
            let run =
                runner.run_sweep_shard(sweep, scale, exp.name, store, Shard::full(), telemetry)?;
            let (results, omitted) = run.complete_results();
            let (preamble, table, mut postamble) = render_sweep(sweep, &results);
            // Failure annotations: absent on a fault-free run, so golden
            // stdout fixtures never see them.
            for f in &run.failures {
                postamble.push(format!("!! job failed: {f}"));
            }
            for name in &omitted {
                postamble.push(format!("!! row omitted: {name} (incomplete scheme lineup)"));
            }
            Ok(ExperimentOutput {
                preamble,
                table,
                postamble,
                results: sweep_results_json(sweep, &run),
                cache: run.cache,
                sim_wall_us: run.sim_wall_us(),
                sim_cycles: run.sim_cycles(),
                slowest: run.slowest_sim(sweep),
                failures: run.failures.clone(),
            })
        }
        ExperimentKind::Security => Ok(security_report(runner)),
        ExperimentKind::Table1 => Ok(ExperimentOutput::non_sweep(
            table1_table(&SystemConfig::micro2021()),
            Vec::new(),
            Vec::new(),
            Json::Array(Vec::new()),
        )),
    };
    if let (Some(tel), Ok(out)) = (telemetry, &out) {
        tel.emit("experiment_end", |j| {
            j.set("experiment", exp.name)
                .set("jobs", out.cache.hits + out.cache.misses)
                .set("hits", out.cache.hits)
                .set("misses", out.cache.misses)
                .set("sim_wall_us", out.sim_wall_us);
            if !out.failures.is_empty() {
                j.set("failed", out.failures.len() as u64);
            }
        });
    }
    out
}

/// The exact stdout of one experiment: preamble lines, the table in
/// human and CSV form, postamble lines. `gm-run`, the figure binaries,
/// and `gm-run merge` all print this string, which is what makes
/// "merged output is bit-identical to an unsharded run" a string
/// equality.
pub fn report_text(title: &str, out: &ExperimentOutput) -> String {
    let mut s = String::new();
    for line in &out.preamble {
        s.push_str(line);
        s.push('\n');
    }
    s.push_str(&format!("== {title} ==\n\n"));
    s.push_str(&out.table.render());
    s.push('\n');
    s.push_str("-- csv --\n");
    s.push_str(&out.table.to_csv());
    s.push('\n');
    for line in &out.postamble {
        s.push_str(line);
        s.push('\n');
    }
    s
}

/// Renders a sweep's results according to its report rule.
pub fn render_sweep(sweep: &Sweep, res: &SweepResults) -> (Vec<String>, Table, Vec<String>) {
    match sweep.report {
        Report::NormalizedTime => (Vec::new(), normalized_table(sweep, res), Vec::new()),
        Report::LoadFractions { denom, events } => {
            (Vec::new(), fractions_table(res, denom, events), Vec::new())
        }
        Report::DynamicPower => power_tables(sweep, res),
        Report::StrictFu => (Vec::new(), strict_fu_table(res), Vec::new()),
    }
}

/// The generalized normalised-execution-time sweep (Figures 6–9, 11):
/// one row per workload unit, one column per non-baseline scheme, each
/// value `cycles / baseline cycles`, plus a geomean row. Works for any
/// [`gm_workloads::WorkloadSet`] — single-threaded and multi-threaded
/// units alike.
fn normalized_table(sweep: &Sweep, res: &SweepResults) -> Table {
    assert!(!sweep.schemes.is_empty());
    let mut header = vec!["workload".to_owned()];
    header.extend(sweep.schemes.iter().skip(1).map(|c| c.label.clone()));
    let mut table = Table::new(header);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); sweep.schemes.len() - 1];
    for (unit, row_results) in res.set.units.iter().zip(&res.rows) {
        let base = row_results[0].cycles as f64;
        let mut row = Vec::new();
        for (i, r) in row_results.iter().skip(1).enumerate() {
            let ratio = r.cycles as f64 / base;
            columns[i].push(ratio);
            row.push(ratio);
        }
        table.row_f64(unit.name, &row);
    }
    if !res.rows.is_empty() {
        let geo: Vec<f64> = columns
            .iter()
            .map(|c| geomean(c).expect("all ratios positive"))
            .collect();
        table.row_f64("geomean", &geo);
    }
    table
}

/// Figure 10: each event counter as a fraction of `denom`.
fn fractions_table(res: &SweepResults, denom: &str, events: &[&str]) -> Table {
    let mut header = vec!["workload".to_owned()];
    header.extend(events.iter().map(|e| (*e).to_owned()));
    let mut table = Table::new(header);
    for (unit, row_results) in res.set.units.iter().zip(&res.rows) {
        let r = &row_results[0];
        let total = r.mem_stats.get(denom).max(1) as f64;
        let mut cells = vec![unit.name.to_owned()];
        for e in events {
            cells.push(format!("{:.5}", r.mem_stats.get(e) as f64 / total));
        }
        table.row(cells);
    }
    table
}

/// §6.5: CACTI-anchored SRAM preamble plus per-workload dynamic power.
fn power_tables(sweep: &Sweep, res: &SweepResults) -> (Vec<String>, Table, Vec<String>) {
    use gm_energy::{dynamic_uw, section65_report, sram_model};
    let minion_bytes = sweep.schemes[0]
        .scheme
        .gm_config()
        .map(|c| c.minion_bytes)
        .unwrap_or(2048);
    let minion = sram_model(minion_bytes);
    let preamble = vec![
        "== \u{a7}6.5 CACTI-anchored SRAM model ==".to_owned(),
        String::new(),
        section65_report(),
    ];
    let mut table = Table::new(vec![
        "workload".into(),
        "dminion(\u{b5}W)".into(),
        "iminion(\u{b5}W)".into(),
    ]);
    let (mut max_d, mut max_i) = (0.0f64, 0.0f64);
    for (unit, row_results) in res.set.units.iter().zip(&res.rows) {
        let r = &row_results[0];
        let d = dynamic_uw(
            &minion,
            r.mem_stats.get("energy_minion_reads"),
            r.mem_stats.get("energy_minion_writes"),
            r.cycles,
        );
        let i = dynamic_uw(
            &minion,
            r.mem_stats.get("energy_iminion_reads"),
            r.mem_stats.get("energy_iminion_writes"),
            r.cycles,
        );
        max_d = max_d.max(d);
        max_i = max_i.max(i);
        table.row(vec![
            unit.name.to_owned(),
            format!("{d:.2}"),
            format!("{i:.2}"),
        ]);
    }
    let postamble = vec![format!(
        "maximum dynamic draw: data {max_d:.2} \u{b5}W, instruction {max_i:.2} \u{b5}W"
    )];
    (preamble, table, postamble)
}

/// §4.9: strict-vs-greedy ratio and delay counts. Lineup order is
/// [greedy, strict].
fn strict_fu_table(res: &SweepResults) -> Table {
    let mut table = Table::new(vec![
        "workload".into(),
        "strict/greedy".into(),
        "strict_delays".into(),
    ]);
    let mut ratios = Vec::new();
    for (unit, row_results) in res.set.units.iter().zip(&res.rows) {
        let (greedy, strict) = (&row_results[0], &row_results[1]);
        let ratio = strict.cycles as f64 / greedy.cycles as f64;
        ratios.push(ratio);
        table.row(vec![
            unit.name.to_owned(),
            format!("{ratio:.4}"),
            strict.core_stats[0].strict_fu_delays.to_string(),
        ]);
    }
    if !ratios.is_empty() {
        table.row(vec![
            "geomean".into(),
            format!("{:.4}", geomean(&ratios).unwrap()),
            String::new(),
        ]);
    }
    table
}

/// The raw (workload × scheme) results as a JSON array of
/// [`gm_results::record`] objects: enough metadata per job to re-derive
/// any figure offline, reconstruct a [`ghostminion::MachineResult`]
/// (`gm-run merge` does exactly that), or seed a result store. Jobs
/// owned by other shards are simply absent.
pub fn sweep_results_json(sweep: &Sweep, run: &SweepRun) -> Json {
    let mut jobs = Vec::new();
    for (unit, row) in run.set.units.iter().zip(&run.rows) {
        for (col, job) in sweep.schemes.iter().zip(row) {
            let Some(job) = job else { continue };
            jobs.push(job_record(
                unit.name,
                &col.label,
                &job.result,
                job.wall_us,
                &job.fingerprint,
            ));
        }
    }
    Json::Array(jobs)
}

/// The security litmus matrix: every attack against every scheme in the
/// figure lineup (parallel over schemes), plus the §4.9 strict-FU
/// variant and the Spectre v1 string-recovery demo.
fn security_report(runner: &Runner) -> ExperimentOutput {
    const ATTACKS: [&str; 3] = ["spectre-v1", "rewind", "interference"];
    let schemes = Scheme::figure_lineup();
    let outcomes = runner.map(&schemes, |&s| run_all(s));

    let mut table = Table::new(vec![
        "scheme".into(),
        ATTACKS[0].into(),
        ATTACKS[1].into(),
        ATTACKS[2].into(),
    ]);
    let mut results = Vec::new();
    let verdict = |leaked: bool| if leaked { "LEAKS" } else { "safe" };
    for (scheme, per_scheme) in schemes.iter().zip(&outcomes) {
        let mut cells = vec![scheme.name().to_owned()];
        for (attack, o) in ATTACKS.iter().zip(per_scheme) {
            cells.push(verdict(o.leaked).to_owned());
            let mut job = Json::object();
            job.set("scheme", scheme.name())
                .set("attack", *attack)
                .set("leaked", o.leaked);
            results.push(job);
        }
        table.row(cells);
    }

    // GhostMinion with §4.9 FU ordering closes the divider channel.
    let mut strict = Scheme::ghost_minion();
    strict.strict_fu_order = true;
    let rewind = spectre_rewind(strict);
    table.row(vec![
        "GhostMinion+\u{a7}4.9".into(),
        "safe".into(),
        verdict(rewind.leaked).into(),
        "safe".into(),
    ]);
    let mut job = Json::object();
    job.set("scheme", "GhostMinion+\u{a7}4.9")
        .set("attack", "rewind")
        .set("leaked", rewind.leaked);
    results.push(job);

    let (recovered, planted) = spectre_v1_string(Scheme::unsafe_baseline(), b"GHOST");
    let postamble = vec![format!(
        "spectre-v1 string recovery on Unsafe: planted {:?}, recovered {:?}",
        String::from_utf8_lossy(&planted),
        String::from_utf8_lossy(&recovered)
    )];

    ExperimentOutput::non_sweep(table, Vec::new(), postamble, Json::Array(results))
}

/// Table 1 as a component/configuration table.
pub fn table1_table(cfg: &SystemConfig) -> Table {
    let c = cfg.core;
    let h = cfg.hierarchy;
    let mut t = Table::new(vec!["component".into(), "configuration".into()]);
    let mut kv = |k: &str, v: String| t.row(vec![k.to_owned(), v]);
    kv(
        "Core",
        format!("{}-wide out-of-order, 2.0 GHz", c.fetch_width),
    );
    kv(
        "Pipeline",
        format!(
            "{}-entry ROB, {}-entry IQ, {}-entry LQ, {}-entry SQ, \
             {} Int / {} FP registers, {} Int ALUs, {} FP ALUs, {} Mult/Div ALUs",
            c.rob_entries,
            c.iq_entries,
            c.lq_entries,
            c.sq_entries,
            c.int_regs,
            c.fp_regs,
            c.int_alu,
            c.fp_alu,
            c.muldiv
        ),
    );
    kv(
        "Predictor",
        format!(
            "tournament 2-bit, {}-entry local, {} global, {} choice, {} BTB, {} RAS",
            c.bpred.local_entries,
            c.bpred.global_entries,
            c.bpred.choice_entries,
            c.bpred.btb_entries,
            c.bpred.ras_entries
        ),
    );
    kv(
        "L1 ICache",
        format!(
            "{} KiB, {}-way, {}-cycle, {} MSHRs",
            h.l1i.size_bytes / 1024,
            h.l1i.ways,
            h.l1i.latency,
            h.l1_mshrs
        ),
    );
    kv(
        "L1 DCache",
        format!(
            "{} KiB, {}-way, {}-cycle, {} MSHRs",
            h.l1d.size_bytes / 1024,
            h.l1d.ways,
            h.l1d.latency,
            h.l1_mshrs
        ),
    );
    kv(
        "Minions",
        "2 KiB data + 2 KiB instruction, 2-way, accessed with I/D cache".to_owned(),
    );
    kv(
        "L2 Cache",
        format!(
            "{} MiB shared, {}-way, {}-cycle, {} MSHRs, stride prefetcher (64-entry RPT)",
            h.l2.size_bytes / 1024 / 1024,
            h.l2.ways,
            h.l2.latency,
            h.l2_mshrs
        ),
    );
    kv(
        "Memory",
        format!(
            "DDR3-1600-like: {} banks, {} KiB rows, tCAS/tRCD/tRP = {}/{}/{} cycles",
            h.dram.banks,
            h.dram.row_bytes / 1024,
            h.dram.t_cas,
            h.dram.t_rcd,
            h.dram.t_rp
        ),
    );
    t
}

/// Wraps one experiment's output as the JSON object `gm-run` emits.
/// The `"failures"` key is present only when a supervised job failed,
/// so fault-free JSON is byte-identical to pre-supervision fixtures.
pub fn experiment_json(exp: &Experiment, scale: Scale, out: &ExperimentOutput) -> Json {
    let mut j = Json::object();
    j.set("name", exp.name)
        .set("title", exp.title)
        .set("scale", scale.name())
        .set("table", out.table.to_json())
        .set("results", out.results.clone());
    if !out.failures.is_empty() {
        let list = out
            .failures
            .iter()
            .map(|f| {
                let mut o = Json::object();
                o.set("workload", f.workload.as_str())
                    .set("scheme", f.scheme.as_str())
                    .set("kind", f.kind.name())
                    .set("attempts", u64::from(f.attempts))
                    .set("error", f.message.as_str());
                o
            })
            .collect();
        j.set("failures", Json::Array(list));
    }
    j
}
