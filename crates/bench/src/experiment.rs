//! Experiments as data: the declarative description of every paper
//! figure and table, plus the registry the CLI and binaries select from.

use ghostminion::{GhostMinionConfig, Scheme, SystemConfig};
use gm_workloads::{Scale, Suite, WorkloadSet};

/// One column of a sweep: a scheme and the label it carries in the
/// figure (usually the scheme name, but e.g. Fig. 11 labels columns by
/// minion size).
#[derive(Clone, Debug)]
pub struct SchemeCol {
    pub label: String,
    pub scheme: Scheme,
}

impl SchemeCol {
    /// A column with an explicit label.
    pub fn new(label: impl Into<String>, scheme: Scheme) -> Self {
        Self {
            label: label.into(),
            scheme,
        }
    }

    /// A column labelled with the scheme's legend name.
    pub fn named(scheme: Scheme) -> Self {
        Self::new(scheme.name(), scheme)
    }
}

/// How a sweep's raw results become the figure's table.
#[derive(Clone, Copy, Debug)]
pub enum Report {
    /// One column per non-baseline scheme with `cycles / baseline
    /// cycles`, plus a geomean row — Figures 6–9 and 11. The first
    /// scheme in the lineup is the baseline and gets no column.
    NormalizedTime,
    /// One column per listed memory-system counter, each reported as a
    /// fraction of the `denom` counter — Figure 10. Single-scheme
    /// lineups only.
    LoadFractions {
        denom: &'static str,
        events: &'static [&'static str],
    },
    /// §6.5 dynamic µW of the data- and instruction-side minions.
    /// Single-scheme lineups only.
    DynamicPower,
    /// §4.9: `strict cycles / greedy cycles` plus the strict-delay
    /// counter. The lineup must be exactly [greedy, strict].
    StrictFu,
}

/// A (workload × scheme) sweep: the shape of every simulation-driven
/// experiment.
#[derive(Clone, Debug)]
pub struct Sweep {
    pub suite: Suite,
    /// Restricts the suite to these workload names (`None` = all).
    pub workloads: Option<Vec<&'static str>>,
    pub schemes: Vec<SchemeCol>,
    pub report: Report,
    pub config: SystemConfig,
}

impl Sweep {
    /// Materialises the workload axis at `scale`.
    pub fn workload_set(&self, scale: Scale) -> WorkloadSet {
        let mut set = WorkloadSet::new(self.suite, scale);
        if let Some(names) = &self.workloads {
            set.retain_names(names);
        }
        set
    }
}

/// What kind of work an experiment performs.
#[derive(Clone, Debug)]
pub enum ExperimentKind {
    /// Simulation sweep over (workload × scheme) jobs. Boxed: a `Sweep`
    /// (scheme lineup + full `SystemConfig`) dwarfs the other variants.
    Sweep(Box<Sweep>),
    /// The security litmus matrix: every attack against every scheme.
    Security,
    /// The Table 1 configuration dump (no simulation).
    Table1,
}

/// A registered experiment: a paper figure or table as data.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Registry key (`fig6` … `table1`), also the binary name.
    pub name: &'static str,
    /// Report heading, matching the paper's figure caption.
    pub title: &'static str,
    pub kind: ExperimentKind,
}

fn sweep(suite: Suite, schemes: Vec<SchemeCol>, report: Report) -> ExperimentKind {
    ExperimentKind::Sweep(Box::new(Sweep {
        suite,
        workloads: None,
        schemes,
        report,
        config: SystemConfig::micro2021(),
    }))
}

fn figure_lineup() -> Vec<SchemeCol> {
    Scheme::figure_lineup()
        .into_iter()
        .map(SchemeCol::named)
        .collect()
}

/// Fig. 11's minion-size axis.
pub const FIG11_SIZES: [u64; 6] = [4096, 2048, 1024, 512, 256, 128];

fn fig11_lineup() -> Vec<SchemeCol> {
    let mut cols = vec![SchemeCol::named(Scheme::unsafe_baseline())];
    for bytes in FIG11_SIZES {
        let s = Scheme::ghost_minion_with(GhostMinionConfig {
            minion_bytes: bytes,
            ..GhostMinionConfig::default()
        });
        cols.push(SchemeCol::new(format!("{bytes}B"), s));
    }
    // §6.4 asynchronous reload at the smallest size ("geo. async." in
    // the paper, a full column here).
    let s = Scheme::ghost_minion_with(GhostMinionConfig {
        minion_bytes: 128,
        async_reload: true,
        ..GhostMinionConfig::default()
    });
    cols.push(SchemeCol::new("128B+async", s));
    cols
}

fn fu_order_lineup() -> Vec<SchemeCol> {
    let mut strict = Scheme::ghost_minion();
    strict.strict_fu_order = true;
    vec![
        SchemeCol::new("greedy", Scheme::ghost_minion()),
        SchemeCol::new("strict", strict),
    ]
}

/// All ten experiments, in paper order. Every figure/table binary and
/// the `gm-run` driver resolve their work from this list.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "fig6",
            title: "Figure 6: SPEC CPU2006 normalised execution time",
            kind: sweep(Suite::Spec2006, figure_lineup(), Report::NormalizedTime),
        },
        Experiment {
            name: "fig7",
            title: "Figure 7: Parsec (4 threads) normalised execution time",
            kind: sweep(Suite::Parsec, figure_lineup(), Report::NormalizedTime),
        },
        Experiment {
            name: "fig8",
            title: "Figure 8: SPECspeed 2017 normalised execution time",
            kind: sweep(Suite::Spec2017, figure_lineup(), Report::NormalizedTime),
        },
        Experiment {
            name: "fig9",
            title: "Figure 9: GhostMinion overhead breakdown",
            kind: sweep(
                Suite::Spec2006,
                std::iter::once(SchemeCol::named(Scheme::unsafe_baseline()))
                    .chain(Scheme::breakdown_lineup().into_iter().map(SchemeCol::named))
                    .collect(),
                Report::NormalizedTime,
            ),
        },
        Experiment {
            name: "fig10",
            title: "Figure 10: proportion of loads triggering backwards-in-time prevention",
            kind: sweep(
                Suite::Spec2006,
                vec![SchemeCol::named(Scheme::ghost_minion())],
                Report::LoadFractions {
                    denom: "loads",
                    events: &["timeguards", "timeleaps", "leapfrogs"],
                },
            ),
        },
        Experiment {
            name: "fig11",
            title: "Figure 11: GhostMinion sizing sensitivity",
            kind: sweep(Suite::Spec2006, fig11_lineup(), Report::NormalizedTime),
        },
        Experiment {
            name: "table1",
            title: "Table 1: system experimental setup",
            kind: ExperimentKind::Table1,
        },
        Experiment {
            name: "power",
            title: "GhostMinion dynamic power across SPEC CPU2006 (§6.5)",
            kind: sweep(
                Suite::Spec2006,
                vec![SchemeCol::named(Scheme::ghost_minion())],
                Report::DynamicPower,
            ),
        },
        Experiment {
            name: "security",
            title: "Security litmus tests",
            kind: ExperimentKind::Security,
        },
        Experiment {
            name: "fu_order",
            title: "\u{a7}4.9: strictness-ordered non-pipelined FU scheduling vs greedy",
            kind: sweep(Suite::Spec2006, fu_order_lineup(), Report::StrictFu),
        },
    ]
}

/// Looks up one experiment by exact name.
pub fn find(name: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.name == name)
}

/// Restricts every selected sweep to the workloads in `names`
/// (intersected with any existing `Sweep::workloads` filter, suite
/// order preserved). Errors — reported with usage and exit 2 by the CLI
/// — if a name matches no selected sweep's suite, or if no selected
/// experiment sweeps workloads at all.
pub fn apply_workload_filter(
    experiments: &mut [Experiment],
    names: &[String],
) -> Result<(), String> {
    let mut known: Vec<&'static str> = Vec::new();
    for e in experiments.iter() {
        if let ExperimentKind::Sweep(s) = &e.kind {
            known.extend(
                WorkloadSet::new(s.suite, Scale::Test)
                    .units
                    .iter()
                    .map(|u| u.name),
            );
        }
    }
    if known.is_empty() {
        return Err("--workloads: no selected experiment sweeps workloads".into());
    }
    for n in names {
        if !known.contains(&n.as_str()) {
            return Err(format!(
                "unknown workload {n:?} for the selected experiments"
            ));
        }
    }
    for e in experiments.iter_mut() {
        if let ExperimentKind::Sweep(s) = &mut e.kind {
            let keep: Vec<&'static str> = WorkloadSet::new(s.suite, Scale::Test)
                .units
                .iter()
                .map(|u| u.name)
                .filter(|n| names.iter().any(|m| m == n))
                .filter(|n| s.workloads.as_ref().map_or(true, |prev| prev.contains(n)))
                .collect();
            s.workloads = Some(keep);
        }
    }
    Ok(())
}

/// All experiments whose name contains `pattern`.
pub fn matching(pattern: &str) -> Vec<Experiment> {
    registry()
        .into_iter()
        .filter(|e| e.name.contains(pattern))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_holds_all_ten_figures_with_unique_names() {
        let reg = registry();
        assert_eq!(reg.len(), 10);
        let mut names: Vec<&str> = reg.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "duplicate experiment names");
        for expect in [
            "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table1", "power", "security",
            "fu_order",
        ] {
            assert!(find(expect).is_some(), "{expect} missing from registry");
        }
    }

    #[test]
    fn matching_selects_by_substring() {
        let names: Vec<&str> = matching("fig1").iter().map(|e| e.name).collect();
        assert_eq!(names.len(), 2); // fig10, fig11
        assert!(names.contains(&"fig10") && names.contains(&"fig11"));
        assert!(matching("nope").is_empty());
        assert_eq!(matching("").len(), 10);
    }

    #[test]
    fn sweeps_have_baselines_where_normalized() {
        for e in registry() {
            if let ExperimentKind::Sweep(s) = &e.kind {
                match s.report {
                    Report::NormalizedTime => {
                        assert!(s.schemes.len() >= 2, "{}: need baseline + columns", e.name);
                        assert_eq!(s.schemes[0].label, "Unsafe", "{}: baseline first", e.name);
                    }
                    Report::LoadFractions { .. } | Report::DynamicPower => {
                        assert_eq!(s.schemes.len(), 1, "{}: single scheme", e.name);
                    }
                    Report::StrictFu => assert_eq!(s.schemes.len(), 2, "{}", e.name),
                }
            }
        }
    }

    #[test]
    fn fig11_columns_cover_all_sizes_plus_async() {
        let e = find("fig11").unwrap();
        let ExperimentKind::Sweep(s) = e.kind else {
            panic!("fig11 is a sweep")
        };
        assert_eq!(s.schemes.len(), 1 + FIG11_SIZES.len() + 1);
        assert_eq!(s.schemes.last().unwrap().label, "128B+async");
    }
}
