//! Shard documents and the `gm-run merge` recombination.
//!
//! A shard run (`gm-run --shard K/N --json shardK.json`) cannot render
//! report tables — a normalised column needs the baseline job, which may
//! live on another machine — so it emits only its slice of per-job
//! records, wrapped in a *shard document*. [`merge_docs`] validates a
//! complete set of such documents (same scale, same shard count, every
//! index present exactly once), reassembles the full job grid per
//! experiment, re-renders every report, and re-verifies each record
//! against a freshly computed fingerprint — so merging shards produced
//! by a different configuration or code version fails loudly instead of
//! mixing incompatible results.
//!
//! Non-sweep experiments (`security`, `table1`) involve no long
//! simulation: shard 1 carries them in its document for completeness,
//! and the merge re-executes them locally, which is deterministic and
//! cheap. The merged stdout/JSON is therefore bit-identical to what an
//! unsharded `gm-run` against the same store prints (sweep wall-clocks
//! are replayed from the records, so even the `wall_us` fields match).

use crate::experiment::{self, Experiment, ExperimentKind, Sweep};
use crate::report::{render_sweep, run_experiment, sweep_results_json, ExperimentOutput};
use crate::runner::{CacheStats, Job, Runner, Shard, SweepRun};
use gm_results::{job_fingerprint, record_fingerprint, record_wall_us, result_from_record};
use gm_stats::Json;
use gm_workloads::Scale;
use std::collections::HashMap;

/// Builds the experiment entry of a shard document: the experiment's
/// identity, the workload axis it ran over (so the merge can rebuild
/// the grid even under a `--workloads` filter), and this shard's
/// records.
pub fn shard_entry(exp: &Experiment, scale: Scale, run: &SweepRun, sweep: &Sweep) -> Json {
    let mut entry = Json::object();
    entry
        .set("name", exp.name)
        .set("title", exp.title)
        .set("scale", scale.name())
        .set(
            "workloads",
            Json::Array(run.set.units.iter().map(|u| u.name.into()).collect()),
        )
        .set("results", sweep_results_json(sweep, run));
    entry
}

/// The entry for a non-sweep experiment (carried by shard 1 only).
pub fn shard_nonsweep_entry(exp: &Experiment, scale: Scale, out: &ExperimentOutput) -> Json {
    let mut entry = Json::object();
    entry
        .set("name", exp.name)
        .set("title", exp.title)
        .set("scale", scale.name())
        .set("results", out.results.clone());
    entry
}

/// Wraps a shard's experiment entries into its output document.
pub fn shard_doc(program: &str, scale: Scale, shard: Shard, entries: Vec<Json>) -> Json {
    let mut shard_j = Json::object();
    shard_j
        .set("index", u64::from(shard.index()))
        .set("count", u64::from(shard.count()));
    let mut doc = Json::object();
    doc.set("generator", program)
        .set("scale", scale.name())
        .set("shard", shard_j)
        .set("experiments", Json::Array(entries));
    doc
}

/// A fully merged run: per-experiment outputs in registry order, plus
/// the scale the shards agreed on.
#[derive(Debug)]
pub struct Merged {
    pub scale: Scale,
    pub outputs: Vec<(Experiment, ExperimentOutput)>,
}

fn doc_scale(doc: &Json) -> Result<Scale, String> {
    let name = doc
        .get("scale")
        .and_then(Json::as_str)
        .ok_or("shard document has no scale")?;
    Scale::from_name(name).ok_or_else(|| format!("unknown scale {name:?}"))
}

fn doc_shard(doc: &Json) -> Result<(u64, u64), String> {
    let shard = doc
        .get("shard")
        .ok_or("document has no shard field (it was not produced by gm-run --shard)")?;
    let index = shard
        .get("index")
        .and_then(Json::as_u64)
        .ok_or("shard.index missing")?;
    let count = shard
        .get("count")
        .and_then(Json::as_u64)
        .ok_or("shard.count missing")?;
    Ok((index, count))
}

/// Validates the shard set and merges it. `runner` re-executes the
/// non-sweep experiments.
pub fn merge_docs(docs: &[Json], runner: &Runner) -> Result<Merged, String> {
    if docs.is_empty() {
        return Err("no shard documents to merge".into());
    }
    let scale = doc_scale(&docs[0])?;
    let (_, count) = doc_shard(&docs[0])?;
    if docs.len() as u64 != count {
        return Err(format!(
            "shard set incomplete: documents declare {count} shards, got {}",
            docs.len()
        ));
    }
    let mut seen = vec![false; count as usize];
    for doc in docs {
        if doc_scale(doc)? != scale {
            return Err("shards disagree on --scale".into());
        }
        let (index, c) = doc_shard(doc)?;
        if c != count {
            return Err("shards disagree on the shard count".into());
        }
        if index == 0 || index > count {
            return Err(format!("shard index {index} out of range 1..={count}"));
        }
        if std::mem::replace(&mut seen[(index - 1) as usize], true) {
            return Err(format!("shard {index}/{count} appears twice"));
        }
    }

    // Gather each experiment's records and workload axis across shards.
    struct Gathered {
        workloads: Option<Vec<String>>,
        records: Vec<Json>,
    }
    let mut gathered: HashMap<String, Gathered> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for doc in docs {
        let entries = doc
            .get("experiments")
            .and_then(Json::as_array)
            .ok_or("shard document has no experiments array")?;
        for entry in entries {
            let name = entry
                .get("name")
                .and_then(Json::as_str)
                .ok_or("experiment entry has no name")?
                .to_owned();
            if experiment::find(&name).is_none() {
                return Err(format!("unknown experiment {name:?} in shard document"));
            }
            let g = gathered.entry(name.clone()).or_insert_with(|| {
                order.push(name.clone());
                Gathered {
                    workloads: None,
                    records: Vec::new(),
                }
            });
            if let Some(ws) = entry.get("workloads").and_then(Json::as_array) {
                let names: Vec<String> = ws
                    .iter()
                    .map(|w| w.as_str().map(str::to_owned))
                    .collect::<Option<_>>()
                    .ok_or("workloads entries must be strings")?;
                match &g.workloads {
                    None => g.workloads = Some(names),
                    Some(prev) if *prev == names => {}
                    Some(_) => return Err(format!("shards disagree on {name}'s workload axis")),
                }
            }
            if let Some(records) = entry.get("results").and_then(Json::as_array) {
                g.records.extend(records.iter().cloned());
            }
        }
    }

    // Registry order, like an unsharded run over the same selection.
    order.sort_by_key(|name| {
        experiment::registry()
            .iter()
            .position(|e| e.name == *name)
            .expect("validated above")
    });

    let mut outputs = Vec::new();
    for name in order {
        let exp = experiment::find(&name).expect("validated above");
        let g = &gathered[&name];
        match &exp.kind {
            ExperimentKind::Sweep(sweep) => {
                let run =
                    reassemble_sweep(&name, sweep, scale, g.workloads.as_deref(), &g.records)?;
                let results = run.to_results();
                let (preamble, table, postamble) = render_sweep(sweep, &results);
                let out = ExperimentOutput {
                    preamble,
                    table,
                    postamble,
                    results: sweep_results_json(sweep, &run),
                    cache: CacheStats::default(),
                    sim_wall_us: 0,
                    sim_cycles: 0,
                    slowest: None,
                    // Merge verifies full coverage, so there is nothing
                    // to annotate: shard docs carry only completed jobs.
                    failures: Vec::new(),
                };
                outputs.push((exp, out));
            }
            // Deterministic and simulation-free (or nearly so): re-run
            // locally rather than persisting table renderings in shards.
            ExperimentKind::Security | ExperimentKind::Table1 => {
                let out = run_experiment(runner, &exp, scale, None, None)?;
                outputs.push((exp, out));
            }
        }
    }
    Ok(Merged { scale, outputs })
}

/// Rebuilds the full job grid of one sweep from merged records,
/// verifying coverage (no job missing), disjointness (no job twice),
/// and integrity (every record matches its freshly computed
/// fingerprint).
fn reassemble_sweep(
    name: &str,
    sweep: &Sweep,
    scale: Scale,
    workloads: Option<&[String]>,
    records: &[Json],
) -> Result<SweepRun, String> {
    let mut sweep = sweep.clone();
    if let Some(names) = workloads {
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let full = sweep.workload_set(scale);
        let statics: Vec<&'static str> = full
            .units
            .iter()
            .map(|u| u.name)
            .filter(|n| refs.contains(n))
            .collect();
        if statics.len() != names.len() {
            return Err(format!(
                "{name}: shard workload axis names unknown workloads"
            ));
        }
        sweep.workloads = Some(statics);
    }
    let set = sweep.workload_set(scale);

    let mut by_key: HashMap<(String, String), &Json> = HashMap::new();
    for record in records {
        let workload = record
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{name}: record has no workload"))?;
        let scheme = record
            .get("scheme")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{name}: record has no scheme"))?;
        if by_key
            .insert((workload.to_owned(), scheme.to_owned()), record)
            .is_some()
        {
            return Err(format!(
                "{name}: job ({workload}, {scheme}) appears in more than one shard"
            ));
        }
    }

    let mut rows: Vec<Vec<Option<Job>>> = Vec::with_capacity(set.units.len());
    let mut used = 0usize;
    for unit in &set.units {
        let mut row = Vec::with_capacity(sweep.schemes.len());
        for col in &sweep.schemes {
            let record = by_key
                .get(&(unit.name.to_owned(), col.label.clone()))
                .ok_or_else(|| {
                    format!(
                        "{name}: job ({}, {}) missing — incomplete shard set",
                        unit.name, col.label
                    )
                })?;
            used += 1;
            let expected = job_fingerprint(unit, &col.scheme, scale, &sweep.config);
            let stored = record_fingerprint(record).map_err(|e| format!("{name}: {e}"))?;
            if stored != expected {
                return Err(format!(
                    "{name}: job ({}, {}) fingerprint mismatch — shards were produced \
                     by a different configuration or code version",
                    unit.name, col.label
                ));
            }
            let result = result_from_record(record, unit.name, col.scheme.name())
                .map_err(|e| format!("{name}: ({}, {}): {e}", unit.name, col.label))?;
            let wall_us = record_wall_us(record).map_err(|e| format!("{name}: {e}"))?;
            row.push(Some(Job {
                result,
                wall_us,
                fingerprint: stored.to_owned(),
                cached: true,
            }));
        }
        rows.push(row);
    }
    if used != records.len() {
        return Err(format!(
            "{name}: {} record(s) do not correspond to any expected job",
            records.len() - used
        ));
    }
    Ok(SweepRun {
        set,
        rows,
        cache: CacheStats::default(),
        // Shard documents carry only completed jobs; a failed job shows
        // up as missing coverage, which reassembly rejects above.
        failures: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_validation_rejects_inconsistent_shard_sets() {
        let runner = Runner::new(1);
        assert!(merge_docs(&[], &runner).is_err());

        let doc = |index: u64, count: u64, scale: &str| {
            let mut s = Json::object();
            s.set("index", index).set("count", count);
            let mut d = Json::object();
            d.set("generator", "gm-run")
                .set("scale", scale)
                .set("shard", s)
                .set("experiments", Json::Array(Vec::new()));
            d
        };
        // Missing shard 2 of 2.
        let err = merge_docs(&[doc(1, 2, "test")], &runner).unwrap_err();
        assert!(err.contains("incomplete"), "{err}");
        // Duplicate index.
        let err = merge_docs(&[doc(1, 2, "test"), doc(1, 2, "test")], &runner).unwrap_err();
        assert!(err.contains("twice"), "{err}");
        // Scale mismatch.
        let err = merge_docs(&[doc(1, 2, "test"), doc(2, 2, "bench")], &runner).unwrap_err();
        assert!(err.contains("scale"), "{err}");
        // Unsharded document.
        let mut plain = Json::object();
        plain.set("generator", "gm-run").set("scale", "test");
        let err = merge_docs(&[plain], &runner).unwrap_err();
        assert!(err.contains("--shard"), "{err}");
        // A valid but empty singleton set merges to nothing.
        let merged = merge_docs(&[doc(1, 1, "test")], &runner).unwrap();
        assert!(merged.outputs.is_empty());
        assert_eq!(merged.scale, Scale::Test);
    }
}
