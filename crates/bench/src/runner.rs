//! Parallel job execution for experiment sweeps.
//!
//! Each `Machine` run is self-contained (no shared mutable state), so a
//! sweep expands into independent (workload × scheme) jobs executed on a
//! `std::thread::scope` pool. Results are written back by job index, so
//! the output — tables, geomeans, JSON — is bit-identical no matter how
//! many workers run (`--jobs 1` vs `--jobs N` is a pure wall-clock
//! difference).

use crate::experiment::Sweep;
use crate::run_unit;
use ghostminion::MachineResult;
use gm_workloads::{Scale, WorkloadSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Executes independent jobs across a fixed number of worker threads.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    jobs: usize,
}

impl Runner {
    /// A runner with `jobs` workers; `0` selects
    /// [`Runner::default_jobs`].
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            Self::default_jobs()
        } else {
            jobs
        };
        Self { jobs }
    }

    /// Available hardware parallelism (1 if unknown).
    pub fn default_jobs() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item on the worker pool, returning results in
    /// input order regardless of completion order.
    ///
    /// A panicking job (e.g. a deadlocked simulation hitting its cycle
    /// deadline) propagates out of the scope and fails the whole run.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every slot")
            })
            .collect()
    }

    /// Expands `sweep` at `scale` into (workload × scheme) jobs, runs
    /// them, and returns results in (workload, scheme) order.
    pub fn run_sweep(&self, sweep: &Sweep, scale: Scale) -> SweepResults {
        let set = sweep.workload_set(scale);
        let nschemes = sweep.schemes.len();
        let jobs: Vec<(usize, usize)> = (0..set.units.len())
            .flat_map(|u| (0..nschemes).map(move |s| (u, s)))
            .collect();
        let flat = self.map(&jobs, |&(u, s)| {
            run_unit(sweep.schemes[s].scheme, &set.units[u], sweep.config)
        });
        let mut rows: Vec<Vec<MachineResult>> = Vec::with_capacity(set.units.len());
        let mut flat = flat.into_iter();
        for _ in 0..set.units.len() {
            rows.push(flat.by_ref().take(nschemes).collect());
        }
        SweepResults { set, rows }
    }
}

impl Default for Runner {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Raw results of a sweep: `rows[workload][scheme]`, aligned with the
/// workload set's unit order and the sweep's scheme lineup.
#[derive(Debug)]
pub struct SweepResults {
    pub set: WorkloadSet,
    pub rows: Vec<Vec<MachineResult>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 4, 16] {
            let got = Runner::new(jobs).map(&items, |&x| x * x);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn zero_jobs_selects_available_parallelism() {
        assert_eq!(Runner::new(0).jobs(), Runner::default_jobs());
        assert!(Runner::new(0).jobs() >= 1);
        assert_eq!(Runner::new(3).jobs(), 3);
    }

    #[test]
    fn map_on_empty_input_is_empty() {
        let got: Vec<u64> = Runner::new(4).map(&[] as &[u64], |&x| x);
        assert!(got.is_empty());
    }
}
