//! Parallel, cache-aware job execution for experiment sweeps.
//!
//! Each `Machine` run is self-contained (no shared mutable state), so a
//! sweep expands into independent (workload × scheme) jobs executed on a
//! `std::thread::scope` pool. Results are written back by job index, so
//! the output — tables, geomeans, JSON — is bit-identical no matter how
//! many workers run (`--jobs 1` vs `--jobs N` is a pure wall-clock
//! difference).
//!
//! Two orthogonal features layer on top of the pool:
//!
//! * **Caching** — with a [`ResultStore`], each job's
//!   [`gm_results::job_fingerprint`] is looked up before simulating; a
//!   hit reconstructs the stored [`MachineResult`] (and its original
//!   wall-clock) instead of re-running, a miss simulates and appends the
//!   record the moment the job finishes, so interrupted runs keep their
//!   completed work.
//! * **Sharding** — a [`Shard`] deterministically partitions the flat
//!   job list (`flat_index % count == index - 1`), so N machines can
//!   split one experiment and `gm-run merge` can recombine the outputs.
//!   Unowned jobs are simply `None` in the result grid.

use crate::experiment::Sweep;
use crate::run_unit;
use ghostminion::MachineResult;
use gm_results::{job_fingerprint, job_record, record_wall_us, result_from_record, ResultStore};
use gm_workloads::{Scale, WorkloadSet};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One deterministic partition of a job list: the `index`th (1-based) of
/// `count` round-robin slices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    index: u32,
    count: u32,
}

impl Shard {
    /// The trivial partition that owns every job.
    pub fn full() -> Self {
        Self { index: 1, count: 1 }
    }

    /// Shard `index` of `count`; `index` is 1-based.
    pub fn new(index: u32, count: u32) -> Result<Self, String> {
        if count == 0 || index == 0 || index > count {
            return Err(format!(
                "invalid shard {index}/{count} (expected 1 <= K <= N)"
            ));
        }
        Ok(Self { index, count })
    }

    /// Parses the CLI form `K/N`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let err = || format!("invalid --shard {text:?} (expected K/N, e.g. 2/4)");
        let (k, n) = text.split_once('/').ok_or_else(err)?;
        let index = k.parse::<u32>().map_err(|_| err())?;
        let count = n.parse::<u32>().map_err(|_| err())?;
        Self::new(index, count).map_err(|_| err())
    }

    /// Whether this shard owns the job at `flat_index` in the expanded
    /// job list. Round-robin, so long and short workloads spread evenly
    /// across shards.
    pub fn owns(&self, flat_index: usize) -> bool {
        flat_index % self.count as usize == (self.index - 1) as usize
    }

    /// 1-based shard index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Total number of shards.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether this is the trivial single-shard partition.
    pub fn is_full(&self) -> bool {
        self.count == 1
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Cache outcome counts for one sweep run. Without a store every owned
/// job counts as a miss (it had to be simulated).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: usize,
    pub misses: usize,
}

/// One finished job: the simulation result plus its store metadata.
#[derive(Debug)]
pub struct Job {
    pub result: MachineResult,
    /// Wall-clock of the simulation, µs. Cache hits report the wall of
    /// the run that originally produced the result, so store-backed
    /// outputs are reproducible byte for byte.
    pub wall_us: u64,
    /// Content address of the job (see [`gm_results::fingerprint`]).
    pub fingerprint: String,
    /// Whether the result was reconstructed from the store.
    pub cached: bool,
}

/// Executes independent jobs across a fixed number of worker threads.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    jobs: usize,
}

impl Runner {
    /// A runner with `jobs` workers; `0` selects
    /// [`Runner::default_jobs`].
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            Self::default_jobs()
        } else {
            jobs
        };
        Self { jobs }
    }

    /// Available hardware parallelism (1 if unknown).
    pub fn default_jobs() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item on the worker pool, returning results in
    /// input order regardless of completion order.
    ///
    /// A panicking job (e.g. a deadlocked simulation hitting its cycle
    /// deadline) propagates out of the scope and fails the whole run.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every slot")
            })
            .collect()
    }

    /// Expands `sweep` at `scale` into (workload × scheme) jobs, runs
    /// this shard's slice of them — consulting `store` before simulating
    /// and appending fresh results to it — and returns the job grid.
    ///
    /// `experiment` names the store file. A store whose record fails to
    /// reconstruct (corrupt line, old format version) degrades to a
    /// cache miss and re-simulates; the subsequent append supersedes the
    /// bad record, so the store heals itself.
    pub fn run_sweep_shard(
        &self,
        sweep: &Sweep,
        scale: Scale,
        experiment: &str,
        store: Option<&ResultStore>,
        shard: Shard,
    ) -> Result<SweepRun, String> {
        let set = sweep.workload_set(scale);
        let nschemes = sweep.schemes.len();
        let owned: Vec<(usize, usize)> = (0..set.units.len())
            .flat_map(|u| (0..nschemes).map(move |s| (u, s)))
            .enumerate()
            .filter(|&(flat, _)| shard.owns(flat))
            .map(|(_, job)| job)
            .collect();
        let cached: HashMap<String, gm_stats::Json> = match store {
            Some(st) => {
                st.load(experiment)
                    .map_err(|e| format!("cannot load store for {experiment}: {e}"))?
                    .records
            }
            None => HashMap::new(),
        };
        let jobs = self.map(&owned, |&(u, s)| {
            let unit = &set.units[u];
            let scheme = sweep.schemes[s].scheme;
            let fingerprint = job_fingerprint(unit, &scheme, scale, &sweep.config);
            if let Some(record) = cached.get(&fingerprint) {
                let reconstructed = result_from_record(record, unit.name, scheme.name())
                    .and_then(|result| Ok((result, record_wall_us(record)?)));
                if let Ok((result, wall_us)) = reconstructed {
                    return Job {
                        result,
                        wall_us,
                        fingerprint,
                        cached: true,
                    };
                }
            }
            let started = Instant::now();
            let result = run_unit(scheme, unit, sweep.config);
            let wall_us = started.elapsed().as_micros() as u64;
            if let Some(st) = store {
                let record = job_record(
                    unit.name,
                    &sweep.schemes[s].label,
                    &result,
                    wall_us,
                    &fingerprint,
                );
                if let Err(e) = st.append(experiment, &record) {
                    // Losing cache warmth is not worth failing the run.
                    eprintln!("warning: cannot append to store for {experiment}: {e}");
                }
            }
            Job {
                result,
                wall_us,
                fingerprint,
                cached: false,
            }
        });
        let mut rows: Vec<Vec<Option<Job>>> = (0..set.units.len())
            .map(|_| (0..nschemes).map(|_| None).collect())
            .collect();
        let mut cache = CacheStats::default();
        for (&(u, s), job) in owned.iter().zip(jobs) {
            if job.cached {
                cache.hits += 1;
            } else {
                cache.misses += 1;
            }
            rows[u][s] = Some(job);
        }
        Ok(SweepRun { set, rows, cache })
    }

    /// Runs the complete sweep with no store: the cache-free,
    /// single-shard fast path used by tests and benches.
    pub fn run_sweep(&self, sweep: &Sweep, scale: Scale) -> SweepResults {
        self.run_sweep_shard(sweep, scale, "", None, Shard::full())
            .expect("storeless runs cannot fail")
            .into_results()
    }
}

impl Default for Runner {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Raw results of a sweep: `rows[workload][scheme]`, aligned with the
/// workload set's unit order and the sweep's scheme lineup.
#[derive(Debug)]
pub struct SweepResults {
    pub set: WorkloadSet,
    pub rows: Vec<Vec<MachineResult>>,
}

/// The job grid a (possibly sharded, possibly cached) sweep run
/// produced: `rows[workload][scheme]` is `None` for jobs owned by other
/// shards.
#[derive(Debug)]
pub struct SweepRun {
    pub set: WorkloadSet,
    pub rows: Vec<Vec<Option<Job>>>,
    pub cache: CacheStats,
}

impl SweepRun {
    /// Number of jobs this run owns (ran or reconstructed).
    pub fn owned_jobs(&self) -> usize {
        self.rows.iter().flatten().filter(|j| j.is_some()).count()
    }

    /// Total number of jobs in the full grid.
    pub fn total_jobs(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Total wall-clock spent actually simulating (cache misses), µs.
    pub fn sim_wall_us(&self) -> u64 {
        self.rows
            .iter()
            .flatten()
            .flatten()
            .filter(|j| !j.cached)
            .map(|j| j.wall_us)
            .sum()
    }

    /// Total simulated cycles across the jobs that were actually
    /// simulated (cache misses). Together with [`SweepRun::sim_wall_us`]
    /// this yields the engine's simulated-cycles-per-second throughput.
    pub fn sim_cycles(&self) -> u64 {
        self.rows
            .iter()
            .flatten()
            .flatten()
            .filter(|j| !j.cached)
            .map(|j| j.result.cycles)
            .sum()
    }

    /// The slowest simulated job as (`workload/scheme`, µs).
    pub fn slowest_sim(&self, sweep: &Sweep) -> Option<(String, u64)> {
        let mut best: Option<(String, u64)> = None;
        for (unit, row) in self.set.units.iter().zip(&self.rows) {
            for (col, job) in sweep.schemes.iter().zip(row) {
                let Some(job) = job else { continue };
                let beats = match &best {
                    None => true,
                    Some((_, us)) => job.wall_us > *us,
                };
                if !job.cached && beats {
                    best = Some((format!("{}/{}", unit.name, col.label), job.wall_us));
                }
            }
        }
        best
    }

    /// Collapses a complete (single-shard) run into plain results.
    ///
    /// # Panics
    ///
    /// Panics if any job is missing — callers must not use this on
    /// partial shard runs.
    pub fn into_results(self) -> SweepResults {
        let rows = self
            .rows
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|j| j.expect("into_results on a partial shard run").result)
                    .collect()
            })
            .collect();
        SweepResults {
            set: self.set,
            rows,
        }
    }

    /// Borrows the grid as plain results, panicking on missing jobs.
    pub fn to_results(&self) -> SweepResults {
        SweepResults {
            set: self.set.clone(),
            rows: self
                .rows
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|j| {
                            j.as_ref()
                                .expect("to_results on a partial shard run")
                                .result
                                .clone()
                        })
                        .collect()
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 4, 16] {
            let got = Runner::new(jobs).map(&items, |&x| x * x);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn zero_jobs_selects_available_parallelism() {
        assert_eq!(Runner::new(0).jobs(), Runner::default_jobs());
        assert!(Runner::new(0).jobs() >= 1);
        assert_eq!(Runner::new(3).jobs(), 3);
    }

    #[test]
    fn map_on_empty_input_is_empty() {
        let got: Vec<u64> = Runner::new(4).map(&[] as &[u64], |&x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn shard_parsing_is_strict() {
        assert_eq!(Shard::parse("1/1").unwrap(), Shard::full());
        let s = Shard::parse("2/4").unwrap();
        assert_eq!((s.index(), s.count()), (2, 4));
        assert_eq!(s.to_string(), "2/4");
        assert!(!s.is_full());
        for bad in ["", "2", "0/4", "5/4", "2/0", "a/4", "2/b", "1/2/3", "-1/4"] {
            assert!(Shard::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn shards_partition_any_job_list() {
        for n in 1..=7u32 {
            let shards: Vec<Shard> = (1..=n).map(|k| Shard::new(k, n).unwrap()).collect();
            for job in 0..100usize {
                let owners = shards.iter().filter(|s| s.owns(job)).count();
                assert_eq!(owners, 1, "job {job} must have exactly one of {n} owners");
            }
        }
    }
}
