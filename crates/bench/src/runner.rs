//! Parallel, cache-aware job execution for experiment sweeps.
//!
//! Each `Machine` run is self-contained (no shared mutable state), so a
//! sweep expands into independent (workload × scheme) jobs executed on a
//! `std::thread::scope` pool. Results are written back by job index, so
//! the output — tables, geomeans, JSON — is bit-identical no matter how
//! many workers run (`--jobs 1` vs `--jobs N` is a pure wall-clock
//! difference).
//!
//! Three orthogonal features layer on top of the pool:
//!
//! * **Caching** — with a [`ResultStore`], each job's
//!   [`gm_results::job_fingerprint`] is looked up before simulating; a
//!   hit reconstructs the stored [`MachineResult`] (and its original
//!   wall-clock) instead of re-running, a miss simulates and appends the
//!   record the moment the job finishes, so interrupted runs keep their
//!   completed work.
//! * **Sharding** — a [`Shard`] deterministically partitions the flat
//!   job list (`flat_index % count == index - 1`), so N machines can
//!   split one experiment and `gm-run merge` can recombine the outputs.
//!   Unowned jobs are simply `None` in the result grid.
//! * **Supervision** — each job runs under `catch_unwind`, an optional
//!   wall-clock budget (watchdog thread), and bounded deterministic
//!   retry (see [`Supervision`]). A job that exhausts its attempts
//!   becomes a structured [`JobFailure`] instead of aborting the sweep:
//!   its cell stays `None`, every other job completes, and the caller
//!   decides between partial success and (`strict`) fail-fast.

use crate::experiment::Sweep;
use crate::fault::{FaultKind, FaultPlan};
use crate::run_unit;
use crate::telemetry::Telemetry;
use ghostminion::{MachineResult, Scheme, SystemConfig};
use gm_results::{
    job_fingerprint, job_record, record_wall_us, result_from_record, RemoteStore, ResultStore,
};
use gm_workloads::{Scale, WorkloadSet, WorkloadUnit};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// One deterministic partition of a job list: the `index`th (1-based) of
/// `count` round-robin slices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    index: u32,
    count: u32,
}

impl Shard {
    /// The trivial partition that owns every job.
    pub fn full() -> Self {
        Self { index: 1, count: 1 }
    }

    /// Shard `index` of `count`; `index` is 1-based.
    pub fn new(index: u32, count: u32) -> Result<Self, String> {
        if count == 0 || index == 0 || index > count {
            return Err(format!(
                "invalid shard {index}/{count} (expected 1 <= K <= N)"
            ));
        }
        Ok(Self { index, count })
    }

    /// Parses the CLI form `K/N`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let err = || format!("invalid --shard {text:?} (expected K/N, e.g. 2/4)");
        let (k, n) = text.split_once('/').ok_or_else(err)?;
        let index = k.parse::<u32>().map_err(|_| err())?;
        let count = n.parse::<u32>().map_err(|_| err())?;
        Self::new(index, count).map_err(|_| err())
    }

    /// Whether this shard owns the job at `flat_index` in the expanded
    /// job list. Round-robin, so long and short workloads spread evenly
    /// across shards.
    pub fn owns(&self, flat_index: usize) -> bool {
        flat_index % self.count as usize == (self.index - 1) as usize
    }

    /// Ownership of every job in a flat list, given each job's predicted
    /// cost (see `predicted_costs`; `None` when nothing predicts the
    /// job).
    ///
    /// With no cost information this is exactly the historical
    /// round-robin split ([`Shard::owns`]). As soon as at least one cost
    /// is known, jobs are partitioned by greedy longest-processing-time:
    /// sorted by predicted cost (unknown jobs predicted at the mean of
    /// the known ones), each assigned to the least-loaded shard — so a
    /// handful of slow workloads no longer serialises one machine while
    /// the others idle.
    ///
    /// The assignment is a pure, deterministic function of `(costs,
    /// count)`: every shard of an N-way split computes the identical
    /// partition provided they see the same cost inputs. The cost inputs
    /// are append-invariant for runs of the current configuration
    /// (historical records only), so sequential shard runs against one
    /// store directory always agree; machines with *different* historical
    /// records produce overlapping or incomplete splits, which `gm-run
    /// merge` rejects loudly — replicate the store snapshot across
    /// machines for cost-aware splits.
    pub fn partition(&self, costs: &[Option<u64>]) -> Vec<bool> {
        if self.is_full() {
            return vec![true; costs.len()];
        }
        if costs.iter().all(Option::is_none) {
            return (0..costs.len()).map(|i| self.owns(i)).collect();
        }
        let known_sum: u128 = costs.iter().flatten().map(|&c| u128::from(c)).sum();
        let known_n = costs.iter().flatten().count() as u128;
        let mean = (known_sum / known_n) as u64;
        let predicted = |i: usize| costs[i].unwrap_or(mean);
        let mut order: Vec<usize> = (0..costs.len()).collect();
        // Cost descending; index ascending breaks ties deterministically.
        order.sort_by(|&a, &b| predicted(b).cmp(&predicted(a)).then(a.cmp(&b)));
        let n = self.count as usize;
        // (total predicted cost, job count) per shard; ties go to the
        // lowest shard index, and the count term spreads runs of
        // equal-cost jobs instead of piling them onto one shard.
        let mut load = vec![(0u128, 0usize); n];
        let mut mine = vec![false; costs.len()];
        let me = (self.index - 1) as usize;
        for &i in &order {
            let best = (0..n)
                .min_by_key(|&k| (load[k].0, load[k].1, k))
                .expect("count >= 1");
            load[best].0 += u128::from(predicted(i));
            load[best].1 += 1;
            if best == me {
                mine[i] = true;
            }
        }
        mine
    }

    /// 1-based shard index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Total number of shards.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether this is the trivial single-shard partition.
    pub fn is_full(&self) -> bool {
        self.count == 1
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Cache outcome counts for one sweep run. Without a store every owned
/// job counts as a miss (it had to be simulated).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: usize,
    pub misses: usize,
    /// Store damage seen during the warm load: quarantined corrupt
    /// lines, or 1 when the whole file failed to read and the run
    /// degraded to a cold start. Misses on a damaged store are expected
    /// re-simulation, not a cache regression — `--expect-cached` warns
    /// instead of aborting when this is nonzero.
    pub corrupt: usize,
    /// Jobs reconstructed from the remote result service (a subset of
    /// `hits`: a remote hit lands in the local store and counts as
    /// cached, so `--expect-cached` passes on a warm-through-remote run).
    pub remote_hits: usize,
    /// Fresh results successfully pushed to the remote result service.
    pub remote_pushes: usize,
}

/// One finished job: the simulation result plus its store metadata.
#[derive(Debug)]
pub struct Job {
    pub result: MachineResult,
    /// Wall-clock of the simulation, µs. Cache hits report the wall of
    /// the run that originally produced the result, so store-backed
    /// outputs are reproducible byte for byte.
    pub wall_us: u64,
    /// Content address of the job (see [`gm_results::fingerprint`]).
    pub fingerprint: String,
    /// Whether the result was reconstructed from the store.
    pub cached: bool,
}

/// Why a supervised job ultimately failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The job panicked (its own bug, an injected fault, or the
    /// simulated-cycle deadline on [`SystemConfig`] firing).
    Panic,
    /// The job exceeded its per-job wall-clock budget.
    Timeout,
}

impl FailureKind {
    /// Stable lowercase name for reports and telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
        }
    }
}

/// One job that failed every attempt. The sweep completes around it:
/// its grid cell stays `None`, the report annotates the hole, and the
/// driver exits with the partial-success code (or fails fast under
/// [`Supervision::strict`]).
#[derive(Clone, Debug)]
pub struct JobFailure {
    /// Workload name.
    pub workload: String,
    /// Scheme column label.
    pub scheme: String,
    /// How the final attempt failed.
    pub kind: FailureKind,
    /// The panic message or budget description.
    pub message: String,
    /// Attempts made (1 + retries).
    pub attempts: u32,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}: {} after {} attempt(s): {}",
            self.workload,
            self.scheme,
            self.kind.name(),
            self.attempts,
            self.message
        )
    }
}

/// Fault-tolerance policy for supervised jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Supervision {
    /// Total attempts per job (1 + retries); at least 1.
    pub attempts: u32,
    /// Per-job wall-clock budget. Budgeted jobs run on a watchdog'd
    /// thread; `None` runs them inline (panic isolation only).
    pub budget: Option<Duration>,
    /// Fail the whole run on any job failure (after the sweep finishes,
    /// so completed work still lands in the store) instead of reporting
    /// partial success.
    pub strict: bool,
}

impl Default for Supervision {
    /// One retry, no budget, partial-success semantics: a transient
    /// fault heals invisibly, a persistent one costs one extra attempt
    /// and becomes a structured failure.
    fn default() -> Self {
        Self {
            attempts: 2,
            budget: None,
            strict: false,
        }
    }
}

/// How one attempt of a supervised job ended.
enum Attempt {
    Done(Box<MachineResult>),
    Panicked(String),
    TimedOut,
}

/// Renders a `catch_unwind` payload the way the default hook would.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Executes independent jobs across a fixed number of worker threads.
#[derive(Clone, Debug)]
pub struct Runner {
    jobs: usize,
    supervision: Supervision,
    faults: FaultPlan,
    /// Optional result-service client consulted between the local store
    /// and simulation (see [`Runner::with_remote`]).
    remote: Option<Arc<RemoteStore>>,
}

impl Runner {
    /// A runner with `jobs` workers; `0` selects
    /// [`Runner::default_jobs`].
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            Self::default_jobs()
        } else {
            jobs
        };
        Self {
            jobs,
            supervision: Supervision::default(),
            faults: FaultPlan::none(),
            remote: None,
        }
    }

    /// Attaches a remote result service consulted on every local cache
    /// miss (fetch before simulating, push after). The remote is purely
    /// an accelerator: every failure mode — unreachable, mid-operation
    /// crash, garbled responses — degrades to simulating locally, and
    /// the sweep's outputs are byte-identical with or without it.
    pub fn with_remote(mut self, remote: Arc<RemoteStore>) -> Self {
        self.remote = Some(remote);
        self
    }

    /// The attached remote result service, if any.
    pub fn remote(&self) -> Option<&RemoteStore> {
        self.remote.as_deref()
    }

    /// Replaces the supervision policy (attempts are clamped to >= 1).
    pub fn with_supervision(mut self, supervision: Supervision) -> Self {
        self.supervision = Supervision {
            attempts: supervision.attempts.max(1),
            ..supervision
        };
        self
    }

    /// Injects a deterministic [`FaultPlan`] into supervised jobs
    /// (testing only; see [`crate::fault`]).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The active supervision policy.
    pub fn supervision(&self) -> Supervision {
        self.supervision
    }

    /// Available hardware parallelism (1 if unknown).
    pub fn default_jobs() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item on the worker pool, returning results in
    /// input order regardless of completion order.
    ///
    /// `map` itself offers no isolation: a panicking `f` propagates out
    /// of the scope and fails the caller. Sweep jobs do not run bare on
    /// this pool — [`Runner::run_sweep_shard`] wraps each one in
    /// `catch_unwind`, budget, and retry (see [`Supervision`]) so a
    /// single bad job degrades to a [`JobFailure`] instead.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every slot")
            })
            .collect()
    }

    /// Runs one attempt of a job, isolated by `catch_unwind`; with a
    /// budget, the simulation runs on a watchdog'd thread that is left
    /// detached on timeout (Rust cannot kill a thread — the simulated-
    /// cycle deadline on [`SystemConfig`] bounds how long it lingers).
    fn attempt_job(
        &self,
        scheme: Scheme,
        unit: &WorkloadUnit,
        cfg: SystemConfig,
        fault: Option<FaultKind>,
    ) -> Attempt {
        let budget = self.supervision.budget;
        let body = move |unit: &WorkloadUnit| -> MachineResult {
            match fault {
                Some(FaultKind::Panic) => panic!("injected fault: panic"),
                Some(FaultKind::Delay(d)) => std::thread::sleep(d),
                // 10× the budget reliably trips the watchdog; without
                // one, a wedge degrades to a slow success instead of
                // hanging the suite forever.
                Some(FaultKind::Wedge) => std::thread::sleep(match budget {
                    Some(b) => b * 10,
                    None => Duration::from_secs(60),
                }),
                None => {}
            }
            run_unit(scheme, unit, cfg)
        };
        match budget {
            None => match catch_unwind(AssertUnwindSafe(|| body(unit))) {
                Ok(result) => Attempt::Done(Box::new(result)),
                Err(payload) => Attempt::Panicked(panic_message(payload)),
            },
            Some(limit) => {
                let unit = unit.clone();
                let (tx, rx) = mpsc::channel();
                let spawned = std::thread::Builder::new()
                    .name("gm-job".into())
                    .spawn(move || {
                        let outcome = catch_unwind(AssertUnwindSafe(|| body(&unit)));
                        // The watchdog may have timed out and dropped
                        // the receiver; nothing to do about it here.
                        let _ = tx.send(outcome);
                    });
                if let Err(e) = spawned {
                    return Attempt::Panicked(format!("cannot spawn job thread: {e}"));
                }
                match rx.recv_timeout(limit) {
                    Ok(Ok(result)) => Attempt::Done(Box::new(result)),
                    Ok(Err(payload)) => Attempt::Panicked(panic_message(payload)),
                    Err(_) => Attempt::TimedOut,
                }
            }
        }
    }

    /// Runs one job to completion under the supervision policy: up to
    /// [`Supervision::attempts`] tries, each panic-isolated and
    /// budget-watched, with a stderr warning (and a `job_retry`
    /// telemetry event) per retry. Returns the result and its
    /// simulation wall-clock, or the final failure.
    fn run_supervised(
        &self,
        experiment: &str,
        unit: &WorkloadUnit,
        scheme: Scheme,
        label: &str,
        cfg: SystemConfig,
        telemetry: Option<&Telemetry>,
    ) -> Result<(MachineResult, u64), JobFailure> {
        let attempts = self.supervision.attempts.max(1);
        let mut last = None;
        for attempt in 1..=attempts {
            let fault = self.faults.fault_for(unit.name, label, attempt);
            let started = Instant::now();
            match self.attempt_job(scheme, unit, cfg, fault) {
                Attempt::Done(result) => {
                    return Ok((*result, started.elapsed().as_micros() as u64))
                }
                Attempt::Panicked(message) => last = Some((FailureKind::Panic, message)),
                Attempt::TimedOut => {
                    let budget = self.supervision.budget.unwrap_or_default();
                    last = Some((
                        FailureKind::Timeout,
                        format!("exceeded the per-job budget of {budget:?}"),
                    ));
                }
            }
            let (kind, message) = last.as_ref().expect("failure just recorded");
            if attempt < attempts {
                eprintln!(
                    "warning: {experiment}: job {}/{label} attempt {attempt}/{attempts} \
                     failed ({}: {message}); retrying",
                    unit.name,
                    kind.name()
                );
                if let Some(tel) = telemetry {
                    tel.emit("job_retry", |j| {
                        j.set("experiment", experiment)
                            .set("workload", unit.name)
                            .set("scheme", label)
                            .set("attempt", u64::from(attempt))
                            .set("kind", kind.name());
                    });
                }
            }
        }
        let (kind, message) = last.expect("at least one attempt ran");
        Err(JobFailure {
            workload: unit.name.to_owned(),
            scheme: label.to_owned(),
            kind,
            message,
            attempts,
        })
    }

    /// Expands `sweep` at `scale` into (workload × scheme) jobs, runs
    /// this shard's slice of them — consulting `store` before simulating
    /// and appending fresh results to it — and returns the job grid.
    ///
    /// Sharded runs partition cost-aware when the store holds
    /// *historical* records predicting job costs (see
    /// `predicted_costs` and [`Shard::partition`]); otherwise the
    /// split is the historical round-robin.
    ///
    /// `experiment` names the store file. A store whose record fails to
    /// reconstruct (corrupt line, old format version) degrades to a
    /// cache miss and re-simulates; the subsequent append supersedes the
    /// bad record, so the store heals itself.
    ///
    /// With `telemetry`, each job emits a `job_start`/`job_end` span
    /// (fingerprint, cache outcome, wall-clock) as it runs; spans from
    /// parallel workers may interleave, but every field is independent
    /// of the worker count (see [`crate::telemetry`]).
    ///
    /// Jobs run under the runner's [`Supervision`]: one that fails
    /// every attempt lands in [`SweepRun::failures`] (its grid cell
    /// stays `None`, closed by a `job_fail` telemetry event) and the
    /// sweep completes around it. Under [`Supervision::strict`] the
    /// whole call errors instead — after the sweep finishes, so the
    /// surviving jobs still reach the store. A store that cannot be
    /// *read* degrades to a cold run (with a stderr warning) rather
    /// than failing: re-simulation always beats aborting.
    pub fn run_sweep_shard(
        &self,
        sweep: &Sweep,
        scale: Scale,
        experiment: &str,
        store: Option<&ResultStore>,
        shard: Shard,
        telemetry: Option<&Telemetry>,
    ) -> Result<SweepRun, String> {
        let set = sweep.workload_set(scale);
        let nschemes = sweep.schemes.len();
        let all: Vec<(usize, usize)> = (0..set.units.len())
            .flat_map(|u| (0..nschemes).map(move |s| (u, s)))
            .collect();
        let mut store_corrupt = 0usize;
        let cached: HashMap<String, gm_stats::Json> = match store {
            Some(st) => match st.load(experiment) {
                Ok(shard) => {
                    store_corrupt = shard.corrupt;
                    shard.records
                }
                Err(e) => {
                    eprintln!(
                        "warning: cannot read store for {experiment} ({e}); \
                         degrading to a cold run"
                    );
                    store_corrupt = 1;
                    HashMap::new()
                }
            },
            None => HashMap::new(),
        };
        // With a store, fingerprint every job up front (in parallel):
        // the cache lookup needs the owned ones anyway, and the
        // cost-aware partitioner needs the full current set to recognise
        // historical records. A storeless run computes only its own
        // shard's fingerprints inside the job closure, as before.
        let fingerprints: Vec<Option<String>> = if store.is_some() {
            self.map(&all, |&(u, s)| {
                Some(job_fingerprint(
                    &set.units[u],
                    &sweep.schemes[s].scheme,
                    scale,
                    &sweep.config,
                ))
            })
        } else {
            vec![None; all.len()]
        };
        let ownership = if store.is_some() && !shard.is_full() {
            let costs = predicted_costs(&all, &set, sweep, &fingerprints, &cached);
            shard.partition(&costs)
        } else {
            (0..all.len()).map(|i| shard.owns(i)).collect()
        };
        let owned: Vec<(usize, usize, usize)> = all
            .iter()
            .enumerate()
            .filter(|&(flat, _)| ownership[flat])
            .map(|(flat, &(u, s))| (flat, u, s))
            .collect();
        // Per-sweep remote outcome tallies (the RemoteStore's own
        // counters span the whole process, not one experiment).
        let remote_hit_count = AtomicUsize::new(0);
        let remote_push_count = AtomicUsize::new(0);
        let jobs = self.map(&owned, |&(flat, u, s)| {
            let unit = &set.units[u];
            let scheme = sweep.schemes[s].scheme;
            let label = sweep.schemes[s].label.as_str();
            let fingerprint = fingerprints[flat]
                .clone()
                .unwrap_or_else(|| job_fingerprint(unit, &scheme, scale, &sweep.config));
            if let Some(tel) = telemetry {
                tel.emit("job_start", |j| {
                    j.set("experiment", experiment)
                        .set("workload", unit.name)
                        .set("scheme", label);
                });
            }
            let outcome = (|| -> Result<Job, JobFailure> {
                if let Some(record) = cached.get(&fingerprint) {
                    let reconstructed = result_from_record(record, unit.name, scheme.name())
                        .and_then(|result| Ok((result, record_wall_us(record)?)));
                    if let Ok((result, wall_us)) = reconstructed {
                        return Ok(Job {
                            result,
                            wall_us,
                            fingerprint: fingerprint.clone(),
                            cached: true,
                        });
                    }
                }
                // Local miss: ask the remote service before simulating.
                // A verified remote record replays exactly like a local
                // hit (its original wall_us included), and is appended
                // locally so the next run hits without the network.
                if let Some(remote) = &self.remote {
                    if let Some(record) = remote.get(experiment, &fingerprint) {
                        let reconstructed = result_from_record(&record, unit.name, scheme.name())
                            .and_then(|result| Ok((result, record_wall_us(&record)?)));
                        if let Ok((result, wall_us)) = reconstructed {
                            if let Some(tel) = telemetry {
                                tel.emit("remote_hit", |j| {
                                    j.set("experiment", experiment)
                                        .set("workload", unit.name)
                                        .set("scheme", label)
                                        .set("fingerprint", fingerprint.as_str());
                                });
                            }
                            if let Some(st) = store {
                                if let Err(e) = st.append(experiment, &record) {
                                    eprintln!(
                                        "warning: cannot append to store for {experiment}: {e}"
                                    );
                                }
                            }
                            remote_hit_count.fetch_add(1, Ordering::Relaxed);
                            return Ok(Job {
                                result,
                                wall_us,
                                fingerprint: fingerprint.clone(),
                                cached: true,
                            });
                        }
                        // Verified transport, but the record fails schema
                        // reconstruction (wrong identity, old version):
                        // fall through and re-simulate.
                    }
                    if let Some(tel) = telemetry {
                        tel.emit("remote_miss", |j| {
                            j.set("experiment", experiment)
                                .set("workload", unit.name)
                                .set("scheme", label)
                                .set("fingerprint", fingerprint.as_str());
                        });
                    }
                }
                let (result, wall_us) =
                    self.run_supervised(experiment, unit, scheme, label, sweep.config, telemetry)?;
                if store.is_some() || self.remote.is_some() {
                    let record = job_record(unit.name, label, &result, wall_us, &fingerprint);
                    if let Some(st) = store {
                        if let Err(e) = st.append(experiment, &record) {
                            // Losing cache warmth is not worth failing the run.
                            eprintln!("warning: cannot append to store for {experiment}: {e}");
                        }
                    }
                    if let Some(remote) = &self.remote {
                        if remote.put(experiment, &record) {
                            remote_push_count.fetch_add(1, Ordering::Relaxed);
                            if let Some(tel) = telemetry {
                                tel.emit("remote_push", |j| {
                                    j.set("experiment", experiment)
                                        .set("workload", unit.name)
                                        .set("scheme", label)
                                        .set("fingerprint", fingerprint.as_str());
                                });
                            }
                        }
                    }
                }
                Ok(Job {
                    result,
                    wall_us,
                    fingerprint: fingerprint.clone(),
                    cached: false,
                })
            })();
            if let Some(tel) = telemetry {
                match &outcome {
                    Ok(job) => tel.emit("job_end", |j| {
                        j.set("experiment", experiment)
                            .set("workload", unit.name)
                            .set("scheme", label)
                            .set("fingerprint", job.fingerprint.as_str())
                            .set("cached", job.cached)
                            .set("wall_us", job.wall_us);
                    }),
                    Err(fail) => tel.emit("job_fail", |j| {
                        j.set("experiment", experiment)
                            .set("workload", unit.name)
                            .set("scheme", label)
                            .set("kind", fail.kind.name())
                            .set("attempts", u64::from(fail.attempts))
                            .set("error", fail.message.as_str());
                    }),
                }
            }
            outcome
        });
        let mut rows: Vec<Vec<Option<Job>>> = (0..set.units.len())
            .map(|_| (0..nschemes).map(|_| None).collect())
            .collect();
        // The breaker trip is reported once, after the parallel map:
        // with no job spans open the event's position in the telemetry
        // stream is deterministic regardless of worker count.
        if let Some(remote) = &self.remote {
            if remote.take_degradation_event() {
                if let Some(tel) = telemetry {
                    tel.emit("remote_degraded", |j| {
                        j.set("experiment", experiment).set("addr", remote.addr());
                    });
                }
            }
        }
        let mut cache = CacheStats {
            corrupt: store_corrupt,
            remote_hits: remote_hit_count.into_inner(),
            remote_pushes: remote_push_count.into_inner(),
            ..CacheStats::default()
        };
        let mut failures = Vec::new();
        for (&(_, u, s), outcome) in owned.iter().zip(jobs) {
            match outcome {
                Ok(job) => {
                    if job.cached {
                        cache.hits += 1;
                    } else {
                        cache.misses += 1;
                    }
                    rows[u][s] = Some(job);
                }
                Err(failure) => failures.push(failure),
            }
        }
        if self.supervision.strict {
            if let Some(first) = failures.first() {
                return Err(format!(
                    "strict mode: {} job(s) failed; first: {first}",
                    failures.len()
                ));
            }
        }
        Ok(SweepRun {
            set,
            rows,
            cache,
            failures,
        })
    }

    /// Runs the complete sweep with no store: the cache-free,
    /// single-shard fast path used by tests and benches. Panics if any
    /// job fails — callers of this path want a loud failure, not a
    /// partial grid.
    pub fn run_sweep(&self, sweep: &Sweep, scale: Scale) -> SweepResults {
        let run = self
            .run_sweep_shard(sweep, scale, "", None, Shard::full(), None)
            .expect("storeless non-strict runs cannot fail");
        if let Some(first) = run.failures.first() {
            panic!("sweep job failed: {first}");
        }
        run.into_results()
    }
}

impl Default for Runner {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Predicted wall-clock per job for the cost-aware partitioner.
///
/// Predictions come from *historical* records only: records in the
/// experiment's store file whose fingerprint no current job produces —
/// results from earlier scales, configs, or code versions — averaged by
/// (workload, scheme label). Two properties fall out of that choice:
///
/// * Current-fingerprint records are exactly the cache hits (a hit
///   replays in microseconds, costing its shard nothing) and exactly
///   what a sibling shard's run can append. Excluding them keeps hits
///   from polluting the balance *and* makes the partition
///   append-invariant: sequential shard runs against one store
///   directory read identical cost inputs and split identically.
/// * A store warmed at a cheaper scale, or invalidated by a config or
///   code change, still predicts every job's *relative* cost — which is
///   all greedy longest-processing-time needs.
fn predicted_costs(
    all: &[(usize, usize)],
    set: &WorkloadSet,
    sweep: &Sweep,
    fingerprints: &[Option<String>],
    cached: &HashMap<String, gm_stats::Json>,
) -> Vec<Option<u64>> {
    let current: std::collections::HashSet<&str> =
        fingerprints.iter().flatten().map(String::as_str).collect();
    let mut sums: HashMap<(&str, &str), (u128, u64)> = HashMap::new();
    for (fp, record) in cached {
        if current.contains(fp.as_str()) {
            continue;
        }
        let (Some(workload), Some(label), Ok(us)) = (
            record.get("workload").and_then(gm_stats::Json::as_str),
            record.get("scheme").and_then(gm_stats::Json::as_str),
            record_wall_us(record),
        ) else {
            continue;
        };
        let e = sums.entry((workload, label)).or_insert((0, 0));
        e.0 += u128::from(us);
        e.1 += 1;
    }
    all.iter()
        .map(|&(u, s)| {
            sums.get(&(set.units[u].name, sweep.schemes[s].label.as_str()))
                .map(|&(sum, n)| (sum / u128::from(n)) as u64)
        })
        .collect()
}

/// Raw results of a sweep: `rows[workload][scheme]`, aligned with the
/// workload set's unit order and the sweep's scheme lineup.
#[derive(Debug)]
pub struct SweepResults {
    pub set: WorkloadSet,
    pub rows: Vec<Vec<MachineResult>>,
}

/// The job grid a (possibly sharded, possibly cached) sweep run
/// produced: `rows[workload][scheme]` is `None` for jobs owned by other
/// shards — or jobs that exhausted their supervised attempts, which
/// appear in `failures` instead.
#[derive(Debug)]
pub struct SweepRun {
    pub set: WorkloadSet,
    pub rows: Vec<Vec<Option<Job>>>,
    pub cache: CacheStats,
    /// Jobs that failed every attempt (empty on a fault-free run).
    pub failures: Vec<JobFailure>,
}

impl SweepRun {
    /// Number of jobs this run owns (ran or reconstructed).
    pub fn owned_jobs(&self) -> usize {
        self.rows.iter().flatten().filter(|j| j.is_some()).count()
    }

    /// Total number of jobs in the full grid.
    pub fn total_jobs(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Total wall-clock spent actually simulating (cache misses), µs.
    pub fn sim_wall_us(&self) -> u64 {
        self.rows
            .iter()
            .flatten()
            .flatten()
            .filter(|j| !j.cached)
            .map(|j| j.wall_us)
            .sum()
    }

    /// Total simulated cycles across the jobs that were actually
    /// simulated (cache misses). Together with [`SweepRun::sim_wall_us`]
    /// this yields the engine's simulated-cycles-per-second throughput.
    pub fn sim_cycles(&self) -> u64 {
        self.rows
            .iter()
            .flatten()
            .flatten()
            .filter(|j| !j.cached)
            .map(|j| j.result.cycles)
            .sum()
    }

    /// The slowest simulated job as (`workload/scheme`, µs).
    pub fn slowest_sim(&self, sweep: &Sweep) -> Option<(String, u64)> {
        let mut best: Option<(String, u64)> = None;
        for (unit, row) in self.set.units.iter().zip(&self.rows) {
            for (col, job) in sweep.schemes.iter().zip(row) {
                let Some(job) = job else { continue };
                let beats = match &best {
                    None => true,
                    Some((_, us)) => job.wall_us > *us,
                };
                if !job.cached && beats {
                    best = Some((format!("{}/{}", unit.name, col.label), job.wall_us));
                }
            }
        }
        best
    }

    /// Collapses a complete (single-shard) run into plain results.
    ///
    /// # Panics
    ///
    /// Panics if any job is missing — callers must not use this on
    /// partial shard runs.
    pub fn into_results(self) -> SweepResults {
        let rows = self
            .rows
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|j| j.expect("into_results on a partial shard run").result)
                    .collect()
            })
            .collect();
        SweepResults {
            set: self.set,
            rows,
        }
    }

    /// The rows every scheme completed, as plain results, plus the
    /// names of workloads whose rows were dropped because at least one
    /// of their jobs is missing (failed, or owned by another shard).
    /// Reports render the complete rows and annotate the omissions; on
    /// a fault-free single-shard run nothing is dropped and the output
    /// matches [`SweepRun::to_results`] exactly.
    pub fn complete_results(&self) -> (SweepResults, Vec<String>) {
        let mut units = Vec::new();
        let mut rows = Vec::new();
        let mut omitted = Vec::new();
        for (unit, row) in self.set.units.iter().zip(&self.rows) {
            if row.iter().all(Option::is_some) {
                units.push(unit.clone());
                rows.push(
                    row.iter()
                        .map(|j| j.as_ref().expect("checked complete").result.clone())
                        .collect(),
                );
            } else {
                omitted.push(unit.name.to_owned());
            }
        }
        let mut set = self.set.clone();
        set.units = units;
        (SweepResults { set, rows }, omitted)
    }

    /// Borrows the grid as plain results, panicking on missing jobs.
    pub fn to_results(&self) -> SweepResults {
        SweepResults {
            set: self.set.clone(),
            rows: self
                .rows
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|j| {
                            j.as_ref()
                                .expect("to_results on a partial shard run")
                                .result
                                .clone()
                        })
                        .collect()
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 4, 16] {
            let got = Runner::new(jobs).map(&items, |&x| x * x);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn zero_jobs_selects_available_parallelism() {
        assert_eq!(Runner::new(0).jobs(), Runner::default_jobs());
        assert!(Runner::new(0).jobs() >= 1);
        assert_eq!(Runner::new(3).jobs(), 3);
    }

    #[test]
    fn map_on_empty_input_is_empty() {
        let got: Vec<u64> = Runner::new(4).map(&[] as &[u64], |&x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn shard_parsing_is_strict() {
        assert_eq!(Shard::parse("1/1").unwrap(), Shard::full());
        let s = Shard::parse("2/4").unwrap();
        assert_eq!((s.index(), s.count()), (2, 4));
        assert_eq!(s.to_string(), "2/4");
        assert!(!s.is_full());
        for bad in ["", "2", "0/4", "5/4", "2/0", "a/4", "2/b", "1/2/3", "-1/4"] {
            assert!(Shard::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn shards_partition_any_job_list() {
        for n in 1..=7u32 {
            let shards: Vec<Shard> = (1..=n).map(|k| Shard::new(k, n).unwrap()).collect();
            for job in 0..100usize {
                let owners = shards.iter().filter(|s| s.owns(job)).count();
                assert_eq!(owners, 1, "job {job} must have exactly one of {n} owners");
            }
        }
    }

    /// Deterministic pseudo-random cost vectors (SplitMix64) with a mix
    /// of known and unknown entries.
    fn random_costs(seed: u64, len: usize) -> Vec<Option<u64>> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        (0..len)
            .map(|_| {
                let x = next();
                (x % 4 != 0).then_some(x % 1_000_000)
            })
            .collect()
    }

    #[test]
    fn cost_aware_partition_is_disjoint_covering_and_deterministic() {
        for n in 1..=6u32 {
            for seed in 0..20u64 {
                let len = 1 + (seed as usize * 7) % 40;
                let costs = random_costs(seed, len);
                let parts: Vec<Vec<bool>> = (1..=n)
                    .map(|k| Shard::new(k, n).unwrap().partition(&costs))
                    .collect();
                for job in 0..len {
                    let owners = parts.iter().filter(|p| p[job]).count();
                    assert_eq!(owners, 1, "job {job}, {n} shards, seed {seed}");
                }
                // Same inputs, same split — every machine of an N-way
                // run computes the partition independently.
                for k in 1..=n {
                    let again = Shard::new(k, n).unwrap().partition(&costs);
                    assert_eq!(again, parts[(k - 1) as usize]);
                }
            }
        }
    }

    #[test]
    fn partition_without_costs_is_the_round_robin_split() {
        let costs = vec![None; 17];
        for n in 1..=4u32 {
            for k in 1..=n {
                let shard = Shard::new(k, n).unwrap();
                let expect: Vec<bool> = (0..17).map(|i| shard.owns(i)).collect();
                assert_eq!(shard.partition(&costs), expect, "shard {k}/{n}");
            }
        }
    }

    #[test]
    fn lpt_partition_balances_predicted_cost() {
        // One 1000µs job and six 10µs jobs on two shards: round-robin
        // would put three small jobs with the big one; LPT gives the big
        // job a shard (nearly) to itself.
        let costs: Vec<Option<u64>> = [1000u64, 10, 10, 10, 10, 10, 10]
            .iter()
            .map(|&c| Some(c))
            .collect();
        let s1 = Shard::new(1, 2).unwrap().partition(&costs);
        let s2 = Shard::new(2, 2).unwrap().partition(&costs);
        let cost_of = |part: &[bool]| -> u64 {
            part.iter()
                .zip(&costs)
                .filter(|(own, _)| **own)
                .map(|(_, c)| c.unwrap())
                .sum()
        };
        let (a, b) = (cost_of(&s1), cost_of(&s2));
        assert_eq!(a + b, 1060);
        assert_eq!(a.max(b), 1000, "the big job's shard takes nothing else");
        // Unknown costs predict at the mean of known ones and spread by
        // job count on load ties.
        let mixed: Vec<Option<u64>> = vec![Some(100), None, None, None];
        let m1 = Shard::new(1, 2).unwrap().partition(&mixed);
        let m2 = Shard::new(2, 2).unwrap().partition(&mixed);
        assert_eq!(m1.iter().filter(|o| **o).count(), 2);
        assert_eq!(m2.iter().filter(|o| **o).count(), 2);
    }

    #[test]
    fn full_shard_owns_everything_regardless_of_costs() {
        let costs = random_costs(3, 9);
        assert_eq!(Shard::full().partition(&costs), vec![true; 9]);
    }
}
