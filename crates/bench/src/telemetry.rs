//! Append-only JSON-lines run telemetry for `gm-run` sweeps.
//!
//! With `--telemetry FILE`, the driver appends one JSON object per line
//! to `FILE` as the run progresses: paired span events for the run, each
//! experiment, and each (workload × scheme) job, carrying fingerprints,
//! cache outcomes, and simulation wall-clock. The stream is the future
//! `gm-serve` wire contract, so it is deliberately narrow:
//!
//! * every line parses with the strict [`gm_stats::Json`] parser;
//! * spans balance — `run_start`/`run_end` bracket the file,
//!   `experiment_start`/`experiment_end` nest inside the run, and every
//!   `job_start` is closed by a `job_end` (the job produced a result)
//!   or a `job_fail` (supervision exhausted its attempts) with the same
//!   (experiment, workload, scheme) identity before its experiment
//!   ends; `job_retry` events may appear inside an open job span and
//!   close nothing;
//! * remote result-service outcomes nest the same way: `remote_hit`,
//!   `remote_miss`, and `remote_push` appear inside an open job span;
//!   `remote_degraded` (the circuit breaker tripped, the run continued
//!   local-only) appears at most once per experiment, after every job
//!   span has closed;
//! * no field depends on the worker count, so `--jobs 1` and `--jobs N`
//!   emit the same event *set* (job events may interleave differently);
//! * there are no time-of-day stamps — `wall_us` is simulation
//!   wall-clock, replayed from the store for cache hits, so a warm run's
//!   stream is deterministic.
//!
//! Stdout stays byte-comparable: telemetry goes only to the named file.
//! [`validate`] is the strict checker CI (and `gm-run trace
//! --validate-telemetry`) runs over emitted streams.

use gm_stats::Json;
use std::collections::HashSet;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::Mutex;

/// A shared, thread-safe JSON-lines event writer. Worker threads emit
/// job spans through one `Telemetry` behind a mutex; write errors are
/// latched and reported once by [`Telemetry::finish`] instead of
/// failing (or interleaving warnings into) the run.
pub struct Telemetry {
    inner: Mutex<Inner>,
}

struct Inner {
    out: BufWriter<File>,
    err: Option<String>,
}

impl Telemetry {
    /// Creates (truncating) the telemetry file at `path`.
    pub fn create(path: &str) -> Result<Self, String> {
        let file = File::create(path)
            .map_err(|e| format!("cannot create telemetry file {path:?}: {e}"))?;
        Ok(Self {
            inner: Mutex::new(Inner {
                out: BufWriter::new(file),
                err: None,
            }),
        })
    }

    /// Appends one event line. `fill` adds the event's fields to an
    /// object whose first key is always `"event": name`.
    pub fn emit(&self, name: &str, fill: impl FnOnce(&mut Json)) {
        let mut j = Json::object();
        j.set("event", name);
        fill(&mut j);
        let line = j.render() + "\n";
        let mut inner = self.inner.lock().expect("telemetry writer poisoned");
        if inner.err.is_none() {
            if let Err(e) = inner.out.write_all(line.as_bytes()) {
                inner.err = Some(e.to_string());
            }
        }
    }

    /// Flushes the stream and reports the first write error, if any.
    pub fn finish(&self) -> Result<(), String> {
        let mut inner = self.inner.lock().expect("telemetry writer poisoned");
        if let Some(e) = inner.err.take() {
            return Err(format!("telemetry write failed: {e}"));
        }
        inner
            .out
            .flush()
            .map_err(|e| format!("telemetry flush failed: {e}"))
    }
}

/// What [`validate`] found in a well-formed telemetry stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySummary {
    /// Total event lines.
    pub events: usize,
    /// Closed experiment spans.
    pub experiments: usize,
    /// Job spans closed by `job_end` (the job produced a result).
    pub jobs: usize,
    /// Job spans closed by `job_fail` (the job exhausted supervision).
    pub failed: usize,
    /// `job_retry` events (supervised attempts that were retried).
    pub retries: usize,
    /// Remote result-service outcomes (`remote_hit`, `remote_miss`,
    /// `remote_push`).
    pub remote: usize,
    /// `remote_degraded` events (the circuit breaker tripped and the
    /// run continued local-only).
    pub degraded: usize,
}

fn field<'a>(j: &'a Json, line: usize, key: &str) -> Result<&'a Json, String> {
    j.get(key)
        .ok_or_else(|| format!("line {line}: missing field {key:?}"))
}

fn str_field(j: &Json, line: usize, key: &str) -> Result<String, String> {
    field(j, line, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("line {line}: field {key:?} is not a string"))
}

fn u64_field(j: &Json, line: usize, key: &str) -> Result<u64, String> {
    field(j, line, key)?
        .as_u64()
        .ok_or_else(|| format!("line {line}: field {key:?} is not an unsigned integer"))
}

fn bool_field(j: &Json, line: usize, key: &str) -> Result<bool, String> {
    field(j, line, key)?
        .as_bool()
        .ok_or_else(|| format!("line {line}: field {key:?} is not a boolean"))
}

/// Strictly validates a telemetry stream: every line parses with the
/// strict JSON parser, carries a known `event`, and the run /
/// experiment / job spans nest and balance. Job spans may interleave
/// (parallel workers) but must close within their experiment.
pub fn validate(text: &str) -> Result<TelemetrySummary, String> {
    let mut summary = TelemetrySummary::default();
    let mut run_open = false;
    let mut run_closed = false;
    let mut experiment: Option<String> = None;
    let mut open_jobs: HashSet<(String, String)> = HashSet::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let j = Json::parse(raw).map_err(|e| format!("line {line}: {e}"))?;
        let name = str_field(&j, line, "event")?;
        if run_closed {
            return Err(format!("line {line}: event after run_end"));
        }
        match name.as_str() {
            "run_start" => {
                if run_open || summary.events > 0 {
                    return Err(format!("line {line}: run_start is not the first event"));
                }
                str_field(&j, line, "program")?;
                str_field(&j, line, "scale")?;
                run_open = true;
            }
            "run_end" => {
                if !run_open {
                    return Err(format!("line {line}: run_end without run_start"));
                }
                if experiment.is_some() {
                    return Err(format!("line {line}: run_end inside an open experiment"));
                }
                u64_field(&j, line, "experiments")?;
                run_open = false;
                run_closed = true;
            }
            "experiment_start" => {
                if !run_open {
                    return Err(format!("line {line}: experiment_start outside a run"));
                }
                if let Some(open) = &experiment {
                    return Err(format!(
                        "line {line}: experiment_start while {open:?} is still open"
                    ));
                }
                experiment = Some(str_field(&j, line, "experiment")?);
            }
            "experiment_end" => {
                let name = str_field(&j, line, "experiment")?;
                if experiment.as_deref() != Some(name.as_str()) {
                    return Err(format!(
                        "line {line}: experiment_end for {name:?} does not match the open \
                         experiment {experiment:?}"
                    ));
                }
                if let Some((w, s)) = open_jobs.iter().next() {
                    return Err(format!(
                        "line {line}: experiment_end with job {w}/{s} still open"
                    ));
                }
                for key in ["jobs", "hits", "misses", "sim_wall_us"] {
                    u64_field(&j, line, key)?;
                }
                experiment = None;
                summary.experiments += 1;
            }
            "job_start" => {
                let exp = str_field(&j, line, "experiment")?;
                if experiment.as_deref() != Some(exp.as_str()) {
                    return Err(format!(
                        "line {line}: job_start for experiment {exp:?} outside its span"
                    ));
                }
                let id = (
                    str_field(&j, line, "workload")?,
                    str_field(&j, line, "scheme")?,
                );
                if !open_jobs.insert(id.clone()) {
                    return Err(format!(
                        "line {line}: duplicate job_start for {}/{}",
                        id.0, id.1
                    ));
                }
            }
            "job_end" => {
                let exp = str_field(&j, line, "experiment")?;
                if experiment.as_deref() != Some(exp.as_str()) {
                    return Err(format!(
                        "line {line}: job_end for experiment {exp:?} outside its span"
                    ));
                }
                let id = (
                    str_field(&j, line, "workload")?,
                    str_field(&j, line, "scheme")?,
                );
                if !open_jobs.remove(&id) {
                    return Err(format!(
                        "line {line}: job_end without job_start for {}/{}",
                        id.0, id.1
                    ));
                }
                str_field(&j, line, "fingerprint")?;
                bool_field(&j, line, "cached")?;
                u64_field(&j, line, "wall_us")?;
                summary.jobs += 1;
            }
            "job_retry" => {
                let exp = str_field(&j, line, "experiment")?;
                if experiment.as_deref() != Some(exp.as_str()) {
                    return Err(format!(
                        "line {line}: job_retry for experiment {exp:?} outside its span"
                    ));
                }
                let id = (
                    str_field(&j, line, "workload")?,
                    str_field(&j, line, "scheme")?,
                );
                if !open_jobs.contains(&id) {
                    return Err(format!(
                        "line {line}: job_retry without an open job for {}/{}",
                        id.0, id.1
                    ));
                }
                u64_field(&j, line, "attempt")?;
                str_field(&j, line, "kind")?;
                summary.retries += 1;
            }
            // Remote result-service outcomes: hit/miss/push happen while
            // the job's span is open; a breaker trip is reported once per
            // experiment, after every job span has closed.
            "remote_hit" | "remote_miss" | "remote_push" => {
                let exp = str_field(&j, line, "experiment")?;
                if experiment.as_deref() != Some(exp.as_str()) {
                    return Err(format!(
                        "line {line}: {name} for experiment {exp:?} outside its span"
                    ));
                }
                let id = (
                    str_field(&j, line, "workload")?,
                    str_field(&j, line, "scheme")?,
                );
                if !open_jobs.contains(&id) {
                    return Err(format!(
                        "line {line}: {name} without an open job for {}/{}",
                        id.0, id.1
                    ));
                }
                str_field(&j, line, "fingerprint")?;
                summary.remote += 1;
            }
            "remote_degraded" => {
                let exp = str_field(&j, line, "experiment")?;
                if experiment.as_deref() != Some(exp.as_str()) {
                    return Err(format!(
                        "line {line}: remote_degraded for experiment {exp:?} outside its span"
                    ));
                }
                if let Some((w, s)) = open_jobs.iter().next() {
                    return Err(format!(
                        "line {line}: remote_degraded with job {w}/{s} still open"
                    ));
                }
                str_field(&j, line, "addr")?;
                summary.degraded += 1;
            }
            "job_fail" => {
                let exp = str_field(&j, line, "experiment")?;
                if experiment.as_deref() != Some(exp.as_str()) {
                    return Err(format!(
                        "line {line}: job_fail for experiment {exp:?} outside its span"
                    ));
                }
                let id = (
                    str_field(&j, line, "workload")?,
                    str_field(&j, line, "scheme")?,
                );
                if !open_jobs.remove(&id) {
                    return Err(format!(
                        "line {line}: job_fail without job_start for {}/{}",
                        id.0, id.1
                    ));
                }
                str_field(&j, line, "kind")?;
                u64_field(&j, line, "attempts")?;
                str_field(&j, line, "error")?;
                summary.failed += 1;
            }
            other => return Err(format!("line {line}: unknown event {other:?}")),
        }
        summary.events += 1;
    }
    if summary.events == 0 {
        return Err("empty telemetry stream".into());
    }
    if !run_closed {
        return Err("stream ends without run_end".into());
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(event: &str, fields: &[(&str, Json)]) -> String {
        let mut j = Json::object();
        j.set("event", event);
        for (k, v) in fields {
            j.set(k, v.clone());
        }
        j.render()
    }

    fn job_fields(exp: &str, w: &str, s: &str) -> Vec<(&'static str, Json)> {
        vec![
            ("experiment", Json::from(exp)),
            ("workload", Json::from(w)),
            ("scheme", Json::from(s)),
        ]
    }

    fn well_formed() -> String {
        let mut end = job_fields("fig6", "mcf", "GhostMinion");
        end.extend([
            ("fingerprint", Json::from("abc")),
            ("cached", Json::from(true)),
            ("wall_us", Json::from(12u64)),
        ]);
        [
            line(
                "run_start",
                &[
                    ("program", Json::from("gm-run")),
                    ("scale", Json::from("test")),
                ],
            ),
            line("experiment_start", &[("experiment", Json::from("fig6"))]),
            line("job_start", &job_fields("fig6", "mcf", "GhostMinion")),
            line("job_end", &end),
            line(
                "experiment_end",
                &[
                    ("experiment", Json::from("fig6")),
                    ("jobs", Json::from(1u64)),
                    ("hits", Json::from(1u64)),
                    ("misses", Json::from(0u64)),
                    ("sim_wall_us", Json::from(0u64)),
                ],
            ),
            line("run_end", &[("experiments", Json::from(1u64))]),
        ]
        .join("\n")
    }

    #[test]
    fn validates_a_balanced_stream() {
        let s = validate(&well_formed()).expect("stream validates");
        assert_eq!(s.events, 6);
        assert_eq!(s.experiments, 1);
        assert_eq!(s.jobs, 1);
    }

    #[test]
    fn validates_retry_and_fail_spans() {
        let mut retry = job_fields("fig6", "mcf", "GhostMinion");
        retry.extend([("attempt", Json::from(1u64)), ("kind", Json::from("panic"))]);
        let mut fail = job_fields("fig6", "mcf", "GhostMinion");
        fail.extend([
            ("kind", Json::from("panic")),
            ("attempts", Json::from(2u64)),
            ("error", Json::from("injected fault: panic")),
        ]);
        let stream = [
            line(
                "run_start",
                &[
                    ("program", Json::from("gm-run")),
                    ("scale", Json::from("test")),
                ],
            ),
            line("experiment_start", &[("experiment", Json::from("fig6"))]),
            line("job_start", &job_fields("fig6", "mcf", "GhostMinion")),
            line("job_retry", &retry.clone()),
            line("job_fail", &fail.clone()),
            line(
                "experiment_end",
                &[
                    ("experiment", Json::from("fig6")),
                    ("jobs", Json::from(1u64)),
                    ("hits", Json::from(0u64)),
                    ("misses", Json::from(1u64)),
                    ("sim_wall_us", Json::from(0u64)),
                ],
            ),
            line("run_end", &[("experiments", Json::from(1u64))]),
        ]
        .join("\n");
        let s = validate(&stream).expect("fail span validates");
        assert_eq!(s.jobs, 0);
        assert_eq!(s.failed, 1);
        assert_eq!(s.retries, 1);

        // job_retry outside an open job span is rejected.
        let orphan_retry = [
            line(
                "run_start",
                &[
                    ("program", Json::from("gm-run")),
                    ("scale", Json::from("test")),
                ],
            ),
            line("experiment_start", &[("experiment", Json::from("fig6"))]),
            line("job_retry", &retry),
        ]
        .join("\n");
        let e = validate(&orphan_retry).unwrap_err();
        assert!(e.contains("without an open job"), "{e}");

        // job_fail without job_start is rejected.
        let orphan_fail = [
            line(
                "run_start",
                &[
                    ("program", Json::from("gm-run")),
                    ("scale", Json::from("test")),
                ],
            ),
            line("experiment_start", &[("experiment", Json::from("fig6"))]),
            line("job_fail", &fail),
        ]
        .join("\n");
        let e = validate(&orphan_fail).unwrap_err();
        assert!(e.contains("without job_start"), "{e}");
    }

    #[test]
    fn validates_remote_spans() {
        let mut remote = job_fields("fig6", "mcf", "GhostMinion");
        remote.push(("fingerprint", Json::from("abc")));
        let mut end = job_fields("fig6", "mcf", "GhostMinion");
        end.extend([
            ("fingerprint", Json::from("abc")),
            ("cached", Json::from(false)),
            ("wall_us", Json::from(12u64)),
        ]);
        let stream = [
            line(
                "run_start",
                &[
                    ("program", Json::from("gm-run")),
                    ("scale", Json::from("test")),
                ],
            ),
            line("experiment_start", &[("experiment", Json::from("fig6"))]),
            line("job_start", &job_fields("fig6", "mcf", "GhostMinion")),
            line("remote_miss", &remote.clone()),
            line("remote_push", &remote.clone()),
            line("job_end", &end),
            line(
                "remote_degraded",
                &[
                    ("experiment", Json::from("fig6")),
                    ("addr", Json::from("127.0.0.1:4460")),
                ],
            ),
            line(
                "experiment_end",
                &[
                    ("experiment", Json::from("fig6")),
                    ("jobs", Json::from(1u64)),
                    ("hits", Json::from(0u64)),
                    ("misses", Json::from(1u64)),
                    ("sim_wall_us", Json::from(12u64)),
                ],
            ),
            line("run_end", &[("experiments", Json::from(1u64))]),
        ]
        .join("\n");
        let s = validate(&stream).expect("remote stream validates");
        assert_eq!(s.remote, 2);
        assert_eq!(s.degraded, 1);

        // A remote outcome outside an open job span is rejected.
        let orphan = [
            line(
                "run_start",
                &[
                    ("program", Json::from("gm-run")),
                    ("scale", Json::from("test")),
                ],
            ),
            line("experiment_start", &[("experiment", Json::from("fig6"))]),
            line("remote_hit", &remote),
        ]
        .join("\n");
        let e = validate(&orphan).unwrap_err();
        assert!(e.contains("without an open job"), "{e}");

        // remote_degraded while a job span is still open is rejected.
        let early = [
            line(
                "run_start",
                &[
                    ("program", Json::from("gm-run")),
                    ("scale", Json::from("test")),
                ],
            ),
            line("experiment_start", &[("experiment", Json::from("fig6"))]),
            line("job_start", &job_fields("fig6", "mcf", "GhostMinion")),
            line(
                "remote_degraded",
                &[
                    ("experiment", Json::from("fig6")),
                    ("addr", Json::from("127.0.0.1:4460")),
                ],
            ),
        ]
        .join("\n");
        let e = validate(&early).unwrap_err();
        assert!(e.contains("still open"), "{e}");
    }

    #[test]
    fn rejects_unbalanced_and_malformed_streams() {
        assert!(validate("").is_err());
        assert!(validate("not json").is_err());
        assert!(validate("{\"event\":\"mystery\"}").is_err());
        // A job left open past its experiment.
        let open_job = [
            line(
                "run_start",
                &[
                    ("program", Json::from("gm-run")),
                    ("scale", Json::from("test")),
                ],
            ),
            line("experiment_start", &[("experiment", Json::from("fig6"))]),
            line("job_start", &job_fields("fig6", "mcf", "GhostMinion")),
            line(
                "experiment_end",
                &[
                    ("experiment", Json::from("fig6")),
                    ("jobs", Json::from(1u64)),
                    ("hits", Json::from(0u64)),
                    ("misses", Json::from(1u64)),
                    ("sim_wall_us", Json::from(5u64)),
                ],
            ),
        ]
        .join("\n");
        let e = validate(&open_job).unwrap_err();
        assert!(e.contains("still open"), "{e}");
        // Truncated stream: no run_end.
        let truncated = well_formed().lines().take(5).collect::<Vec<_>>().join("\n");
        let e = validate(&truncated).unwrap_err();
        assert!(e.contains("run_end"), "{e}");
        // Events after run_end.
        let trailing =
            well_formed() + "\n" + &line("run_end", &[("experiments", Json::from(1u64))]);
        assert!(validate(&trailing).is_err());
    }

    #[test]
    fn writer_emits_lines_the_validator_accepts() {
        let dir = std::env::temp_dir().join(format!(
            "gm-telemetry-test-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let tel = Telemetry::create(path.to_str().unwrap()).unwrap();
        tel.emit("run_start", |j| {
            j.set("program", "gm-run").set("scale", "test");
        });
        tel.emit("run_end", |j| {
            j.set("experiments", 0u64);
        });
        tel.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let s = validate(&text).expect("emitted stream validates");
        assert_eq!(s.events, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
