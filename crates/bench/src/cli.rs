//! Argument parsing and `main` bodies for the figure binaries and the
//! `gm-run` driver.
//!
//! Parsing is strict: unknown flags, unknown workload names, and
//! malformed values print usage and exit non-zero instead of being
//! silently ignored.
//!
//! Stream discipline: stdout carries only the report (tables, CSV,
//! postambles) so it is byte-comparable across runs; everything
//! operational — cache hit/miss summaries, per-experiment timing,
//! store compaction notes, "wrote file" confirmations — goes to stderr.

use crate::experiment::{self, apply_workload_filter, Experiment, ExperimentKind};
use crate::fault::FaultPlan;
use crate::merge;
use crate::report::{experiment_json, report_text, run_experiment};
use crate::runner::{Runner, Shard, Supervision};
use crate::telemetry::{self, Telemetry};
use gm_results::{RemoteStore, ResultStore};
use gm_stats::Json;
use gm_workloads::Scale;
use std::sync::Arc;
use std::time::Duration;

/// Process exit codes, shared by every `gm-run` entry point (and by
/// `gm-serve`, whose codes are documented to match). Centralised so the
/// meanings cannot drift between subcommands.
pub mod exit {
    /// Full success.
    pub const OK: i32 = 0;
    /// Hard failure: unreadable input, I/O error, failed check.
    pub const FAILURE: i32 = 1;
    /// Usage error: unknown flag, malformed value, inconsistent
    /// combination.
    pub const USAGE: i32 = 2;
    /// Partial success: the sweep completed but some job(s) exhausted
    /// supervision (their grid cells are annotated in the report).
    pub const PARTIAL: i32 = 3;
}

/// Parsed command-line options, shared by `gm-run` and the per-figure
/// binaries (which do not take `--list`/`--filter`/`--shard`).
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    pub scale: Scale,
    /// Worker threads; 0 = available parallelism.
    pub jobs: usize,
    /// Write structured results to this path.
    pub json: Option<String>,
    /// Restrict sweeps to these workload names.
    pub workloads: Option<Vec<String>>,
    /// Result-store directory for cache-aware re-runs.
    pub store: Option<String>,
    /// With `store`: exit non-zero if any job was simulated (cache miss).
    pub expect_cached: bool,
    /// Run only this partition of the job list (gm-run only).
    pub shard: Option<Shard>,
    /// Append JSON-lines span telemetry to this path (see
    /// [`crate::telemetry`]).
    pub telemetry: Option<String>,
    /// Extra attempts per failed job (`--retries`); `None` keeps the
    /// [`Supervision`] default of one retry.
    pub retries: Option<u32>,
    /// Per-job wall-clock budget in seconds (`--budget`).
    pub budget: Option<u64>,
    /// Fail the whole run (exit 1) if any supervised job failed, instead
    /// of reporting partial success (exit 3).
    pub strict: bool,
    /// Deterministic fault injection (`--inject`, parsed eagerly so a
    /// typo fails before hours of simulation).
    pub inject: Option<FaultPlan>,
    /// With `--store`: fsync every appended record (crash durability).
    pub store_sync: bool,
    /// Fetch/push job results through a `gm-serve` result service at
    /// this address (requires `--store`).
    pub remote: Option<String>,
    /// List registered experiments instead of running.
    pub list: bool,
    /// Substring filter selecting experiments to run (gm-run only).
    pub filter: Option<String>,
    pub help: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: Scale::Test,
            jobs: 0,
            json: None,
            workloads: None,
            store: None,
            expect_cached: false,
            shard: None,
            telemetry: None,
            retries: None,
            budget: None,
            strict: false,
            inject: None,
            store_sync: false,
            remote: None,
            list: false,
            filter: None,
            help: false,
        }
    }
}

/// Usage text. `selection` adds the `gm-run`-only flags.
pub fn usage(program: &str, selection: bool) -> String {
    let mut u = format!("usage: {program} [options]\n");
    if selection {
        u.push_str(
            "       gm-run merge <SHARD.json>... [--json <PATH>] [--jobs <N>]\n\
             \x20      gm-run bench [--scale <S>] [--jobs <N>] [--filter <SUBSTR>] [--json <PATH>]\n\
             \x20                   [--check <BASELINE.json>]\n\
             \x20      gm-run store <DIR> [--compact] [--gc] [--verify] [--purge-quarantine]\n\
             \x20      gm-run trace <EXPERIMENT> [--workload <NAME>] [--scheme <LABEL>]\n\
             \x20                   [--scale <S>] [--out <FILE>] [--summary]\n",
        );
    }
    u.push_str(
        "\n\
         options:\n\
         \x20 --scale <test|bench|full>  workload scale (default: test)\n\
         \x20 --full                     alias for --scale full\n\
         \x20 --bench                    alias for --scale bench\n\
         \x20 --jobs <N>                 worker threads (default: available parallelism)\n\
         \x20 --json <PATH>              write structured results to PATH\n\
         \x20 --workloads <a,b,...>      restrict sweeps to the named workloads\n\
         \x20 --store <DIR>              result store: reuse cached job results, append new ones\n\
         \x20 --expect-cached            with --store: fail if any job had to be simulated\n\
         \x20                            (misses caused by store damage warn instead)\n\
         \x20 --store-sync               with --store: fsync every appended record\n\
         \x20 --remote <ADDR>            with --store: fetch/push job results through the\n\
         \x20                            gm-serve result service at ADDR; an unreachable or\n\
         \x20                            failing service degrades to local simulation\n\
         \x20 --telemetry <FILE>         append JSON-lines run/experiment/job span events to FILE\n\
         \x20 --retries <N>              extra attempts per failed job (default: 1)\n\
         \x20 --budget <SECS>            per-job wall-clock budget; over-budget jobs fail\n\
         \x20 --strict                   exit 1 if any job failed (default: finish the sweep,\n\
         \x20                            annotate the report, exit 3)\n\
         \x20 --inject <SPEC>            deterministic fault injection, e.g.\n\
         \x20                            panic:mcf/GhostMinion@1 (tests and CI smokes)\n\
         \x20 --help                     show this help\n",
    );
    if selection {
        u.push_str(
            "\x20 --list                     list registered experiments and exit\n\
             \x20 --filter <SUBSTR>          run only experiments whose name contains SUBSTR\n\
             \x20 --shard <K/N>              run the Kth of N job partitions (requires --json;\n\
             \x20                            recombine with gm-run merge)\n",
        );
    }
    u.push_str(
        "\n\
         exit codes:\n\
         \x20 0  success\n\
         \x20 1  hard failure (unreadable input, I/O error, failed check)\n\
         \x20 2  usage error\n\
         \x20 3  partial success (sweep completed, some jobs failed supervision)\n",
    );
    u
}

/// Parses `args` (without the program name). `selection` enables
/// `--list`/`--filter`/`--shard`. Returns a human-readable error for
/// unknown flags, missing values, malformed values, and inconsistent
/// combinations.
pub fn parse(args: &[String], selection: bool) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = value("--scale", &mut it)?;
                opts.scale = Scale::from_name(&v)
                    .ok_or_else(|| format!("invalid --scale {v:?} (expected test|bench|full)"))?;
            }
            "--full" => opts.scale = Scale::Full,
            "--bench" => opts.scale = Scale::Bench,
            "--jobs" => {
                let v = value("--jobs", &mut it)?;
                opts.jobs =
                    v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("invalid --jobs {v:?} (expected a positive integer)")
                    })?;
            }
            "--json" => opts.json = Some(value("--json", &mut it)?),
            "--workloads" => {
                let v = value("--workloads", &mut it)?;
                let names: Vec<String> = v.split(',').map(str::to_owned).collect();
                if names.iter().any(String::is_empty) {
                    return Err(format!(
                        "invalid --workloads {v:?} (expected a comma-separated name list)"
                    ));
                }
                opts.workloads = Some(names);
            }
            "--store" => opts.store = Some(value("--store", &mut it)?),
            "--expect-cached" => opts.expect_cached = true,
            "--store-sync" => opts.store_sync = true,
            "--remote" => opts.remote = Some(value("--remote", &mut it)?),
            "--telemetry" => opts.telemetry = Some(value("--telemetry", &mut it)?),
            "--retries" => {
                let v = value("--retries", &mut it)?;
                opts.retries = Some(v.parse::<u32>().map_err(|_| {
                    format!("invalid --retries {v:?} (expected a non-negative integer)")
                })?);
            }
            "--budget" => {
                let v = value("--budget", &mut it)?;
                opts.budget = Some(v.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                    format!("invalid --budget {v:?} (expected seconds, a positive integer)")
                })?);
            }
            "--strict" => opts.strict = true,
            "--inject" => opts.inject = Some(FaultPlan::parse(&value("--inject", &mut it)?)?),
            "--shard" if selection => {
                opts.shard = Some(Shard::parse(&value("--shard", &mut it)?)?);
            }
            "--list" if selection => opts.list = true,
            "--filter" if selection => opts.filter = Some(value("--filter", &mut it)?),
            "--help" | "-h" => opts.help = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.expect_cached && opts.store.is_none() {
        return Err("--expect-cached requires --store".into());
    }
    if opts.store_sync && opts.store.is_none() {
        return Err("--store-sync requires --store".into());
    }
    if opts.remote.is_some() && opts.store.is_none() {
        return Err("--remote requires --store (remote hits land in the local store)".into());
    }
    if opts.shard.is_some() && opts.json.is_none() && !opts.list && !opts.help {
        return Err("--shard requires --json (the shard document is the run's output)".into());
    }
    // Mirrors the bench `--check`/`--json` collision guard: the
    // telemetry stream appending over the results document would corrupt
    // both outputs.
    if opts.telemetry.is_some() && opts.telemetry == opts.json {
        return Err(format!(
            "--telemetry and --json name the same file ({}); the telemetry \
             stream would clobber the results document",
            opts.telemetry.as_deref().unwrap_or("")
        ));
    }
    Ok(opts)
}

fn parse_or_exit(program: &str, args: &[String], selection: bool) -> Options {
    match parse(args, selection) {
        Ok(opts) => {
            if opts.help {
                print!("{}", usage(program, selection));
                std::process::exit(exit::OK);
            }
            opts
        }
        Err(e) => {
            eprint!("{program}: {e}\n\n{}", usage(program, selection));
            std::process::exit(exit::USAGE);
        }
    }
}

fn fail(program: &str, message: &str) -> ! {
    eprintln!("{program}: {message}");
    std::process::exit(exit::FAILURE);
}

/// Opens the store named by `--store`, if any, applying `--store-sync`.
fn open_store(program: &str, opts: &Options) -> Option<ResultStore> {
    opts.store.as_ref().map(|dir| {
        let mut store = ResultStore::open(dir)
            .unwrap_or_else(|e| fail(program, &format!("cannot open store {dir:?}: {e}")));
        store.set_sync(opts.store_sync);
        store
    })
}

/// Builds the job runner from `--jobs` plus the supervision flags.
fn build_runner(opts: &Options) -> Runner {
    let defaults = Supervision::default();
    let mut runner = Runner::new(opts.jobs).with_supervision(Supervision {
        attempts: opts
            .retries
            .map_or(defaults.attempts, |r| r.saturating_add(1)),
        budget: opts.budget.map(Duration::from_secs),
        strict: opts.strict,
    });
    if let Some(plan) = &opts.inject {
        runner = runner.with_faults(plan.clone());
    }
    if let Some(addr) = &opts.remote {
        let mut remote = RemoteStore::new(addr.clone());
        if let Some(dir) = &opts.store {
            // Garbage the remote sends lands next to the local store's
            // own quarantine sidecars, where `gm-run store` reports it.
            remote = remote.with_quarantine(std::path::Path::new(dir).join("remote.quarantine"));
        }
        runner = runner.with_remote(Arc::new(remote));
    }
    runner
}

/// Partial-success exit: the sweep finished, every completed job landed
/// in the store/report, but `failed` jobs exhausted supervision. Exit 3
/// distinguishes this from full success (0) and hard failure (1).
fn exit_partial(program: &str, failed: usize) {
    if failed > 0 {
        eprintln!(
            "{program}: partial success: {failed} job(s) failed permanently \
             (see the '!! job failed' report lines); exiting 3"
        );
        std::process::exit(exit::PARTIAL);
    }
}

/// Writes the combined JSON document if `--json` was given.
fn write_json(program: &str, opts_json: Option<&String>, doc: &Json) {
    if let Some(path) = opts_json {
        if let Err(e) = std::fs::write(path, doc.render() + "\n") {
            fail(program, &format!("cannot write {path:?}: {e}"));
        }
        eprintln!("wrote {path}");
    }
}

/// Compacts the store files this run touched, reporting anything that
/// was actually rewritten.
/// Compacts one experiment's store file, reporting to stderr only when
/// something was actually dropped. Shared by post-run compaction and
/// `gm-run store --compact` so the report/warning policy cannot drift.
fn compact_one(program: &str, store: &ResultStore, experiment: &str) {
    match store.compact(experiment) {
        Ok(stats) if stats.superseded > 0 || stats.corrupt > 0 => eprintln!(
            "{program}: store: compacted {experiment}: kept {}, dropped {} superseded and {} corrupt line(s)",
            stats.kept, stats.superseded, stats.corrupt
        ),
        Ok(_) => {}
        Err(e) => eprintln!("warning: store compaction for {experiment} failed: {e}"),
    }
}

fn compact_store(program: &str, store: &ResultStore, experiments: &[Experiment]) {
    for exp in experiments {
        if matches!(exp.kind, ExperimentKind::Sweep(_)) {
            compact_one(program, store, exp.name);
        }
    }
}

/// Enforces `--expect-cached` after a run.
fn enforce_expect_cached(program: &str, opts: &Options, misses: usize, corrupt: usize) {
    if !opts.expect_cached || misses == 0 {
        return;
    }
    if corrupt > 0 {
        // The misses are explained by store damage: the affected jobs
        // were re-simulated (and re-appended), which is the graceful
        // degradation `--expect-cached` should report, not abort on.
        eprintln!(
            "{program}: warning: --expect-cached: {misses} job(s) re-simulated because the \
             store was damaged ({corrupt} quarantined line(s)/read error(s)); continuing"
        );
        return;
    }
    fail(
        program,
        &format!("--expect-cached: {misses} job(s) had to be simulated (cache miss)"),
    );
}

fn seconds(us: u64) -> f64 {
    us as f64 / 1e6
}

/// Simulated megacycles per wall-clock second — the engine-throughput
/// telemetry every sweep reports and `gm-run bench` snapshots.
fn mcycles_per_s(sim_cycles: u64, sim_wall_us: u64) -> f64 {
    if sim_wall_us == 0 {
        0.0
    } else {
        sim_cycles as f64 / sim_wall_us as f64
    }
}

/// Opens the telemetry stream named by `--telemetry` (if any) and
/// emits its `run_start` event.
fn open_telemetry(program: &str, opts: &Options, shard: Option<Shard>) -> Option<Telemetry> {
    opts.telemetry.as_ref().map(|path| {
        let tel = Telemetry::create(path).unwrap_or_else(|e| fail(program, &e));
        tel.emit("run_start", |j| {
            j.set("program", program).set("scale", opts.scale.name());
            if let Some(shard) = shard {
                j.set("shard", shard.to_string());
            }
        });
        tel
    })
}

/// Emits `run_end`, flushes the telemetry stream, and confirms the
/// write on stderr (stdout stays byte-comparable).
fn close_telemetry(
    program: &str,
    opts: &Options,
    telemetry: Option<Telemetry>,
    experiments: usize,
) {
    let Some(tel) = telemetry else { return };
    tel.emit("run_end", |j| {
        j.set("experiments", experiments);
    });
    if let Err(e) = tel.finish() {
        fail(program, &e);
    }
    eprintln!(
        "{program}: wrote telemetry to {}",
        opts.telemetry.as_deref().unwrap_or("")
    );
}

/// Runs `experiments` unsharded, printing each report and writing the
/// combined JSON if requested.
fn run_and_emit(program: &str, experiments: &[Experiment], opts: &Options) {
    let store = open_store(program, opts);
    let telemetry = open_telemetry(program, opts, None);
    let runner = build_runner(opts);
    let mut emitted = Vec::new();
    let mut misses = 0usize;
    let mut corrupt = 0usize;
    let mut failed = 0usize;
    for exp in experiments {
        let out = run_experiment(&runner, exp, opts.scale, store.as_ref(), telemetry.as_ref())
            .unwrap_or_else(|e| fail(program, &format!("{}: {e}", exp.name)));
        print!("{}", report_text(exp.title, &out));
        if matches!(exp.kind, ExperimentKind::Sweep(_)) {
            let mut line = format!(
                "{program}: {}: {} job(s), {} cached, {} simulated in {:.2}s",
                exp.name,
                out.cache.hits + out.cache.misses,
                out.cache.hits,
                out.cache.misses,
                seconds(out.sim_wall_us),
            );
            if out.cache.misses > 0 {
                line.push_str(&format!(
                    " at {:.1} Mcycles/s",
                    mcycles_per_s(out.sim_cycles, out.sim_wall_us)
                ));
            }
            if opts.remote.is_some() {
                line.push_str(&format!(
                    ", remote: {} fetched, {} pushed",
                    out.cache.remote_hits, out.cache.remote_pushes
                ));
            }
            if let Some((label, us)) = &out.slowest {
                line.push_str(&format!(" (slowest {label} {:.2}s)", seconds(*us)));
            }
            if !out.failures.is_empty() {
                line.push_str(&format!(", {} FAILED", out.failures.len()));
            }
            eprintln!("{line}");
        }
        misses += out.cache.misses;
        corrupt += out.cache.corrupt;
        failed += out.failures.len();
        if opts.json.is_some() {
            emitted.push(experiment_json(exp, opts.scale, &out));
        }
    }
    let mut doc = Json::object();
    doc.set("generator", program)
        .set("scale", opts.scale.name())
        .set("experiments", Json::Array(emitted));
    write_json(program, opts.json.as_ref(), &doc);
    close_telemetry(program, opts, telemetry, experiments.len());
    if let Some(store) = &store {
        compact_store(program, store, experiments);
    }
    enforce_expect_cached(program, opts, misses, corrupt);
    exit_partial(program, failed);
}

/// Runs one shard of `experiments`: no stdout report (a shard cannot
/// render normalised tables), just the shard JSON document plus stderr
/// telemetry. Non-sweep experiments run on shard 1 only.
fn run_shard_and_emit(program: &str, experiments: &[Experiment], opts: &Options, shard: Shard) {
    let store = open_store(program, opts);
    let telemetry = open_telemetry(program, opts, Some(shard));
    let runner = build_runner(opts);
    let mut entries = Vec::new();
    let mut misses = 0usize;
    let mut corrupt = 0usize;
    let mut failed = 0usize;
    let mut ran = 0usize;
    for exp in experiments {
        match &exp.kind {
            ExperimentKind::Sweep(sweep) => {
                if let Some(tel) = &telemetry {
                    tel.emit("experiment_start", |j| {
                        j.set("experiment", exp.name);
                    });
                }
                let run = runner
                    .run_sweep_shard(
                        sweep,
                        opts.scale,
                        exp.name,
                        store.as_ref(),
                        shard,
                        telemetry.as_ref(),
                    )
                    .unwrap_or_else(|e| fail(program, &format!("{}: {e}", exp.name)));
                if let Some(tel) = &telemetry {
                    tel.emit("experiment_end", |j| {
                        j.set("experiment", exp.name)
                            .set("jobs", run.owned_jobs())
                            .set("hits", run.cache.hits)
                            .set("misses", run.cache.misses)
                            .set("sim_wall_us", run.sim_wall_us());
                        if !run.failures.is_empty() {
                            j.set("failed", run.failures.len() as u64);
                        }
                    });
                }
                ran += 1;
                let mut line = format!(
                    "{program}: shard {shard}: {}: {}/{} job(s), {} cached, {} simulated in {:.2}s at {:.1} Mcycles/s",
                    exp.name,
                    run.owned_jobs(),
                    run.total_jobs(),
                    run.cache.hits,
                    run.cache.misses,
                    seconds(run.sim_wall_us()),
                    mcycles_per_s(run.sim_cycles(), run.sim_wall_us()),
                );
                if opts.remote.is_some() {
                    line.push_str(&format!(
                        ", remote: {} fetched, {} pushed",
                        run.cache.remote_hits, run.cache.remote_pushes
                    ));
                }
                if !run.failures.is_empty() {
                    line.push_str(&format!(", {} FAILED", run.failures.len()));
                    for f in &run.failures {
                        eprintln!("{program}: shard {shard}: job failed: {f}");
                    }
                }
                eprintln!("{line}");
                misses += run.cache.misses;
                corrupt += run.cache.corrupt;
                failed += run.failures.len();
                entries.push(merge::shard_entry(exp, opts.scale, &run, sweep));
            }
            ExperimentKind::Security | ExperimentKind::Table1 => {
                if shard.index() != 1 {
                    eprintln!(
                        "{program}: shard {shard}: {}: non-sweep experiments run on shard 1, skipping",
                        exp.name
                    );
                    continue;
                }
                let out = run_experiment(&runner, exp, opts.scale, None, telemetry.as_ref())
                    .unwrap_or_else(|e| fail(program, &format!("{}: {e}", exp.name)));
                ran += 1;
                entries.push(merge::shard_nonsweep_entry(exp, opts.scale, &out));
            }
        }
    }
    let doc = merge::shard_doc(program, opts.scale, shard, entries);
    write_json(program, opts.json.as_ref(), &doc);
    close_telemetry(program, opts, telemetry, ran);
    if let Some(store) = &store {
        compact_store(program, store, experiments);
    }
    enforce_expect_cached(program, opts, misses, corrupt);
    exit_partial(program, failed);
}

/// Applies `--workloads`, then dispatches to the unsharded or sharded
/// run path.
fn run_selected(program: &str, mut experiments: Vec<Experiment>, opts: &Options, selection: bool) {
    if let Some(names) = &opts.workloads {
        if let Err(e) = apply_workload_filter(&mut experiments, names) {
            eprint!("{program}: {e}\n\n{}", usage(program, selection));
            std::process::exit(exit::USAGE);
        }
        // A name can be valid for one suite and absent from another
        // (e.g. `mcf` exists in SPEC2006 but not Parsec). Skip sweeps
        // the filter emptied — loudly — rather than printing header-only
        // tables for them.
        experiments.retain(|e| {
            let emptied = matches!(&e.kind,
                ExperimentKind::Sweep(s) if s.workloads.as_deref() == Some(&[]));
            if emptied {
                eprintln!(
                    "{program}: {}: no selected workload is in this suite, skipping",
                    e.name
                );
            }
            !emptied
        });
        if experiments.is_empty() {
            fail(program, "--workloads left no experiment to run");
        }
    }
    match opts.shard {
        Some(shard) => run_shard_and_emit(program, &experiments, opts, shard),
        None => run_and_emit(program, &experiments, opts),
    }
}

/// `main` body of a single-figure binary: strict flag parsing, then the
/// named registry experiment.
pub fn figure_main(name: &str) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_or_exit(name, &args, false);
    let exp =
        experiment::find(name).unwrap_or_else(|| panic!("{name} is not a registered experiment"));
    run_selected(name, vec![exp], &opts, false);
}

/// `main` body of the `gm-run` driver: the `merge` subcommand, `--list`,
/// `--filter`, or the whole registry.
pub fn gm_run_main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("merge") => {
            merge_main(&args[1..]);
            return;
        }
        Some("bench") => {
            bench_main(&args[1..]);
            return;
        }
        Some("store") => {
            store_main(&args[1..]);
            return;
        }
        Some("trace") => {
            trace_main(&args[1..]);
            return;
        }
        // Anything positional that is not a known subcommand is a typo
        // (`gm-run benhc`): usage to stderr and exit 2, consistent with
        // the strict flag parsing below.
        Some(cmd) if !cmd.starts_with('-') => {
            eprint!(
                "gm-run: unknown subcommand {cmd:?}\n\n{}",
                usage("gm-run", true)
            );
            std::process::exit(exit::USAGE);
        }
        _ => {}
    }
    let opts = parse_or_exit("gm-run", &args, true);
    let selected = match &opts.filter {
        Some(pattern) => experiment::matching(pattern),
        None => experiment::registry(),
    };
    if opts.list {
        // --list respects --filter, so a filter can be previewed
        // without running it.
        let mut t = gm_stats::Table::new(vec!["experiment".into(), "title".into()]);
        for e in &selected {
            t.row(vec![e.name.to_owned(), e.title.to_owned()]);
        }
        print!("{}", t.render());
        return;
    }
    if selected.is_empty() {
        eprintln!(
            "gm-run: no experiment matches {:?} (try --list)",
            opts.filter.as_deref().unwrap_or("")
        );
        std::process::exit(exit::FAILURE);
    }
    run_selected("gm-run", selected, &opts, true);
}

fn trace_usage() -> String {
    "usage: gm-run trace <EXPERIMENT> [--workload <NAME>] [--scheme <LABEL>]\n\
     \x20                  [--scale <test|bench|full>] [--out <FILE>] [--summary]\n\
     \x20      gm-run trace --validate <TRACE.txt>\n\
     \x20      gm-run trace --validate-telemetry <EVENTS.jsonl>\n\
     \n\
     Runs ONE (workload \u{d7} scheme) job of a sweep experiment with\n\
     per-instruction pipeline tracing attached. --out streams a gem5\n\
     O3PipeView-format text trace (loadable in the Konata viewer);\n\
     --summary prints a guest-cycle attribution table to stdout — per\n\
     functional-unit class, the cycles lost to FU waits, STT taint\n\
     parking, store-forward blocking, and squashed work. With neither\n\
     flag, --summary is the default; both may be combined (the run is\n\
     traced once and the stream teed).\n\
     \n\
     --workload defaults to the experiment's first workload unit and\n\
     --scheme (matched against the column label or scheme name) to its\n\
     first lineup column. Tracing never perturbs the simulation: a\n\
     traced run's cycle count and fingerprint are identical to an\n\
     untraced one (tested by tests/trace_neutrality.rs).\n\
     \n\
     --validate / --validate-telemetry parse a previously written trace\n\
     or telemetry stream with the strict in-repo checkers and exit\n\
     non-zero on any malformation — the CI smoke gate.\n"
        .to_owned()
}

/// `gm-run trace`: one traced (workload × scheme) job, or validation of
/// previously emitted trace/telemetry files.
fn trace_main(args: &[String]) {
    use gm_sim::TraceSink;
    use gm_trace::{validate_o3, O3PipeViewSink, SummarySink, Tee};
    use std::cell::RefCell;
    use std::rc::Rc;

    let program = "gm-run trace";
    let mut experiment_name: Option<String> = None;
    let mut workload: Option<String> = None;
    let mut scheme_label: Option<String> = None;
    let mut scale = Scale::Test;
    let mut out: Option<String> = None;
    let mut summary = false;
    let mut validate_trace: Option<String> = None;
    let mut validate_telemetry: Option<String> = None;
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| -> String {
        it.next().cloned().unwrap_or_else(|| {
            eprint!("{program}: {flag} requires a value\n\n{}", trace_usage());
            std::process::exit(exit::USAGE);
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workload" => workload = Some(value("--workload", &mut it)),
            "--scheme" => scheme_label = Some(value("--scheme", &mut it)),
            "--scale" => {
                let v = value("--scale", &mut it);
                scale = Scale::from_name(&v).unwrap_or_else(|| {
                    eprint!(
                        "{program}: invalid --scale {v:?} (expected test|bench|full)\n\n{}",
                        trace_usage()
                    );
                    std::process::exit(exit::USAGE);
                });
            }
            "--out" => out = Some(value("--out", &mut it)),
            "--summary" => summary = true,
            "--validate" => validate_trace = Some(value("--validate", &mut it)),
            "--validate-telemetry" => {
                validate_telemetry = Some(value("--validate-telemetry", &mut it));
            }
            "--help" | "-h" => {
                print!("{}", trace_usage());
                std::process::exit(exit::OK);
            }
            flag if flag.starts_with('-') => {
                eprint!("{program}: unknown argument {flag:?}\n\n{}", trace_usage());
                std::process::exit(exit::USAGE);
            }
            name if experiment_name.is_none() => experiment_name = Some(name.to_owned()),
            extra => {
                eprint!(
                    "{program}: unexpected argument {extra:?}\n\n{}",
                    trace_usage()
                );
                std::process::exit(exit::USAGE);
            }
        }
    }
    // Validation modes stand alone: they read files, they run nothing.
    if validate_trace.is_some() || validate_telemetry.is_some() {
        if experiment_name.is_some() || out.is_some() || summary {
            eprint!(
                "{program}: --validate modes take only a file argument\n\n{}",
                trace_usage()
            );
            std::process::exit(exit::USAGE);
        }
        if let Some(path) = &validate_trace {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(program, &format!("cannot read {path:?}: {e}")));
            let r = validate_o3(&text)
                .unwrap_or_else(|e| fail(program, &format!("{path}: invalid trace: {e}")));
            eprintln!(
                "{program}: {path}: valid O3PipeView trace: {} instruction(s), \
                 {} retired, {} squashed",
                r.instructions, r.retired, r.squashed
            );
        }
        if let Some(path) = &validate_telemetry {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(program, &format!("cannot read {path:?}: {e}")));
            let s = telemetry::validate(&text)
                .unwrap_or_else(|e| fail(program, &format!("{path}: invalid telemetry: {e}")));
            let mut line = format!(
                "{program}: {path}: valid telemetry stream: {} event(s), \
                 {} experiment(s), {} job(s)",
                s.events, s.experiments, s.jobs
            );
            if s.failed > 0 || s.retries > 0 {
                line.push_str(&format!(", {} failed, {} retried", s.failed, s.retries));
            }
            eprintln!("{line}");
        }
        return;
    }
    let Some(exp_name) = experiment_name else {
        eprint!("{program}: trace needs an experiment\n\n{}", trace_usage());
        std::process::exit(exit::USAGE);
    };
    let exp = experiment::find(&exp_name).unwrap_or_else(|| {
        fail(
            program,
            &format!("unknown experiment {exp_name:?} (try gm-run --list)"),
        )
    });
    let ExperimentKind::Sweep(sweep) = &exp.kind else {
        fail(program, &format!("{exp_name} is not a sweep experiment"));
    };
    let set = sweep.workload_set(scale);
    let unit = match &workload {
        Some(name) => set
            .units
            .iter()
            .find(|u| u.name == name)
            .unwrap_or_else(|| {
                let names: Vec<&str> = set.units.iter().map(|u| u.name).collect();
                fail(
                    program,
                    &format!("{exp_name} has no workload {name:?} (choose from {names:?})"),
                )
            }),
        None => &set.units[0],
    };
    let col = match &scheme_label {
        Some(label) => sweep
            .schemes
            .iter()
            .find(|c| &c.label == label || c.scheme.name() == label)
            .unwrap_or_else(|| {
                let labels: Vec<&str> = sweep.schemes.iter().map(|c| c.label.as_str()).collect();
                fail(
                    program,
                    &format!("{exp_name} has no scheme {label:?} (choose from {labels:?})"),
                )
            }),
        None => &sweep.schemes[0],
    };
    // With no --out, the summary is the only output worth running for.
    let summary = summary || out.is_none();
    let o3 = out.as_ref().map(|path| {
        let file = std::fs::File::create(path)
            .unwrap_or_else(|e| fail(program, &format!("cannot create {path:?}: {e}")));
        Rc::new(RefCell::new(O3PipeViewSink::new(std::io::BufWriter::new(
            file,
        ))))
    });
    let sum = summary.then(|| Rc::new(RefCell::new(SummarySink::new())));
    let mut fan: Vec<Rc<RefCell<dyn TraceSink>>> = Vec::new();
    if let Some(s) = &o3 {
        fan.push(s.clone() as Rc<RefCell<dyn TraceSink>>);
    }
    if let Some(s) = &sum {
        fan.push(s.clone() as Rc<RefCell<dyn TraceSink>>);
    }
    let sink: Rc<RefCell<dyn TraceSink>> = if fan.len() == 1 {
        fan.pop().expect("one sink")
    } else {
        Rc::new(RefCell::new(Tee::new(fan)))
    };
    let mut machine = ghostminion::Machine::new(col.scheme, sweep.config, unit.programs.clone());
    machine.set_trace(sink);
    let result = machine.run(sweep.config.max_cycles);
    let committed: u64 = result.core_stats.iter().map(|c| c.committed).sum();
    eprintln!(
        "{program}: {exp_name} {}/{} at {} scale: {} cycles, {} committed instruction(s)",
        unit.name,
        col.label,
        scale.name(),
        result.cycles,
        committed
    );
    if let Some(o3) = &o3 {
        if let Err(e) = o3.borrow_mut().finish() {
            fail(program, &format!("cannot write trace: {e}"));
        }
        eprintln!("{program}: wrote {}", out.as_deref().unwrap_or(""));
    }
    if let Some(sum) = &sum {
        print!("{}", sum.borrow().render(result.cycles));
    }
}

fn bench_usage() -> String {
    "usage: gm-run bench [--scale <test|bench|full>] [--jobs <N>] \
     [--filter <SUBSTR>] [--workloads <a,b,...>] [--json <PATH>] \
     [--check <BASELINE.json>] [--profile]\n\
     \n\
     Runs every selected sweep experiment cold (no result store), measures\n\
     total simulation wall-clock and simulated-cycles-per-second engine\n\
     throughput, and writes the snapshot to --json (default:\n\
     BENCH_engine.json). Re-run after engine changes to extend the repo's\n\
     perf trajectory; see README \"Performance\". The snapshot records the\n\
     rustc version and host triple that produced it.\n\
     \n\
     --check compares the fresh run against a committed baseline snapshot\n\
     and exits non-zero if any experiment's (or the total) mcycles_per_s\n\
     dropped by more than 25% — the CI perf-regression gate. With --check\n\
     the snapshot defaults to BENCH_fresh.json (never the baseline path,\n\
     which --json may not name either). Compare runs from the same runner\n\
     class; absolute throughput is machine-specific, and a rustc/host\n\
     mismatch against the baseline is reported as a warning.\n\
     \n\
     --profile (needs a build with --features stage-prof) prints a\n\
     per-stage run/skip/wall-time table to stderr after each experiment\n\
     and embeds it in the snapshot as stage_profile. Profiling builds\n\
     pay for the counters — never record a baseline from one.\n"
        .to_owned()
}

/// Maximum tolerated fractional `mcycles_per_s` drop per experiment
/// before `gm-run bench --check` fails.
const BENCH_REGRESSION_FRACTION: f64 = 0.25;

/// Working-set words of the calibration kernel (8 MiB — larger than any
/// LLC slice CI runners have, so DRAM speed is part of the score, as it
/// is for the simulator's own footprints).
const CALIB_WORDS: usize = 1 << 20;
/// Passes over the working set per probe (~100 ms on a laptop-class core).
const CALIB_PASSES: usize = 24;

/// One run of the fixed host-speed probe: a data-dependent
/// multiply-mix walk over an 8 MiB buffer. The mix of cache-missing
/// loads, dependent arithmetic, and unpredictable addresses tracks the
/// same machine resources the simulator is bound by, so frequency
/// scaling, thermal throttling, and runner-class differences move this
/// score and the engine's Mcycles/s together. The kernel is **frozen**:
/// it must never share code with (or be tuned alongside) the simulator,
/// or engine regressions would divide themselves out of the
/// [normalised check](bench_check).
///
/// Returns the score in Mops (walk steps per microsecond).
fn calibration_probe() -> f64 {
    use std::hint::black_box;
    let mut buf: Vec<u64> = (0..CALIB_WORDS as u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let mask = (CALIB_WORDS - 1) as u64;
    let mut idx = 0u64;
    let mut acc = 0u64;
    let start = std::time::Instant::now();
    for pass in 0..CALIB_PASSES as u64 {
        for i in 0..CALIB_WORDS as u64 {
            let v = buf[(idx & mask) as usize];
            acc = acc
                .wrapping_add(v ^ i)
                .rotate_left(7)
                .wrapping_mul(0x2545_f491_4f6c_dd1d);
            // The next address depends on the loaded value: the walk is
            // unprefetchable, like a simulator chasing queue entries.
            idx = v.wrapping_add(acc).wrapping_add(pass);
            buf[(i & mask) as usize] = acc;
        }
    }
    let us = start.elapsed().as_micros().max(1) as f64;
    black_box(acc);
    black_box(&buf);
    (CALIB_WORDS * CALIB_PASSES) as f64 / us
}

/// The calibration score attached to a bench snapshot: the mean of one
/// probe before and one after the sweep, so a machine that throttles
/// *during* the minutes-long run is scored at roughly the speed the
/// sweep actually saw.
fn calibration_entry(before_mops: f64, after_mops: f64) -> Json {
    let mut j = Json::object();
    j.set("kernel", "mixwalk-8MiB-v1")
        .set("before_mops", format!("{before_mops:.2}"))
        .set("after_mops", format!("{after_mops:.2}"))
        .set("mops", format!("{:.2}", (before_mops + after_mops) / 2.0));
    j
}

/// A snapshot's calibration score in Mops, if it carries one (snapshots
/// from before the calibration loop existed do not).
fn bench_calibration(doc: &Json) -> Option<f64> {
    doc.get("calibration")?
        .get("mops")
        .and_then(Json::as_str)
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|m| *m > 0.0)
}

/// Outcome of comparing a fresh bench snapshot against a baseline.
struct BenchCheck {
    /// One human-readable comparison line per checked experiment.
    report: Vec<String>,
    /// The subset that regressed beyond the threshold.
    regressions: Vec<String>,
}

/// Extracts `(name, mcycles_per_s)` rows — every experiment entry plus
/// the `total` — from a `gm-run bench` snapshot document.
fn bench_rates(doc: &Json, label: &str) -> Result<Vec<(String, f64)>, String> {
    let rate = |name: &str, e: &Json| -> Result<(String, f64), String> {
        let r = e
            .get("mcycles_per_s")
            .and_then(Json::as_str)
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| format!("{label}: {name} has no numeric mcycles_per_s"))?;
        Ok((name.to_owned(), r))
    };
    let mut rows = Vec::new();
    for e in doc
        .get("experiments")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{label}: no experiments array (not a bench snapshot?)"))?
    {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{label}: experiment entry without a name"))?;
        rows.push(rate(name, e)?);
    }
    let total = doc
        .get("total")
        .ok_or_else(|| format!("{label}: no total entry"))?;
    rows.push(rate("total", total)?);
    Ok(rows)
}

/// Compares a fresh snapshot against a committed baseline: every
/// baseline experiment also present in the fresh run (a `--filter`ed
/// check legitimately covers a subset) must hold at least
/// `1 - BENCH_REGRESSION_FRACTION` of its baseline throughput.
///
/// When both snapshots carry a [calibration score](calibration_probe),
/// throughputs are compared *normalised* (Mcycles per calibration Mop
/// rather than per wall-second): a slower CI runner class, a thermally
/// throttled machine, or a shared-tenancy neighbour slows the fresh
/// run's sweep and its probes alike, so the ratio cancels the machine
/// and keeps only the engine. Engine changes cannot hide there — the
/// probe is frozen and independent of simulator code. Old baselines
/// without a score fall back to the raw comparison.
fn bench_check(fresh: &Json, baseline: &Json) -> Result<BenchCheck, String> {
    let fresh_rates = bench_rates(fresh, "fresh run")?;
    let base_rates = bench_rates(baseline, "baseline")?;
    // normalised_ratio = (now/fresh_mops) / (base/base_mops)
    //                  = (now/base) * machine_factor
    let machine_factor = match (bench_calibration(fresh), bench_calibration(baseline)) {
        (Some(f), Some(b)) => Some(b / f),
        _ => None,
    };
    let mut report = Vec::new();
    let mut regressions = Vec::new();
    let mut matched = 0usize;
    // Provenance check: throughput snapshots are only directly
    // comparable when compiler and machine match. Calibration absorbs
    // *speed* differences, not codegen differences, so mismatches warn
    // (they don't fail — CI runners legitimately roll toolchains).
    for key in ["rustc", "host"] {
        let f = fresh.get(key).and_then(Json::as_str);
        let b = baseline.get(key).and_then(Json::as_str);
        if let (Some(f), Some(b)) = (f, b) {
            if f != b {
                report.push(format!(
                    "warning: {key} differs (baseline {b:?}, fresh {f:?}); \
                     the comparison crosses toolchains/machines and is only \
                     indicative"
                ));
            }
        }
    }
    if let Some(mf) = machine_factor {
        report.push(format!(
            "calibration: baseline/fresh machine speed {mf:.2}x \
             (throughput ratios are calibration-normalised)"
        ));
    }
    // A filtered run's total only covers the selected experiments and is
    // not comparable to the full baseline total.
    let all_present = base_rates
        .iter()
        .filter(|(n, _)| n != "total")
        .all(|(n, _)| fresh_rates.iter().any(|(f, _)| f == n));
    for (name, base) in &base_rates {
        if name == "total" && !all_present {
            continue;
        }
        let Some((_, now)) = fresh_rates.iter().find(|(n, _)| n == name) else {
            continue; // not selected in this run
        };
        let ratio = if *base > 0.0 {
            now / base * machine_factor.unwrap_or(1.0)
        } else {
            f64::INFINITY
        };
        let norm = if machine_factor.is_some() {
            " normalised"
        } else {
            ""
        };
        let mut line = format!("{name}: {base:.1} -> {now:.1} Mcycles/s ({ratio:.2}x{norm})");
        if ratio < 1.0 - BENCH_REGRESSION_FRACTION {
            line.push_str(" REGRESSION");
            regressions.push(line.clone());
        }
        report.push(line);
        matched += 1;
    }
    if matched == 0 {
        return Err("no baseline experiment matches the fresh run".into());
    }
    Ok(BenchCheck {
        report,
        regressions,
    })
}

/// Renders the per-stage run/skip/wall-time counters accumulated during
/// one experiment: a table on stderr (stdout stays byte-comparable) and
/// a `stage_profile` array on the experiment's snapshot entry.
#[cfg(feature = "stage-prof")]
fn stage_profile_report(program: &str, exp_name: &str, entry: &mut Json) {
    let snap = gm_sim::prof::snapshot();
    let mut table = gm_stats::Table::new(vec![
        "stage".into(),
        "runs".into(),
        "skips".into(),
        "skip%".into(),
        "wall_ms".into(),
    ]);
    let mut rows = Vec::new();
    let (mut runs, mut skips) = (0u64, 0u64);
    for c in &snap {
        let gated = c.runs + c.skips;
        let skip_pct = if gated > 0 {
            c.skips as f64 / gated as f64 * 100.0
        } else {
            0.0
        };
        table.row(vec![
            c.stage.name().to_owned(),
            c.runs.to_string(),
            c.skips.to_string(),
            format!("{skip_pct:.1}"),
            format!("{:.2}", c.nanos as f64 / 1e6),
        ]);
        let mut j = Json::object();
        j.set("stage", c.stage.name())
            .set("runs", c.runs)
            .set("skips", c.skips)
            .set("wall_ns", c.nanos);
        rows.push(j);
        runs += c.runs;
        skips += c.skips;
    }
    eprintln!("{program}: stage profile for {exp_name}:");
    eprint!("{}", table.render());
    // One greppable summary line per experiment (the CI smoke step
    // asserts the gating fires, i.e. skips > 0).
    eprintln!("{program}: stage profile {exp_name}: {runs} runs, {skips} skips");
    entry.set("stage_profile", Json::Array(rows));
}

/// `gm-run bench`: cold perf snapshot of the simulation engine, with an
/// optional `--check` regression gate against a committed baseline.
fn bench_main(args: &[String]) {
    let program = "gm-run bench";
    // `--check` and `--profile` are bench-only; strip them before the
    // shared parser.
    let mut check: Option<String> = None;
    let mut profile = false;
    let mut rest: Vec<String> = Vec::new();
    let mut args_it = args.iter();
    while let Some(arg) = args_it.next() {
        if arg == "--check" {
            match args_it.next() {
                Some(v) => check = Some(v.clone()),
                None => {
                    eprint!("{program}: --check requires a value\n\n{}", bench_usage());
                    std::process::exit(exit::USAGE);
                }
            }
        } else if arg == "--profile" {
            profile = true;
        } else {
            rest.push(arg.clone());
        }
    }
    if profile && !cfg!(feature = "stage-prof") {
        eprint!(
            "{program}: --profile needs the profiling build; rebuild with \
             --features stage-prof\n\n{}",
            bench_usage()
        );
        std::process::exit(exit::USAGE);
    }
    let args = rest.as_slice();
    let opts = match parse(args, true) {
        Ok(opts) => {
            if opts.help {
                print!("{}", bench_usage());
                std::process::exit(exit::OK);
            }
            if opts.store.is_some() || opts.remote.is_some() || opts.shard.is_some() || opts.list {
                eprint!(
                    "{program}: bench always runs cold and unsharded\n\n{}",
                    bench_usage()
                );
                std::process::exit(exit::USAGE);
            }
            if opts.telemetry.is_some() {
                eprint!(
                    "{program}: --telemetry would perturb the timing snapshot; \
                     use a plain sweep run instead\n\n{}",
                    bench_usage()
                );
                std::process::exit(exit::USAGE);
            }
            if opts.inject.is_some() {
                eprint!(
                    "{program}: --inject would poison the timing snapshot; \
                     use a plain sweep run to exercise fault injection\n\n{}",
                    bench_usage()
                );
                std::process::exit(exit::USAGE);
            }
            opts
        }
        Err(e) => {
            eprint!("{program}: {e}\n\n{}", bench_usage());
            std::process::exit(exit::USAGE);
        }
    };
    // With --check, the snapshot defaults to BENCH_fresh.json so the
    // default output can never be the baseline under comparison; an
    // explicit collision is rejected — otherwise a regressed run would
    // overwrite the baseline before failing, and the re-run would pass.
    let snapshot_path = opts.json.clone().unwrap_or_else(|| {
        if check.is_some() {
            "BENCH_fresh.json".to_owned()
        } else {
            "BENCH_engine.json".to_owned()
        }
    });
    if check.as_deref() == Some(snapshot_path.as_str()) {
        eprint!(
            "{program}: --json and --check name the same file ({snapshot_path}); \
             writing the fresh snapshot there would clobber the baseline \
             before it is checked\n\n{}",
            bench_usage()
        );
        std::process::exit(exit::USAGE);
    }
    // Read the baseline before the (minutes-long) bench run, so a bad
    // path fails fast.
    let baseline = check.as_ref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(program, &format!("cannot read baseline {path:?}: {e}")));
        Json::parse(&text)
            .unwrap_or_else(|e| fail(program, &format!("cannot parse baseline {path:?}: {e}")))
    });
    let mut selected: Vec<Experiment> = match &opts.filter {
        Some(pattern) => experiment::matching(pattern),
        None => experiment::registry(),
    }
    .into_iter()
    .filter(|e| matches!(e.kind, ExperimentKind::Sweep(_)))
    .collect();
    if selected.is_empty() {
        fail(program, "no sweep experiment selected (try --filter fig6)");
    }
    if let Some(names) = &opts.workloads {
        if let Err(e) = apply_workload_filter(&mut selected, names) {
            eprint!("{program}: {e}\n\n{}", bench_usage());
            std::process::exit(exit::USAGE);
        }
    }
    let runner = Runner::new(opts.jobs);
    let calib_before = calibration_probe();
    eprintln!("{program}: calibration {calib_before:.2} Mops");
    let mut table = gm_stats::Table::new(vec![
        "experiment".into(),
        "jobs".into(),
        "sim_wall_s".into(),
        "Mcycles/s".into(),
    ]);
    let mut entries = Vec::new();
    let (mut total_jobs, mut total_cycles, mut total_wall) = (0u64, 0u64, 0u64);
    for exp in &selected {
        #[cfg(feature = "stage-prof")]
        if profile {
            gm_sim::prof::reset();
        }
        let out = run_experiment(&runner, exp, opts.scale, None, None)
            .unwrap_or_else(|e| fail(program, &format!("{}: {e}", exp.name)));
        let jobs = (out.cache.hits + out.cache.misses) as u64;
        total_jobs += jobs;
        total_cycles += out.sim_cycles;
        total_wall += out.sim_wall_us;
        table.row(vec![
            exp.name.to_owned(),
            jobs.to_string(),
            format!("{:.2}", seconds(out.sim_wall_us)),
            format!("{:.1}", mcycles_per_s(out.sim_cycles, out.sim_wall_us)),
        ]);
        let mut j = Json::object();
        j.set("name", exp.name)
            .set("jobs", jobs)
            .set("sim_cycles", out.sim_cycles)
            .set("sim_wall_us", out.sim_wall_us)
            .set(
                "mcycles_per_s",
                format!("{:.1}", mcycles_per_s(out.sim_cycles, out.sim_wall_us)),
            );
        #[cfg(feature = "stage-prof")]
        if profile {
            stage_profile_report(program, exp.name, &mut j);
        }
        entries.push(j);
    }
    table.row(vec![
        "total".into(),
        total_jobs.to_string(),
        format!("{:.2}", seconds(total_wall)),
        format!("{:.1}", mcycles_per_s(total_cycles, total_wall)),
    ]);
    print!("{}", table.render());
    let mut doc = Json::object();
    let mut total = Json::object();
    total
        .set("jobs", total_jobs)
        .set("sim_cycles", total_cycles)
        .set("sim_wall_us", total_wall)
        .set(
            "mcycles_per_s",
            format!("{:.1}", mcycles_per_s(total_cycles, total_wall)),
        );
    let calib_after = calibration_probe();
    eprintln!("{program}: calibration {calib_after:.2} Mops after sweep");
    doc.set("generator", "gm-run bench")
        .set("scale", opts.scale.name())
        .set("jobs", runner.jobs() as u64)
        // Toolchain/machine provenance: --check warns when a baseline
        // from a different compiler or host is compared.
        .set("rustc", env!("GM_RUSTC_VERSION"))
        .set("host", env!("GM_HOST_TRIPLE"))
        .set("calibration", calibration_entry(calib_before, calib_after))
        .set("experiments", Json::Array(entries))
        .set("total", total);
    write_json(program, Some(&snapshot_path), &doc);
    if let (Some(baseline), Some(check_path)) = (baseline, check) {
        let outcome = bench_check(&doc, &baseline)
            .unwrap_or_else(|e| fail(program, &format!("--check {check_path}: {e}")));
        for line in &outcome.report {
            eprintln!("{program}: check vs {check_path}: {line}");
        }
        if !outcome.regressions.is_empty() {
            fail(
                program,
                &format!(
                    "{} experiment(s) regressed more than {}% vs {check_path}:\n  {}",
                    outcome.regressions.len(),
                    (BENCH_REGRESSION_FRACTION * 100.0) as u32,
                    outcome.regressions.join("\n  ")
                ),
            );
        }
        eprintln!("{program}: check vs {check_path}: OK");
    }
}

fn store_usage() -> String {
    "usage: gm-run store <DIR> [--compact] [--gc] [--verify] [--purge-quarantine]\n\
     \n\
     Inspects a result store: per-experiment record counts, the total\n\
     cached simulation wall-clock those records represent (the time a warm\n\
     re-run saves), and the quarantined evidence each experiment carries.\n\
     --compact rewrites every store file, dropping superseded and corrupt\n\
     lines. --gc additionally drops records whose fingerprint no current\n\
     registry experiment produces (at any scale) — stale cache entries\n\
     from old configs, schemes, or workloads — reporting the records and\n\
     bytes reclaimed; a fully-reclaimed file is removed. Neither pass\n\
     touches .quarantine sidecars: quarantined lines are evidence, kept\n\
     until --purge-quarantine deletes them (reporting the lines and bytes\n\
     reclaimed).\n\
     \n\
     --verify is a read-only deep-integrity pass: every line is re-parsed\n\
     with the strict checker, per-record checksums are recomputed, record\n\
     schemas are validated field by field, and each fingerprint is\n\
     cross-checked against the jobs the current registry can actually\n\
     produce (a record must also name the workload and scheme its\n\
     fingerprint belongs to). Findings go to stderr and the exit code is\n\
     1 if there were any; lines without a checksum (written before\n\
     checksums existed) are reported but are not findings.\n"
        .to_owned()
}

/// Every fingerprint `experiment` can currently produce, across all
/// scales, mapped to the (workload, scheme label) job producing it — the
/// live set a store garbage collection keeps, and the identity `--verify`
/// cross-checks records against. `None` when the name is not a
/// registered sweep experiment (its records are all stale by
/// definition).
fn registry_identities(
    experiment: &str,
) -> Option<std::collections::HashMap<String, (String, String)>> {
    let exp = experiment::find(experiment)?;
    let ExperimentKind::Sweep(sweep) = &exp.kind else {
        return None; // non-sweep experiments write no records
    };
    let mut map = std::collections::HashMap::new();
    for scale in [Scale::Test, Scale::Bench, Scale::Full] {
        let ws = sweep.workload_set(scale);
        for unit in &ws.units {
            for col in &sweep.schemes {
                map.insert(
                    gm_results::job_fingerprint(unit, &col.scheme, scale, &sweep.config),
                    (unit.name.to_owned(), col.label.clone()),
                );
            }
        }
    }
    Some(map)
}

/// The deep-integrity pass behind `gm-run store --verify`. Returns the
/// number of findings; reporting goes to stderr (there is no stdout
/// contract to protect here, but the policy is uniform).
fn verify_store(program: &str, store: &ResultStore, experiments: &[String]) -> usize {
    use gm_results::{parse_store_line, validate_record, StoreLine};
    let mut findings = 0usize;
    let (mut records, mut checksummed, mut legacy) = (0usize, 0usize, 0usize);
    for name in experiments {
        let path = store.path(name);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{program}: verify: {name}: cannot read {path:?}: {e}");
                findings += 1;
                continue;
            }
        };
        let identities = registry_identities(name);
        if identities.is_none() {
            eprintln!(
                "{program}: verify: {name}: not a registered sweep experiment \
                 (every record is stale; gm-run store --gc reclaims the file)"
            );
            findings += 1;
        }
        for (i, line) in text.lines().enumerate() {
            let lineno = i + 1;
            let finding = |what: &str| {
                eprintln!("{program}: verify: {name} line {lineno}: {what}");
            };
            match parse_store_line(line) {
                StoreLine::Blank => {}
                StoreLine::Corrupt { reason } => {
                    finding(&reason);
                    findings += 1;
                }
                StoreLine::Record {
                    record,
                    fingerprint,
                    checksummed: has_sum,
                } => {
                    records += 1;
                    if has_sum {
                        checksummed += 1;
                    } else {
                        legacy += 1;
                    }
                    if let Err(e) = validate_record(&record) {
                        finding(&e);
                        findings += 1;
                    }
                    let Some(ids) = &identities else { continue };
                    match ids.get(&fingerprint) {
                        None => {
                            finding(&format!(
                                "fingerprint {}... matches no job the current registry \
                                 produces (stale record; --gc reclaims it)",
                                &fingerprint[..16.min(fingerprint.len())]
                            ));
                            findings += 1;
                        }
                        Some((workload, label)) => {
                            let rec_workload = record.get("workload").and_then(Json::as_str);
                            let rec_scheme = record.get("scheme").and_then(Json::as_str);
                            if rec_workload != Some(workload) || rec_scheme != Some(label) {
                                finding(&format!(
                                    "record names {}/{} but its fingerprint belongs to \
                                     {workload}/{label}",
                                    rec_workload.unwrap_or("?"),
                                    rec_scheme.unwrap_or("?")
                                ));
                                findings += 1;
                            }
                        }
                    }
                }
            }
        }
        let qpath = store.quarantine_path(name);
        if let Ok(qtext) = std::fs::read_to_string(&qpath) {
            let n = qtext.lines().filter(|l| !l.trim().is_empty()).count();
            if n > 0 {
                eprintln!(
                    "{program}: verify: {name}: {n} previously quarantined line(s) in {qpath:?}"
                );
            }
        }
    }
    eprintln!(
        "{program}: verify: {} file(s), {records} record(s) ({checksummed} checksummed, \
         {legacy} legacy), {findings} finding(s)",
        experiments.len()
    );
    findings
}

/// `gm-run store`: result-store maintenance.
fn store_main(args: &[String]) {
    let program = "gm-run store";
    let mut dir: Option<String> = None;
    let mut compact = false;
    let mut gc = false;
    let mut verify = false;
    let mut purge_quarantine = false;
    for arg in args {
        match arg.as_str() {
            "--compact" => compact = true,
            "--gc" => gc = true,
            "--verify" => verify = true,
            "--purge-quarantine" => purge_quarantine = true,
            "--help" | "-h" => {
                print!("{}", store_usage());
                std::process::exit(exit::OK);
            }
            flag if flag.starts_with('-') => {
                eprint!("{program}: unknown argument {flag:?}\n\n{}", store_usage());
                std::process::exit(exit::USAGE);
            }
            path if dir.is_none() => dir = Some(path.to_owned()),
            extra => {
                eprint!(
                    "{program}: unexpected argument {extra:?}\n\n{}",
                    store_usage()
                );
                std::process::exit(exit::USAGE);
            }
        }
    }
    let Some(dir) = dir else {
        eprint!("{program}: store needs a directory\n\n{}", store_usage());
        std::process::exit(exit::USAGE);
    };
    let store = ResultStore::open(&dir)
        .unwrap_or_else(|e| fail(program, &format!("cannot open store {dir:?}: {e}")));
    let experiments = store
        .experiments()
        .unwrap_or_else(|e| fail(program, &format!("cannot list store {dir:?}: {e}")));
    let mut table = gm_stats::Table::new(vec![
        "experiment".into(),
        "records".into(),
        "cached_wall_s".into(),
        "superseded".into(),
        "corrupt".into(),
        "quarantined".into(),
    ]);
    let (mut total_records, mut total_wall) = (0u64, 0u64);
    let (mut total_q_lines, mut total_q_bytes) = (0usize, 0u64);
    for name in &experiments {
        let shard = store
            .load(name)
            .unwrap_or_else(|e| fail(program, &format!("cannot load {name}: {e}")));
        let wall: u64 = shard
            .records
            .values()
            .filter_map(|r| gm_results::record_wall_us(r).ok())
            .sum();
        let quarantined = store.quarantine_stats(name).unwrap_or_default();
        total_records += shard.records.len() as u64;
        total_wall += wall;
        total_q_lines += quarantined.lines;
        total_q_bytes += quarantined.bytes;
        table.row(vec![
            name.clone(),
            shard.records.len().to_string(),
            format!("{:.2}", seconds(wall)),
            (shard.lines - shard.records.len()).to_string(),
            shard.corrupt.to_string(),
            quarantined.lines.to_string(),
        ]);
    }
    table.row(vec![
        "total".into(),
        total_records.to_string(),
        format!("{:.2}", seconds(total_wall)),
        String::new(),
        String::new(),
        total_q_lines.to_string(),
    ]);
    print!("{}", table.render());
    // Sidecars without a matching store file (e.g. `remote.quarantine`,
    // written by the --remote client) would otherwise be invisible.
    let orphan_sidecars: Vec<String> = {
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .ok()
            .into_iter()
            .flatten()
            .filter_map(Result::ok)
            .filter_map(|e| e.file_name().into_string().ok())
            .filter_map(|n| n.strip_suffix(".quarantine").map(str::to_owned))
            .filter(|stem| !experiments.contains(stem))
            .collect();
        names.sort();
        names
    };
    for stem in &orphan_sidecars {
        if let Ok(q) = store.quarantine_stats(stem) {
            total_q_lines += q.lines;
            total_q_bytes += q.bytes;
            eprintln!(
                "{program}: {}: {} quarantined line(s), {} byte(s) (no matching store file)",
                store.quarantine_path(stem).display(),
                q.lines,
                q.bytes
            );
        }
    }
    if total_q_lines > 0 {
        eprintln!(
            "{program}: {total_q_lines} quarantined line(s) in {total_q_bytes} byte(s) of \
             sidecar evidence (--purge-quarantine reclaims them)"
        );
    }
    if compact {
        for name in &experiments {
            compact_one(program, &store, name);
        }
    }
    if gc {
        let (mut total_dropped, mut total_bytes) = (0u64, 0u64);
        for name in &experiments {
            let live = registry_identities(name);
            let result = match &live {
                Some(map) => store.gc(name, &|fp| map.contains_key(fp)),
                // Unknown experiment: nothing in the registry produces
                // its records, so the whole file is stale.
                None => store.gc(name, &|_| false),
            };
            match result {
                Ok(stats) if stats.dropped > 0 || stats.superseded > 0 || stats.corrupt > 0 => {
                    total_dropped += stats.dropped as u64;
                    total_bytes += stats.reclaimed_bytes;
                    eprintln!(
                        "{program}: gc {name}: kept {}, dropped {} stale, {} superseded and \
                         {} corrupt line(s), reclaimed {} byte(s){}",
                        stats.kept,
                        stats.dropped,
                        stats.superseded,
                        stats.corrupt,
                        stats.reclaimed_bytes,
                        if stats.kept == 0 {
                            " (file removed)"
                        } else {
                            ""
                        },
                    );
                }
                Ok(_) => {}
                Err(e) => eprintln!("warning: store gc for {name} failed: {e}"),
            }
        }
        eprintln!("{program}: gc reclaimed {total_dropped} record(s), {total_bytes} byte(s)");
    }
    if purge_quarantine {
        let (mut purged_lines, mut purged_bytes, mut purged_files) = (0usize, 0u64, 0usize);
        let mut names = experiments.clone();
        names.extend(orphan_sidecars.iter().cloned());
        for name in &names {
            match store.purge_quarantine(name) {
                Ok(stats) if stats.lines > 0 || stats.bytes > 0 => {
                    purged_lines += stats.lines;
                    purged_bytes += stats.bytes;
                    purged_files += 1;
                    eprintln!(
                        "{program}: purged {}: {} quarantined line(s), {} byte(s)",
                        store.quarantine_path(name).display(),
                        stats.lines,
                        stats.bytes
                    );
                }
                Ok(_) => {}
                Err(e) => eprintln!("warning: cannot purge quarantine for {name}: {e}"),
            }
        }
        eprintln!(
            "{program}: purge-quarantine reclaimed {purged_lines} line(s), \
             {purged_bytes} byte(s) across {purged_files} sidecar(s)"
        );
    }
    if verify {
        // Verify runs after --compact/--gc so it checks what is left on
        // disk, not what those passes were about to rewrite.
        let findings = verify_store(program, &store, &experiments);
        if findings > 0 {
            fail(
                program,
                &format!("--verify found {findings} integrity finding(s)"),
            );
        }
    }
}

fn merge_usage() -> String {
    "usage: gm-run merge <SHARD.json>... [--json <PATH>] [--jobs <N>]\n\
     \n\
     Combines the JSON documents written by `gm-run --shard K/N --json ...`\n\
     into one report, bit-identical to the unsharded run that a shared\n\
     result store would produce: tables and CSV on stdout, the combined\n\
     document to --json. All N shards must be present exactly once.\n"
        .to_owned()
}

/// `gm-run merge`: recombine shard documents.
fn merge_main(args: &[String]) {
    let program = "gm-run";
    let mut files: Vec<String> = Vec::new();
    let mut json: Option<String> = None;
    let mut jobs = 0usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => match it.next() {
                Some(v) => json = Some(v.clone()),
                None => {
                    eprint!("{program}: --json requires a value\n\n{}", merge_usage());
                    std::process::exit(exit::USAGE);
                }
            },
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprint!(
                            "{program}: --jobs requires a positive integer\n\n{}",
                            merge_usage()
                        );
                        std::process::exit(exit::USAGE);
                    });
            }
            "--help" | "-h" => {
                print!("{}", merge_usage());
                std::process::exit(exit::OK);
            }
            flag if flag.starts_with('-') => {
                eprint!("{program}: unknown argument {flag:?}\n\n{}", merge_usage());
                std::process::exit(exit::USAGE);
            }
            file => files.push(file.to_owned()),
        }
    }
    if files.is_empty() {
        eprint!(
            "{program}: merge needs at least one shard document\n\n{}",
            merge_usage()
        );
        std::process::exit(exit::USAGE);
    }
    let docs: Vec<Json> = files
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(program, &format!("cannot read {path:?}: {e}")));
            Json::parse(&text)
                .unwrap_or_else(|e| fail(program, &format!("cannot parse {path:?}: {e}")))
        })
        .collect();
    let merged = merge::merge_docs(&docs, &Runner::new(jobs))
        .unwrap_or_else(|e| fail(program, &format!("merge: {e}")));
    let mut emitted = Vec::new();
    for (exp, out) in &merged.outputs {
        print!("{}", report_text(exp.title, out));
        if json.is_some() {
            emitted.push(experiment_json(exp, merged.scale, out));
        }
    }
    let mut doc = Json::object();
    doc.set("generator", program)
        .set("scale", merged.scale.name())
        .set("experiments", Json::Array(emitted));
    write_json(program, json.as_ref(), &doc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentKind;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_the_standard_flags() {
        let o = parse(
            &args(&["--scale", "bench", "--jobs", "4", "--json", "out.json"]),
            false,
        )
        .unwrap();
        assert_eq!(o.scale, Scale::Bench);
        assert_eq!(o.jobs, 4);
        assert_eq!(o.json.as_deref(), Some("out.json"));
        assert!(!o.list && o.filter.is_none() && !o.help);
        assert!(o.workloads.is_none() && o.store.is_none());
        assert!(!o.expect_cached && o.shard.is_none());
    }

    #[test]
    fn parses_the_store_and_shard_flags() {
        let o = parse(
            &args(&[
                "--store",
                ".gm-store",
                "--expect-cached",
                "--shard",
                "2/4",
                "--json",
                "s.json",
            ]),
            true,
        )
        .unwrap();
        assert_eq!(o.store.as_deref(), Some(".gm-store"));
        assert!(o.expect_cached);
        assert_eq!(o.shard, Some(Shard::new(2, 4).unwrap()));
    }

    #[test]
    fn parses_workload_lists() {
        let o = parse(&args(&["--workloads", "mcf,lbm,povray"]), false).unwrap();
        assert_eq!(
            o.workloads.as_deref().unwrap(),
            ["mcf".to_owned(), "lbm".to_owned(), "povray".to_owned()]
        );
        assert!(parse(&args(&["--workloads", ""]), false).is_err());
        assert!(parse(&args(&["--workloads", "a,,b"]), false).is_err());
    }

    #[test]
    fn legacy_scale_aliases_still_work() {
        assert_eq!(parse(&args(&["--full"]), false).unwrap().scale, Scale::Full);
        assert_eq!(
            parse(&args(&["--bench"]), false).unwrap().scale,
            Scale::Bench
        );
    }

    #[test]
    fn unknown_flags_are_rejected_not_ignored() {
        let e = parse(&args(&["--scal", "test"]), false).unwrap_err();
        assert!(e.contains("unknown argument"), "{e}");
        // Positional junk is rejected too.
        assert!(parse(&args(&["fig6"]), false).is_err());
    }

    #[test]
    fn selection_flags_only_exist_on_gm_run() {
        assert!(parse(&args(&["--list"]), true).unwrap().list);
        assert!(parse(&args(&["--list"]), false).is_err());
        let o = parse(&args(&["--filter", "fig1"]), true).unwrap();
        assert_eq!(o.filter.as_deref(), Some("fig1"));
        assert!(parse(&args(&["--filter", "fig1"]), false).is_err());
        assert!(parse(&args(&["--shard", "1/2", "--json", "s.json"]), false).is_err());
    }

    #[test]
    fn malformed_values_are_rejected() {
        assert!(parse(&args(&["--scale", "huge"]), false).is_err());
        assert!(parse(&args(&["--jobs", "0"]), false).is_err());
        assert!(parse(&args(&["--jobs", "many"]), false).is_err());
        assert!(parse(&args(&["--jobs"]), false).is_err());
        assert!(parse(&args(&["--json"]), false).is_err());
        assert!(parse(&args(&["--store"]), false).is_err());
        assert!(parse(&args(&["--shard", "0/4", "--json", "s.json"]), true).is_err());
        assert!(parse(&args(&["--shard", "nope", "--json", "s.json"]), true).is_err());
    }

    #[test]
    fn inconsistent_combinations_are_rejected() {
        let e = parse(&args(&["--expect-cached"]), false).unwrap_err();
        assert!(e.contains("--store"), "{e}");
        let e = parse(&args(&["--shard", "1/2"]), true).unwrap_err();
        assert!(e.contains("--json"), "{e}");
        // --list and --help escape the --json requirement (nothing runs).
        assert!(parse(&args(&["--shard", "1/2", "--list"]), true).is_ok());
        assert!(parse(&args(&["--shard", "1/2", "--help"]), true).is_ok());
    }

    #[test]
    fn parses_the_supervision_flags() {
        let o = parse(
            &args(&[
                "--retries",
                "0",
                "--budget",
                "30",
                "--strict",
                "--inject",
                "panic:mcf/GhostMinion@1",
            ]),
            false,
        )
        .unwrap();
        assert_eq!(o.retries, Some(0));
        assert_eq!(o.budget, Some(30));
        assert!(o.strict);
        assert_eq!(
            o.inject,
            Some(FaultPlan::none().panic_once("mcf", "GhostMinion"))
        );
        // Malformed values are rejected eagerly, before anything runs.
        assert!(parse(&args(&["--retries", "-1"]), false).is_err());
        assert!(parse(&args(&["--retries", "some"]), false).is_err());
        assert!(parse(&args(&["--budget", "0"]), false).is_err());
        assert!(parse(&args(&["--budget", "1.5"]), false).is_err());
        let e = parse(&args(&["--inject", "explode:a/b"]), false).unwrap_err();
        assert!(e.contains("--inject"), "{e}");
    }

    #[test]
    fn exit_codes_are_stable_and_documented() {
        // The table below is a public contract (CI scripts and the
        // result-service docs rely on it); renumbering is a break.
        assert_eq!(exit::OK, 0);
        assert_eq!(exit::FAILURE, 1);
        assert_eq!(exit::USAGE, 2);
        assert_eq!(exit::PARTIAL, 3);
        let u = usage("gm-run", true);
        assert!(u.contains("exit codes:"), "usage must print the table");
        for line in [
            "0  success",
            "1  hard failure",
            "2  usage error",
            "3  partial success",
        ] {
            assert!(u.contains(line), "{line:?} missing from usage");
        }
    }

    #[test]
    fn remote_requires_a_store() {
        let e = parse(&args(&["--remote", "127.0.0.1:4460"]), false).unwrap_err();
        assert!(e.contains("--store"), "{e}");
        let o = parse(
            &args(&["--store", ".gm-store", "--remote", "127.0.0.1:4460"]),
            false,
        )
        .unwrap();
        assert_eq!(o.remote.as_deref(), Some("127.0.0.1:4460"));
        assert!(parse(&args(&["--remote"]), false).is_err());
    }

    #[test]
    fn store_sync_requires_a_store() {
        let e = parse(&args(&["--store-sync"]), false).unwrap_err();
        assert!(e.contains("--store"), "{e}");
        let o = parse(&args(&["--store", ".gm-store", "--store-sync"]), false).unwrap();
        assert!(o.store_sync);
    }

    #[test]
    fn expect_cached_degrades_when_the_store_was_damaged() {
        let o = parse(&args(&["--store", ".gm-store", "--expect-cached"]), false).unwrap();
        // Misses explained by quarantined damage must not abort: the
        // jobs were re-simulated, which is the graceful degradation.
        // (The abort branch calls `exit` and is covered by CI smokes.)
        enforce_expect_cached("gm-test", &o, 2, 1);
        enforce_expect_cached("gm-test", &o, 0, 0);
    }

    #[test]
    fn telemetry_must_not_collide_with_the_json_output() {
        let o = parse(&args(&["--telemetry", "events.jsonl"]), false).unwrap();
        assert_eq!(o.telemetry.as_deref(), Some("events.jsonl"));
        assert!(parse(&args(&["--telemetry"]), false).is_err());
        // Same path for the span stream and the results document would
        // corrupt both (mirrors the bench --check/--json guard).
        let e = parse(
            &args(&["--telemetry", "out.json", "--json", "out.json"]),
            false,
        )
        .unwrap_err();
        assert!(e.contains("same file"), "{e}");
        assert!(parse(
            &args(&["--telemetry", "t.jsonl", "--json", "out.json"]),
            false
        )
        .is_ok());
    }

    #[test]
    fn usage_mentions_every_flag() {
        let u = usage("gm-run", true);
        for flag in [
            "--scale",
            "--jobs",
            "--json",
            "--workloads",
            "--store",
            "--expect-cached",
            "--list",
            "--filter",
            "--shard",
            "--telemetry",
            "--retries",
            "--budget",
            "--strict",
            "--inject",
            "--store-sync",
            "--remote",
            "merge",
            "bench",
            "store",
            "trace",
            "--check",
            "--gc",
            "--verify",
            "--purge-quarantine",
        ] {
            assert!(u.contains(flag), "{flag} missing from usage");
        }
        let fig = usage("fig6", false);
        assert!(!fig.contains("--filter") && !fig.contains("--shard"));
        assert!(fig.contains("--store") && fig.contains("--workloads"));
    }

    fn bench_doc(rates: &[(&str, f64)], total: f64) -> Json {
        let mut entries = Vec::new();
        for (name, rate) in rates {
            let mut e = Json::object();
            e.set("name", *name)
                .set("jobs", 1u64)
                .set("mcycles_per_s", format!("{rate:.1}"));
            entries.push(e);
        }
        let mut t = Json::object();
        t.set("mcycles_per_s", format!("{total:.1}"));
        let mut doc = Json::object();
        doc.set("experiments", Json::Array(entries)).set("total", t);
        doc
    }

    #[test]
    fn bench_check_passes_within_the_threshold() {
        let baseline = bench_doc(&[("fig6", 2.0), ("fig7", 0.8)], 1.6);
        let fresh = bench_doc(&[("fig6", 1.6), ("fig7", 3.1)], 2.1);
        // fig6 dropped to exactly 0.80x — inside the 25% tolerance.
        let out = bench_check(&fresh, &baseline).unwrap();
        assert!(out.regressions.is_empty(), "{:?}", out.regressions);
        assert_eq!(out.report.len(), 3, "two experiments + total");
    }

    #[test]
    fn bench_check_fails_past_the_threshold() {
        let baseline = bench_doc(&[("fig6", 2.0), ("fig7", 0.8)], 1.6);
        let fresh = bench_doc(&[("fig6", 1.4), ("fig7", 0.8)], 1.1);
        let out = bench_check(&fresh, &baseline).unwrap();
        // fig6 at 0.70x and total at ~0.69x both regress.
        assert_eq!(out.regressions.len(), 2, "{:?}", out.regressions);
        assert!(out.regressions[0].contains("fig6"));
        assert!(out.regressions[1].contains("total"));
        assert!(out.regressions.iter().all(|l| l.contains("REGRESSION")));
    }

    #[test]
    fn bench_check_ignores_total_on_filtered_runs() {
        let baseline = bench_doc(&[("fig6", 2.0), ("fig7", 0.8)], 1.6);
        // A `--filter fig7` check run: fig7 healthy, but the partial
        // total (0.9) must not be compared against the full-registry 1.6.
        let fresh = bench_doc(&[("fig7", 0.9)], 0.9);
        let out = bench_check(&fresh, &baseline).unwrap();
        assert!(out.regressions.is_empty(), "{:?}", out.regressions);
        assert_eq!(out.report.len(), 1, "only fig7 is comparable");
    }

    #[test]
    fn bench_check_rejects_non_snapshots() {
        let baseline = bench_doc(&[("fig6", 2.0)], 2.0);
        assert!(bench_check(&Json::object(), &baseline).is_err());
        let disjoint = bench_doc(&[("fig9", 1.0)], 1.0);
        assert!(bench_check(&disjoint, &baseline).is_err());
    }

    fn with_calibration(mut doc: Json, mops: f64) -> Json {
        doc.set("calibration", calibration_entry(mops, mops));
        doc
    }

    #[test]
    fn bench_check_normalises_away_machine_speed() {
        // Baseline from a fast runner (100 Mops); fresh run from a
        // machine exactly half as fast, where the engine — unchanged —
        // also measures half the raw throughput. Raw ratios (0.50x)
        // would fail; normalised they are 1.00x.
        let baseline = with_calibration(bench_doc(&[("fig6", 2.0), ("fig7", 0.8)], 1.6), 100.0);
        let fresh = with_calibration(bench_doc(&[("fig6", 1.0), ("fig7", 0.4)], 0.8), 50.0);
        let out = bench_check(&fresh, &baseline).unwrap();
        assert!(out.regressions.is_empty(), "{:?}", out.regressions);
        // One calibration header + two experiments + total.
        assert_eq!(out.report.len(), 4);
        assert!(out.report[0].contains("2.00x"), "{}", out.report[0]);
        assert!(
            out.report[1].contains("1.00x normalised"),
            "{}",
            out.report[1]
        );
    }

    #[test]
    fn bench_check_normalisation_cannot_hide_engine_regressions() {
        // Same 2x-slower machine, but the engine itself also lost 40%:
        // raw 0.30x, normalised 0.60x — still a regression. A machine
        // factor can explain away the host, never the engine.
        let baseline = with_calibration(bench_doc(&[("fig6", 2.0)], 2.0), 100.0);
        let fresh = with_calibration(bench_doc(&[("fig6", 0.6)], 0.6), 50.0);
        let out = bench_check(&fresh, &baseline).unwrap();
        assert_eq!(out.regressions.len(), 2, "{:?}", out.regressions);
        assert!(out.regressions[0].contains("0.60x normalised"));
    }

    #[test]
    fn bench_check_falls_back_to_raw_without_a_baseline_score() {
        // Old baselines predate the calibration loop; the comparison
        // must stay raw (and say nothing about normalisation).
        let baseline = bench_doc(&[("fig6", 2.0)], 2.0);
        let fresh = with_calibration(bench_doc(&[("fig6", 1.8)], 1.8), 50.0);
        let out = bench_check(&fresh, &baseline).unwrap();
        assert!(out.regressions.is_empty(), "{:?}", out.regressions);
        assert_eq!(out.report.len(), 2, "no calibration header");
        assert!(out.report.iter().all(|l| !l.contains("normalised")));
    }

    fn with_provenance(mut doc: Json, rustc: &str, host: &str) -> Json {
        doc.set("rustc", rustc).set("host", host);
        doc
    }

    #[test]
    fn bench_check_warns_on_toolchain_or_host_mismatch() {
        let baseline = with_provenance(
            bench_doc(&[("fig6", 2.0)], 2.0),
            "rustc 1.75.0",
            "x86_64-unknown-linux-gnu",
        );
        let fresh = with_provenance(
            bench_doc(&[("fig6", 1.9)], 1.9),
            "rustc 1.80.0",
            "aarch64-apple-darwin",
        );
        let out = bench_check(&fresh, &baseline).unwrap();
        // Warnings, not regressions: a toolchain roll must not fail CI.
        assert!(out.regressions.is_empty(), "{:?}", out.regressions);
        let warnings: Vec<&String> = out
            .report
            .iter()
            .filter(|l| l.starts_with("warning:"))
            .collect();
        assert_eq!(warnings.len(), 2, "{:?}", out.report);
        assert!(warnings[0].contains("rustc differs"), "{}", warnings[0]);
        assert!(warnings[1].contains("host differs"), "{}", warnings[1]);
    }

    #[test]
    fn bench_check_is_silent_on_matching_or_absent_provenance() {
        // Same toolchain and host: no warning.
        let tag = ("rustc 1.75.0", "x86_64-unknown-linux-gnu");
        let baseline = with_provenance(bench_doc(&[("fig6", 2.0)], 2.0), tag.0, tag.1);
        let fresh = with_provenance(bench_doc(&[("fig6", 2.0)], 2.0), tag.0, tag.1);
        let out = bench_check(&fresh, &baseline).unwrap();
        assert!(out.report.iter().all(|l| !l.starts_with("warning:")));
        // Baselines from before the metadata existed: also no warning.
        let old = bench_doc(&[("fig6", 2.0)], 2.0);
        let fresh = with_provenance(bench_doc(&[("fig6", 2.0)], 2.0), tag.0, tag.1);
        let out = bench_check(&fresh, &old).unwrap();
        assert!(out.report.iter().all(|l| !l.starts_with("warning:")));
    }

    #[test]
    fn bench_usage_mentions_the_bench_only_flags() {
        let u = bench_usage();
        for flag in ["--check", "--profile", "--workloads", "stage-prof"] {
            assert!(u.contains(flag), "{flag} missing from bench usage");
        }
    }

    #[test]
    fn trace_usage_mentions_the_trace_only_flags() {
        let u = trace_usage();
        for flag in [
            "--workload",
            "--scheme",
            "--scale",
            "--out",
            "--summary",
            "--validate",
            "--validate-telemetry",
            "Konata",
        ] {
            assert!(u.contains(flag), "{flag} missing from trace usage");
        }
    }

    #[test]
    fn calibration_entry_averages_the_probes() {
        let e = calibration_entry(120.0, 80.0);
        assert_eq!(
            e.get("kernel").and_then(Json::as_str),
            Some("mixwalk-8MiB-v1")
        );
        let mut doc = Json::object();
        doc.set("calibration", e);
        assert_eq!(bench_calibration(&doc), Some(100.0));
        // Snapshots without a score (or with a zero score) yield None.
        assert_eq!(bench_calibration(&Json::object()), None);
        let zeroed = with_calibration(Json::object(), 0.0);
        assert_eq!(bench_calibration(&zeroed), None);
    }

    #[test]
    fn only_table1_skips_simulation() {
        let skipped: Vec<&str> = experiment::registry()
            .iter()
            .filter(|e| matches!(e.kind, ExperimentKind::Table1))
            .map(|e| e.name)
            .collect();
        assert_eq!(skipped, ["table1"]);
    }
}
