//! Argument parsing and `main` bodies for the figure binaries and the
//! `gm-run` driver.
//!
//! Parsing is strict: unknown flags print usage and exit non-zero
//! instead of being silently ignored.

use crate::experiment::{self, Experiment};
use crate::report::{experiment_json, run_experiment};
use crate::runner::Runner;
use gm_stats::Json;
use gm_workloads::Scale;

/// Parsed command-line options, shared by `gm-run` and the per-figure
/// binaries (which do not take `--list`/`--filter`).
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    pub scale: Scale,
    /// Worker threads; 0 = available parallelism.
    pub jobs: usize,
    /// Write structured results to this path.
    pub json: Option<String>,
    /// List registered experiments instead of running.
    pub list: bool,
    /// Substring filter selecting experiments to run (gm-run only).
    pub filter: Option<String>,
    pub help: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: Scale::Test,
            jobs: 0,
            json: None,
            list: false,
            filter: None,
            help: false,
        }
    }
}

/// Usage text. `selection` adds the `gm-run`-only flags.
pub fn usage(program: &str, selection: bool) -> String {
    let mut u = format!(
        "usage: {program} [options]\n\
         \n\
         options:\n\
         \x20 --scale <test|bench|full>  workload scale (default: test)\n\
         \x20 --full                     alias for --scale full\n\
         \x20 --bench                    alias for --scale bench\n\
         \x20 --jobs <N>                 worker threads (default: available parallelism)\n\
         \x20 --json <PATH>              write structured results to PATH\n\
         \x20 --help                     show this help\n"
    );
    if selection {
        u.push_str(
            "\x20 --list                     list registered experiments and exit\n\
             \x20 --filter <SUBSTR>          run only experiments whose name contains SUBSTR\n",
        );
    }
    u
}

/// Parses `args` (without the program name). `selection` enables
/// `--list`/`--filter`. Returns a human-readable error for unknown
/// flags, missing values, or malformed values.
pub fn parse(args: &[String], selection: bool) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = value("--scale", &mut it)?;
                opts.scale = Scale::from_name(&v)
                    .ok_or_else(|| format!("invalid --scale {v:?} (expected test|bench|full)"))?;
            }
            "--full" => opts.scale = Scale::Full,
            "--bench" => opts.scale = Scale::Bench,
            "--jobs" => {
                let v = value("--jobs", &mut it)?;
                opts.jobs =
                    v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("invalid --jobs {v:?} (expected a positive integer)")
                    })?;
            }
            "--json" => opts.json = Some(value("--json", &mut it)?),
            "--list" if selection => opts.list = true,
            "--filter" if selection => opts.filter = Some(value("--filter", &mut it)?),
            "--help" | "-h" => opts.help = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn parse_or_exit(program: &str, selection: bool) -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args, selection) {
        Ok(opts) => {
            if opts.help {
                print!("{}", usage(program, selection));
                std::process::exit(0);
            }
            opts
        }
        Err(e) => {
            eprint!("{program}: {e}\n\n{}", usage(program, selection));
            std::process::exit(2);
        }
    }
}

/// Runs `experiments` with `opts`, printing each report and writing the
/// combined JSON if requested.
fn run_and_emit(program: &str, experiments: &[Experiment], opts: &Options) {
    let runner = Runner::new(opts.jobs);
    let mut emitted = Vec::new();
    for exp in experiments {
        let out = run_experiment(&runner, exp, opts.scale);
        for line in &out.preamble {
            println!("{line}");
        }
        crate::emit(exp.title, &out.table);
        for line in &out.postamble {
            println!("{line}");
        }
        if opts.json.is_some() {
            emitted.push(experiment_json(exp, opts.scale, &out));
        }
    }
    if let Some(path) = &opts.json {
        let mut doc = Json::object();
        doc.set("generator", program)
            .set("scale", opts.scale.name())
            .set("experiments", Json::Array(emitted));
        if let Err(e) = std::fs::write(path, doc.render() + "\n") {
            eprintln!("{program}: cannot write {path:?}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}

/// `main` body of a single-figure binary: strict flag parsing, then the
/// named registry experiment.
pub fn figure_main(name: &str) {
    let opts = parse_or_exit(name, false);
    let exp =
        experiment::find(name).unwrap_or_else(|| panic!("{name} is not a registered experiment"));
    run_and_emit(name, &[exp], &opts);
}

/// `main` body of the `gm-run` driver: `--list`, `--filter`, or the
/// whole registry.
pub fn gm_run_main() {
    let opts = parse_or_exit("gm-run", true);
    let selected = match &opts.filter {
        Some(pattern) => experiment::matching(pattern),
        None => experiment::registry(),
    };
    if opts.list {
        // --list respects --filter, so a filter can be previewed
        // without running it.
        let mut t = gm_stats::Table::new(vec!["experiment".into(), "title".into()]);
        for e in &selected {
            t.row(vec![e.name.to_owned(), e.title.to_owned()]);
        }
        print!("{}", t.render());
        return;
    }
    if selected.is_empty() {
        eprintln!(
            "gm-run: no experiment matches {:?} (try --list)",
            opts.filter.as_deref().unwrap_or("")
        );
        std::process::exit(1);
    }
    run_and_emit("gm-run", &selected, &opts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentKind;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_the_standard_flags() {
        let o = parse(
            &args(&["--scale", "bench", "--jobs", "4", "--json", "out.json"]),
            false,
        )
        .unwrap();
        assert_eq!(o.scale, Scale::Bench);
        assert_eq!(o.jobs, 4);
        assert_eq!(o.json.as_deref(), Some("out.json"));
        assert!(!o.list && o.filter.is_none() && !o.help);
    }

    #[test]
    fn legacy_scale_aliases_still_work() {
        assert_eq!(parse(&args(&["--full"]), false).unwrap().scale, Scale::Full);
        assert_eq!(
            parse(&args(&["--bench"]), false).unwrap().scale,
            Scale::Bench
        );
    }

    #[test]
    fn unknown_flags_are_rejected_not_ignored() {
        let e = parse(&args(&["--scal", "test"]), false).unwrap_err();
        assert!(e.contains("unknown argument"), "{e}");
        // Positional junk is rejected too.
        assert!(parse(&args(&["fig6"]), false).is_err());
    }

    #[test]
    fn selection_flags_only_exist_on_gm_run() {
        assert!(parse(&args(&["--list"]), true).unwrap().list);
        assert!(parse(&args(&["--list"]), false).is_err());
        let o = parse(&args(&["--filter", "fig1"]), true).unwrap();
        assert_eq!(o.filter.as_deref(), Some("fig1"));
        assert!(parse(&args(&["--filter", "fig1"]), false).is_err());
    }

    #[test]
    fn malformed_values_are_rejected() {
        assert!(parse(&args(&["--scale", "huge"]), false).is_err());
        assert!(parse(&args(&["--jobs", "0"]), false).is_err());
        assert!(parse(&args(&["--jobs", "many"]), false).is_err());
        assert!(parse(&args(&["--jobs"]), false).is_err());
        assert!(parse(&args(&["--json"]), false).is_err());
    }

    #[test]
    fn usage_mentions_every_flag() {
        let u = usage("gm-run", true);
        for flag in ["--scale", "--jobs", "--json", "--list", "--filter"] {
            assert!(u.contains(flag), "{flag} missing from usage");
        }
        assert!(!usage("fig6", false).contains("--filter"));
    }

    #[test]
    fn only_table1_skips_simulation() {
        let skipped: Vec<&str> = experiment::registry()
            .iter()
            .filter(|e| matches!(e.kind, ExperimentKind::Table1))
            .map(|e| e.name)
            .collect();
        assert_eq!(skipped, ["table1"]);
    }
}
