//! Deterministic job-level fault injection for supervision tests.
//!
//! A [`FaultPlan`] tells the [`crate::Runner`] to make specific
//! (workload × scheme) jobs misbehave — panic, stall briefly, or wedge
//! past their wall-clock budget — on specific attempts. Plans are pure
//! data: the same plan against the same sweep always faults the same
//! jobs, so "the sweep survives a panicking job" is an ordinary
//! deterministic test (and a CI smoke via `gm-run --inject`).
//!
//! The textual spec (`--inject`) is `;`-separated clauses:
//!
//! ```text
//! panic:<workload>/<scheme>[@<attempt>]
//! delay:<workload>/<scheme>[@<attempt>]:<millis>
//! wedge:<workload>/<scheme>[@<attempt>]
//! seed:<u64>:<percent>
//! ```
//!
//! `*` matches any workload or scheme; `@N` restricts a clause to the
//! N-th attempt (1-based) — `panic:mcf/GhostMinion@1` with one retry
//! exercises the retry-heals-a-transient path. `seed` faults a
//! deterministic `percent`% of (job, attempt) pairs with panics,
//! derived from the seed by hashing, for chaos-style sweeps.

use std::time::Duration;

/// What an injected fault makes the job do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at job start (the supervised path a deadlocked simulation
    /// hitting its cycle deadline also takes).
    Panic,
    /// Sleep before running, then run normally.
    Delay(Duration),
    /// Sleep long enough to trip any per-job budget (10× the budget;
    /// 60 s if the runner has none), then run normally — so an
    /// unbudgeted wedge degrades to a slow success instead of hanging
    /// the suite.
    Wedge,
}

/// One clause of a plan: which jobs it matches and what they do.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Rule {
    /// Workload name, `None` for any.
    workload: Option<String>,
    /// Scheme column label, `None` for any.
    scheme: Option<String>,
    /// 1-based attempt this clause fires on, `None` for every attempt.
    attempt: Option<u32>,
    kind: FaultKind,
}

impl Rule {
    fn matches(&self, workload: &str, scheme: &str, attempt: u32) -> bool {
        // `Option::is_none_or` needs Rust 1.82; the workspace MSRV is 1.75.
        fn any_or<T, U: PartialEq<T> + Copy>(field: &Option<T>, v: U) -> bool {
            match field {
                None => true,
                Some(f) => v == *f,
            }
        }
        any_or(&self.workload.as_deref(), workload)
            && any_or(&self.scheme.as_deref(), scheme)
            && any_or(&self.attempt, attempt)
    }
}

/// A deterministic set of job faults (see the module docs for the
/// textual form).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    rules: Vec<Rule>,
    /// Seeded chaos mode: (seed, percent of (job, attempt) pairs that
    /// panic).
    seeded: Option<(u64, u32)>,
}

/// SplitMix64 over a byte stream: deterministic, platform-independent.
fn mix_bytes(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state = state
            .wrapping_add(u64::from(b))
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        state = (state ^ (state >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        state = (state ^ (state >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        state ^= state >> 31;
    }
    state
}

impl FaultPlan {
    /// A plan injecting nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.seeded.is_none()
    }

    /// Adds a clause: `kind` for (`workload`, `scheme`) on `attempt`
    /// (1-based; `None` = every attempt). `"*"` matches any workload or
    /// scheme.
    pub fn with(
        mut self,
        kind: FaultKind,
        workload: &str,
        scheme: &str,
        attempt: Option<u32>,
    ) -> Self {
        let name = |s: &str| (s != "*").then(|| s.to_owned());
        self.rules.push(Rule {
            workload: name(workload),
            scheme: name(scheme),
            attempt,
            kind,
        });
        self
    }

    /// Panic (`workload`, `scheme`) on every attempt.
    pub fn panic_on(self, workload: &str, scheme: &str) -> Self {
        self.with(FaultKind::Panic, workload, scheme, None)
    }

    /// Panic (`workload`, `scheme`) on the first attempt only — the
    /// transient a single retry heals.
    pub fn panic_once(self, workload: &str, scheme: &str) -> Self {
        self.with(FaultKind::Panic, workload, scheme, Some(1))
    }

    /// Wedge (`workload`, `scheme`) past any per-job budget.
    pub fn wedge_on(self, workload: &str, scheme: &str) -> Self {
        self.with(FaultKind::Wedge, workload, scheme, None)
    }

    /// Seeded chaos: a deterministic `percent`% of (job, attempt)
    /// pairs panic.
    pub fn seeded(mut self, seed: u64, percent: u32) -> Self {
        self.seeded = Some((seed, percent));
        self
    }

    /// The fault (first matching clause wins, then seeded chaos) for
    /// `attempt` (1-based) of job (`workload`, `scheme`), if any.
    pub fn fault_for(&self, workload: &str, scheme: &str, attempt: u32) -> Option<FaultKind> {
        if let Some(rule) = self
            .rules
            .iter()
            .find(|r| r.matches(workload, scheme, attempt))
        {
            return Some(rule.kind.clone());
        }
        let (seed, percent) = self.seeded?;
        let mut h = mix_bytes(seed, workload.as_bytes());
        h = mix_bytes(h, scheme.as_bytes());
        h = mix_bytes(h, &attempt.to_le_bytes());
        (h % 100 < u64::from(percent)).then_some(FaultKind::Panic)
    }

    /// Parses the `--inject` spec (see the module docs). Errors name
    /// the offending clause.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let err = |what: &str| format!("invalid --inject clause {clause:?}: {what}");
            let (verb, rest) = clause
                .split_once(':')
                .ok_or_else(|| err("expected <kind>:<args>"))?;
            if verb == "seed" {
                let (seed, percent) = rest
                    .split_once(':')
                    .ok_or_else(|| err("expected seed:<u64>:<percent>"))?;
                let seed = seed.parse::<u64>().map_err(|_| err("bad seed"))?;
                let percent = percent
                    .parse::<u32>()
                    .ok()
                    .filter(|p| *p <= 100)
                    .ok_or_else(|| err("percent must be 0..=100"))?;
                plan = plan.seeded(seed, percent);
                continue;
            }
            let (target, millis) = match verb {
                "delay" => {
                    let (target, ms) = rest
                        .rsplit_once(':')
                        .ok_or_else(|| err("expected delay:<job>:<millis>"))?;
                    let ms = ms.parse::<u64>().map_err(|_| err("bad millis"))?;
                    (target, Some(ms))
                }
                "panic" | "wedge" => (rest, None),
                other => return Err(err(&format!("unknown fault kind {other:?}"))),
            };
            let (job, attempt) = match target.split_once('@') {
                Some((job, n)) => {
                    let n = n
                        .parse::<u32>()
                        .ok()
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| err("attempt must be >= 1"))?;
                    (job, Some(n))
                }
                None => (target, None),
            };
            let (workload, scheme) = job
                .split_once('/')
                .ok_or_else(|| err("expected <workload>/<scheme>"))?;
            if workload.is_empty() || scheme.is_empty() {
                return Err(err("empty workload or scheme"));
            }
            let kind = match verb {
                "panic" => FaultKind::Panic,
                "wedge" => FaultKind::Wedge,
                "delay" => FaultKind::Delay(Duration::from_millis(millis.unwrap())),
                _ => unreachable!("verbs filtered above"),
            };
            plan = plan.with(kind, workload, scheme, attempt);
        }
        if plan.is_empty() {
            return Err(format!("--inject spec {spec:?} injects nothing"));
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clauses_match_job_scheme_and_attempt() {
        let plan = FaultPlan::none().panic_once("mcf", "GhostMinion").with(
            FaultKind::Delay(Duration::from_millis(5)),
            "*",
            "Unsafe",
            None,
        );
        assert_eq!(
            plan.fault_for("mcf", "GhostMinion", 1),
            Some(FaultKind::Panic)
        );
        assert_eq!(plan.fault_for("mcf", "GhostMinion", 2), None);
        assert_eq!(
            plan.fault_for("anything", "Unsafe", 3),
            Some(FaultKind::Delay(Duration::from_millis(5)))
        );
        assert_eq!(plan.fault_for("mcf", "Baseline", 1), None);
    }

    #[test]
    fn parse_round_trips_the_builder_forms() {
        let plan =
            FaultPlan::parse("panic:mcf/GhostMinion@1;delay:*/Unsafe:5;wedge:gcc/*").unwrap();
        assert_eq!(
            plan,
            FaultPlan::none()
                .panic_once("mcf", "GhostMinion")
                .with(
                    FaultKind::Delay(Duration::from_millis(5)),
                    "*",
                    "Unsafe",
                    None
                )
                .wedge_on("gcc", "*")
        );
        assert_eq!(
            FaultPlan::parse("seed:42:25").unwrap(),
            FaultPlan::none().seeded(42, 25)
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "panic",
            "panic:mcf",
            "panic:/GhostMinion",
            "panic:mcf/",
            "panic:mcf/GhostMinion@0",
            "panic:mcf/GhostMinion@x",
            "delay:mcf/GhostMinion",
            "delay:mcf/GhostMinion:ms",
            "seed:42",
            "seed:42:101",
            "explode:mcf/GhostMinion",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn seeded_chaos_is_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::none().seeded(7, 30);
        let again = FaultPlan::none().seeded(7, 30);
        let mut hits = 0;
        for i in 0..200u32 {
            let w = format!("w{i}");
            let a = plan.fault_for(&w, "S", 1);
            assert_eq!(a, again.fault_for(&w, "S", 1), "deterministic");
            if a.is_some() {
                hits += 1;
            }
        }
        assert!((30..=90).contains(&hits), "got {hits} faults in 200 draws");
        assert!(FaultPlan::none()
            .seeded(7, 0)
            .fault_for("w", "S", 1)
            .is_none());
    }
}
