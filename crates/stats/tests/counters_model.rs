//! Model test for the interned counters: under arbitrary event streams,
//! a [`gm_stats::Counters`] must be observationally identical — render,
//! iteration order, lengths, lookups, merges — to the string-keyed
//! `BTreeMap<String, u64>` it replaced. This is what guarantees every
//! report, JSON record, and fingerprint stays byte-identical after the
//! O(1) interning rewrite.

use gm_stats::Counters;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The pre-interning implementation, kept as the specification: lazy
/// creation on first touch (including zero-amount touches), name-ordered
/// iteration, merge by summation.
#[derive(Default)]
struct ModelCounters {
    values: BTreeMap<String, u64>,
}

impl ModelCounters {
    fn add(&mut self, name: &str, amount: u64) {
        match self.values.get_mut(name) {
            Some(v) => *v += amount,
            None => {
                self.values.insert(name.to_owned(), amount);
            }
        }
    }

    fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    fn merge(&mut self, other: &ModelCounters) {
        for (k, v) in &other.values {
            self.add(k, *v);
        }
    }

    fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.values {
            out.push_str(&format!("{k}: {v}\n"));
        }
        out
    }
}

/// One step of an event stream, decoded from a sampled `u64`. Names come
/// from a small pool so streams collide on counters (the interesting
/// case); amounts include 0 (a zero-amount touch still creates the
/// counter — records round-trip zero-valued counters).
#[derive(Clone, Debug)]
enum Op {
    Add { name: usize, amount: u64 },
    Inc { name: usize },
    MergeScratch,
    ClearScratch,
}

impl Op {
    fn decode(x: u64) -> Op {
        let name = ((x >> 8) % 12) as usize;
        let amount = (x >> 16) % 1000;
        match x % 11 {
            0..=5 => Op::Add { name, amount },
            6..=8 => Op::Inc { name },
            9 => Op::MergeScratch,
            _ => Op::ClearScratch,
        }
    }
}

/// The name pool deliberately includes prefix pairs and names that sort
/// differently from their interning order.
fn name(i: usize) -> String {
    [
        "loads",
        "load_forwards",
        "zeta",
        "alpha",
        "l1d_hits",
        "l1d",
        "energy_l1d_reads",
        "a",
        "aa",
        "z",
        "model-only-☃",
        "stores",
    ][i]
        .to_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Satellite requirement: interned `Counters` render and merge
    /// byte-identically to the string-keyed reference model under random
    /// event streams.
    #[test]
    fn interned_counters_match_string_keyed_model(
        raw_ops in proptest::collection::vec(any::<u64>(), 0..60),
    ) {
        let ops: Vec<Op> = raw_ops.iter().map(|&x| Op::decode(x)).collect();
        let mut real = Counters::new();
        let mut model = ModelCounters::default();
        // A second stream merged in periodically, so `merge` is exercised
        // against sets with overlapping and disjoint names.
        let mut real_scratch = Counters::new();
        let mut model_scratch = ModelCounters::default();

        for op in &ops {
            match op {
                Op::Add { name: n, amount } => {
                    real.add(&name(*n), *amount);
                    model.add(&name(*n), *amount);
                    real_scratch.add(&name(11 - *n), *amount + 1);
                    model_scratch.add(&name(11 - *n), *amount + 1);
                }
                Op::Inc { name: n } => {
                    real.inc(&name(*n));
                    model.add(&name(*n), 1);
                }
                Op::MergeScratch => {
                    real.merge(&real_scratch);
                    model.merge(&model_scratch);
                }
                Op::ClearScratch => {
                    real_scratch.clear();
                    model_scratch = ModelCounters::default();
                }
            }
            // Every observation matches after every step, not just at
            // the end.
            prop_assert_eq!(real.to_string(), model.render());
            prop_assert_eq!(real.len(), model.values.len());
            prop_assert_eq!(real.is_empty(), model.values.is_empty());
        }

        // Point lookups agree for touched and untouched names.
        for i in 0..12 {
            prop_assert_eq!(real.get(&name(i)), model.get(&name(i)));
        }
        prop_assert_eq!(real.get("never-touched-anywhere"), 0);

        // Iteration is name-ordered with the model's exact pairs.
        let real_pairs: Vec<(String, u64)> =
            real.iter().map(|(k, v)| (k.to_owned(), v)).collect();
        let model_pairs: Vec<(String, u64)> =
            model.values.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(real_pairs, model_pairs);

        // A merge of the final state into a fresh set reproduces it.
        let mut fresh = Counters::new();
        fresh.merge(&real);
        prop_assert_eq!(fresh.to_string(), model.render());
        prop_assert_eq!(&fresh, &real);
    }
}
