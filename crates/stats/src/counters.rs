//! Named event counters, interned for O(1) bumps.
//!
//! Counter names are interned process-wide into dense [`CounterId`]s so
//! the hot path — a simulator component bumping a counter millions of
//! times per job — is a single `Vec` index instead of a
//! `BTreeMap<String, u64>` walk doing a string comparison per level.
//! Call sites resolve their name once (see [`counter_ids!`]); the
//! name-ordered view every report and JSON record relies on is
//! reconstructed only at render/merge time, so all output stays
//! byte-identical to the string-keyed implementation.

use std::fmt;
use std::sync::{OnceLock, RwLock};

/// A process-wide interned counter name.
///
/// Ids are dense (0, 1, 2, …) in interning order and never freed: the
/// registry leaks one small string per *distinct* counter name, which is
/// bounded by the simulator's fixed event vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CounterId(u32);

struct Registry {
    /// Sorted by name for binary-search lookup (interning is cold: once
    /// per call site, or per distinct name when parsing stored records).
    by_name: Vec<(&'static str, u32)>,
    names: Vec<&'static str>,
}

fn registry() -> &'static RwLock<Registry> {
    static REGISTRY: OnceLock<RwLock<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        RwLock::new(Registry {
            by_name: Vec::new(),
            names: Vec::new(),
        })
    })
}

impl CounterId {
    /// Interns `name`, returning its stable id. The first interning of a
    /// name allocates; later calls (and [`CounterId::name`]) are lookups.
    pub fn intern(name: &str) -> CounterId {
        let reg = registry();
        {
            let r = reg.read().expect("counter registry poisoned");
            if let Ok(i) = r.by_name.binary_search_by_key(&name, |&(n, _)| n) {
                return CounterId(r.by_name[i].1);
            }
        }
        let mut r = reg.write().expect("counter registry poisoned");
        // Double-check under the write lock: another thread may have
        // interned the name between our read unlock and write lock.
        match r.by_name.binary_search_by_key(&name, |&(n, _)| n) {
            Ok(i) => CounterId(r.by_name[i].1),
            Err(slot) => {
                let id = r.names.len() as u32;
                let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
                r.names.push(leaked);
                r.by_name.insert(slot, (leaked, id));
                CounterId(id)
            }
        }
    }

    /// The id of an already-interned name, without interning it.
    pub fn lookup(name: &str) -> Option<CounterId> {
        let r = registry().read().expect("counter registry poisoned");
        r.by_name
            .binary_search_by_key(&name, |&(n, _)| n)
            .ok()
            .map(|i| CounterId(r.by_name[i].1))
    }

    /// The interned name.
    pub fn name(self) -> &'static str {
        registry().read().expect("counter registry poisoned").names[self.0 as usize]
    }

    /// Dense index for flat-array storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Resolves each counter name to its [`CounterId`] once, caching it in a
/// per-call-site `OnceLock`:
///
/// ```
/// mod id {
///     gm_stats::counter_ids! {
///         loads => "loads",
///         l1d_hits => "l1d_hits",
///     }
/// }
/// let mut c = gm_stats::Counters::new();
/// c.bump(id::loads());
/// assert_eq!(c.get("loads"), 1);
/// ```
#[macro_export]
macro_rules! counter_ids {
    ($($name:ident => $text:expr),+ $(,)?) => {
        $(
            #[inline]
            pub(crate) fn $name() -> $crate::CounterId {
                static ID: ::std::sync::OnceLock<$crate::CounterId> =
                    ::std::sync::OnceLock::new();
                *ID.get_or_init(|| $crate::CounterId::intern($text))
            }
        )+
    };
}

/// A set of named, monotonically increasing event counters.
///
/// Counters are created lazily on first increment, so simulator components
/// can record events without pre-registration. Storage is a flat vector
/// indexed by [`CounterId`]; iteration and rendering are name-ordered,
/// which the tests and report output rely on.
///
/// # Examples
///
/// ```
/// let mut c = gm_stats::Counters::new();
/// c.add("loads", 3);
/// c.inc("loads");
/// assert_eq!(c.get("loads"), 4);
/// assert_eq!(c.get("never-touched"), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Counters {
    /// `values[id] = Some(count)` once the counter was touched. `None`
    /// slots are ids interned by *other* counter sets; a counter touched
    /// with amount 0 still exists (and renders), exactly as the
    /// string-keyed map behaved.
    values: Vec<Option<u64>>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `id` by one. The O(1) hot path.
    #[inline]
    pub fn bump(&mut self, id: CounterId) {
        self.add_id(id, 1);
    }

    /// Increments `id` by `amount`. The O(1) hot path.
    #[inline]
    pub fn add_id(&mut self, id: CounterId, amount: u64) {
        let i = id.index();
        if i >= self.values.len() {
            self.values.resize(i + 1, None);
        }
        match &mut self.values[i] {
            Some(v) => *v += amount,
            slot => *slot = Some(amount),
        }
    }

    /// Increments `name` by one, interning it (cold path; hot call sites
    /// should resolve a [`CounterId`] once via [`counter_ids!`]).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments `name` by `amount`, interning it (cold path).
    pub fn add(&mut self, name: &str, amount: u64) {
        self.add_id(CounterId::intern(name), amount);
    }

    /// Returns the value of `id`, or zero if it was never incremented.
    pub fn get_id(&self, id: CounterId) -> u64 {
        self.values.get(id.index()).copied().flatten().unwrap_or(0)
    }

    /// Returns the value of `name`, or zero if it was never incremented.
    pub fn get(&self, name: &str) -> u64 {
        // A name nobody ever interned cannot have been touched here;
        // don't pollute the registry with it.
        CounterId::lookup(name).map_or(0, |id| self.get_id(id))
    }

    /// Returns `get(num) / get(den)` as a fraction, or zero when the
    /// denominator counter is zero.
    pub fn fraction(&self, num: &str, den: &str) -> f64 {
        let d = self.get(den);
        if d == 0 {
            0.0
        } else {
            self.get(num) as f64 / d as f64
        }
    }

    /// Merges `other` into `self`, summing counters with the same name.
    pub fn merge(&mut self, other: &Counters) {
        for (i, v) in other.values.iter().enumerate() {
            if let Some(v) = v {
                self.add_id(CounterId(i as u32), *v);
            }
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> {
        let mut pairs: Vec<(&'static str, u64)> = self
            .values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (CounterId(i as u32).name(), v)))
            .collect();
        pairs.sort_unstable_by_key(|&(name, _)| name);
        pairs.into_iter()
    }

    /// Number of distinct counter names.
    pub fn len(&self) -> usize {
        self.values.iter().flatten().count()
    }

    /// Returns `true` when no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.values.iter().all(Option::is_none)
    }

    /// Removes all counters.
    pub fn clear(&mut self) {
        self.values.clear();
    }
}

impl PartialEq for Counters {
    /// Logical equality: the same set of touched counters with the same
    /// values, regardless of how many trailing ids either set's vector
    /// happens to cover.
    fn eq(&self, other: &Self) -> bool {
        let n = self.values.len().max(other.values.len());
        (0..n).all(|i| {
            self.values.get(i).copied().flatten() == other.values.get(i).copied().flatten()
        })
    }
}

impl Eq for Counters {}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let c = Counters::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.get("x"), 0);
    }

    #[test]
    fn inc_and_add_accumulate() {
        let mut c = Counters::new();
        c.inc("a");
        c.add("a", 9);
        c.inc("b");
        assert_eq!(c.get("a"), 10);
        assert_eq!(c.get("b"), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn id_and_string_paths_hit_the_same_counter() {
        let mut c = Counters::new();
        let id = CounterId::intern("interned-path");
        c.bump(id);
        c.add_id(id, 4);
        c.add("interned-path", 2);
        assert_eq!(c.get("interned-path"), 7);
        assert_eq!(c.get_id(id), 7);
        assert_eq!(id.name(), "interned-path");
        assert_eq!(CounterId::intern("interned-path"), id, "ids are stable");
        assert_eq!(CounterId::lookup("interned-path"), Some(id));
    }

    #[test]
    fn counter_ids_macro_resolves_once() {
        mod id {
            crate::counter_ids! {
                macro_test_events => "macro-test-events",
            }
        }
        assert_eq!(id::macro_test_events(), id::macro_test_events());
        let mut c = Counters::new();
        c.bump(id::macro_test_events());
        assert_eq!(c.get("macro-test-events"), 1);
    }

    #[test]
    fn touched_with_zero_still_exists() {
        // The string-keyed map created an entry on `add(name, 0)`; the
        // interned representation must preserve that (records round-trip
        // zero-valued counters).
        let mut c = Counters::new();
        c.add("zeroed", 0);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        assert_eq!(c.iter().find(|&(n, _)| n == "zeroed"), Some(("zeroed", 0)));
    }

    #[test]
    fn fraction_handles_zero_denominator() {
        let mut c = Counters::new();
        assert_eq!(c.fraction("hits", "accesses"), 0.0);
        c.add("hits", 1);
        c.add("accesses", 4);
        assert!((c.fraction("hits", "accesses") - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_by_name() {
        let mut a = Counters::new();
        a.add("x", 2);
        let mut b = Counters::new();
        b.add("x", 3);
        b.add("y", 1);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = Counters::new();
        c.inc("zeta");
        c.inc("alpha");
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn display_lists_counters() {
        let mut c = Counters::new();
        c.add("loads", 7);
        assert_eq!(c.to_string(), "loads: 7\n");
    }

    #[test]
    fn clear_resets() {
        let mut c = Counters::new();
        c.inc("a");
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn equality_ignores_trailing_unrelated_ids() {
        // Interning ids for *other* counter sets grows this one's vector
        // on the next touch; logical equality must not see that.
        let mut a = Counters::new();
        a.add("eq-x", 1);
        let _unrelated = CounterId::intern("eq-unrelated-padding");
        let mut b = Counters::new();
        b.add("eq-unrelated-padding", 0);
        b.clear();
        b.add("eq-x", 1);
        assert_eq!(a, b);
        b.inc("eq-x");
        assert_ne!(a, b);
    }
}
