//! Named event counters.

use std::collections::BTreeMap;
use std::fmt;

/// A set of named, monotonically increasing event counters.
///
/// Counters are created lazily on first increment, so simulator components
/// can record events without pre-registration. `BTreeMap` keeps iteration
/// deterministic, which the tests and report output rely on.
///
/// # Examples
///
/// ```
/// let mut c = gm_stats::Counters::new();
/// c.add("loads", 3);
/// c.inc("loads");
/// assert_eq!(c.get("loads"), 4);
/// assert_eq!(c.get("never-touched"), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    values: BTreeMap<String, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments `name` by `amount`.
    pub fn add(&mut self, name: &str, amount: u64) {
        // Hot path: counters are bumped millions of times per simulated
        // job. `entry` would allocate an owned key on every call; only
        // the first increment of a name needs one.
        match self.values.get_mut(name) {
            Some(v) => *v += amount,
            None => {
                self.values.insert(name.to_owned(), amount);
            }
        }
    }

    /// Returns the value of `name`, or zero if it was never incremented.
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Returns `get(num) / get(den)` as a fraction, or zero when the
    /// denominator counter is zero.
    pub fn fraction(&self, num: &str, den: &str) -> f64 {
        let d = self.get(den);
        if d == 0 {
            0.0
        } else {
            self.get(num) as f64 / d as f64
        }
    }

    /// Merges `other` into `self`, summing counters with the same name.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in &other.values {
            self.add(k, *v);
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counter names.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Removes all counters.
    pub fn clear(&mut self) {
        self.values.clear();
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k}: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let c = Counters::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.get("x"), 0);
    }

    #[test]
    fn inc_and_add_accumulate() {
        let mut c = Counters::new();
        c.inc("a");
        c.add("a", 9);
        c.inc("b");
        assert_eq!(c.get("a"), 10);
        assert_eq!(c.get("b"), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn fraction_handles_zero_denominator() {
        let mut c = Counters::new();
        assert_eq!(c.fraction("hits", "accesses"), 0.0);
        c.add("hits", 1);
        c.add("accesses", 4);
        assert!((c.fraction("hits", "accesses") - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_by_name() {
        let mut a = Counters::new();
        a.add("x", 2);
        let mut b = Counters::new();
        b.add("x", 3);
        b.add("y", 1);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = Counters::new();
        c.inc("zeta");
        c.inc("alpha");
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn display_lists_counters() {
        let mut c = Counters::new();
        c.add("loads", 7);
        assert_eq!(c.to_string(), "loads: 7\n");
    }

    #[test]
    fn clear_resets() {
        let mut c = Counters::new();
        c.inc("a");
        c.clear();
        assert!(c.is_empty());
    }
}
