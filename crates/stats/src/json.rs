//! Minimal JSON emission and parsing for structured benchmark results.
//!
//! The build environment is offline, so rather than depending on serde
//! this module provides a small self-describing [`Json`] value type with
//! deterministic rendering: object keys keep insertion order, floats use
//! Rust's shortest round-trip formatting, and non-finite floats become
//! `null`. That determinism is what lets the harness assert bit-identical
//! JSON between serial and parallel runs.
//!
//! [`Json::parse`] is the inverse: a strict recursive-descent parser that
//! round-trips anything [`Json::render`] emits, which is what the result
//! store and the `gm-run merge` subcommand read shard files back with.
//! Numbers without a fraction, exponent, or sign that fit in `u64` parse
//! as [`Json::U64`] (preserving full counter precision); everything else
//! numeric parses as [`Json::F64`].

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers (cycle counts, event counters) keep full `u64`
    /// precision instead of routing through `f64`.
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Json>),
    /// Key-value pairs in insertion order (no sorting, no deduplication).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::set`].
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Appends `key: value` to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object; pushing fields onto a scalar is
    /// a harness bug.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Object(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Removes every field named `key` from an object, returning the
    /// value of the *last* occurrence (the one [`Json::get`] resolves
    /// to), or `None` if the key is absent. Order of the remaining
    /// fields is preserved. Returns `None` on non-objects.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        let Json::Object(fields) = self else {
            return None;
        };
        let mut removed = None;
        let mut i = 0;
        while i < fields.len() {
            if fields[i].0 == key {
                removed = Some(fields.remove(i).1);
            } else {
                i += 1;
            }
        }
        removed
    }

    /// Parses a JSON document. Strict: trailing garbage, trailing
    /// commas, unquoted keys, and `NaN`/`Infinity` literals are errors.
    /// Errors carry the byte offset of the offending input.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Looks up a field of an object. Returns `None` for missing keys
    /// and non-objects. Duplicate keys resolve to the *last* occurrence,
    /// matching the append-wins semantics of the result store.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f64` (accepting integral values too).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(f) => Some(*f),
            Json::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's items, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields in insertion order, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::F64(f) => {
                if f.is_finite() {
                    out.push_str(&f.to_string());
                } else {
                    // JSON has no NaN/Infinity.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Container nesting depth; bounded so adversarial input fails with
    /// a parse error instead of exhausting the stack (the parser recurses
    /// once per level).
    depth: usize,
}

/// Deeper nesting than any legitimate result document by orders of
/// magnitude, but far shallower than the thread stack.
const MAX_DEPTH: usize = 256;

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 256 levels"));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.descend()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.descend()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            // Surrogate pairs encode astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 leaves pos past the digits; skip the
                            // shared increment below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character"));
                }
                Some(b) if b < 0x80 => {
                    s.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // One multi-byte UTF-8 scalar, decoded from its own
                    // slice only — revalidating the whole remaining input
                    // per character would make string parsing quadratic.
                    // The input arrived as &str, so the sequence is valid.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = chunk.chars().next().expect("non-empty chunk");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads four hex digits (after `\u`), returning the code unit.
    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let mut v = 0u32;
        for &b in &self.bytes[self.pos..end] {
            // Explicit digit check: from_str_radix would also accept a
            // leading '+', which JSON does not.
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            v = v * 16 + digit;
        }
        self.pos = end;
        Ok(v)
    }

    /// Consumes one or more ASCII digits; errors if there is none.
    fn digits(&mut self, what: &str) -> Result<usize, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err(&format!("expected digits {what}")));
        }
        Ok(self.pos - start)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // JSON grammar: the integer part is `0` or a non-zero digit
        // followed by digits — no leading zeros.
        let int_start = self.pos;
        let int_digits = self.digits("in number")?;
        if int_digits > 1 && self.bytes[int_start] == b'0' {
            return Err(self.err("leading zero in number"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            self.digits("after decimal point")?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits("in exponent")?;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if integral && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err(&format!("invalid number {text:?}")))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::U64(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::U64(n as u64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Self {
        Json::F64(f)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Array(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::from(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::from(f64::NAN).render(), "null");
        assert_eq!(Json::from(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape_control_and_quote_characters() {
        assert_eq!(
            Json::from("a\"b\\c\nd\te\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn objects_keep_insertion_order() {
        let mut o = Json::object();
        o.set("z", 1u64).set("a", "x").set("nested", {
            let mut n = Json::object();
            n.set("ok", true);
            n
        });
        assert_eq!(o.render(), "{\"z\":1,\"a\":\"x\",\"nested\":{\"ok\":true}}");
    }

    #[test]
    fn arrays_render_in_order() {
        let a = Json::Array(vec![Json::from(1u64), Json::Null, Json::from("s")]);
        assert_eq!(a.render(), "[1,null,\"s\"]");
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn set_on_scalar_panics() {
        Json::Null.set("k", 1u64);
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let mut doc = Json::object();
        doc.set("cycles", u64::MAX)
            .set("ratio", 1.0625)
            .set("name", "a\"b\\c\nd\te")
            .set("ok", true)
            .set("missing", Json::Null)
            .set(
                "cores",
                Json::Array(vec![Json::from(1u64), Json::from(2u64)]),
            )
            .set("nested", {
                let mut n = Json::object();
                n.set("k", 0u64);
                n
            });
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.render(), text, "render ∘ parse ∘ render is stable");
    }

    #[test]
    fn parse_classifies_numbers() {
        assert_eq!(Json::parse("42").unwrap(), Json::U64(42));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::U64(u64::MAX)
        );
        assert_eq!(Json::parse("-3").unwrap(), Json::F64(-3.0));
        assert_eq!(Json::parse("1.5").unwrap(), Json::F64(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::F64(2000.0));
        // One past u64::MAX overflows into f64.
        assert_eq!(
            Json::parse("18446744073709551616").unwrap(),
            Json::F64(1.8446744073709552e19)
        );
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , \"\\u0041\\u00e9\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_str(),
            Some("Aé")
        );
        // Surrogate pair for U+1F600.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::from("\u{1F600}")
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "nul",
            "01x",
            "1 2",
            "\"\\q\"",
            "\"unterminated",
            "{\"a\":1,}",
            "\"\\ud800\"",
            "NaN",
            // RFC 8259 number grammar: no leading zeros, digits required
            // after the decimal point and exponent, no bare minus.
            "01",
            "-01",
            "1.",
            "1.e3",
            "2e",
            "2e+",
            "-",
            ".5",
            // from_str_radix would accept the '+'; JSON does not.
            "\"\\u+041\"",
            "\"\\u00 1\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Zero itself (and 0.5 etc.) remain valid.
        assert_eq!(Json::parse("0").unwrap(), Json::U64(0));
        assert_eq!(Json::parse("0.5").unwrap(), Json::F64(0.5));
        assert_eq!(Json::parse("-0.5").unwrap(), Json::F64(-0.5));
    }

    #[test]
    fn large_strings_parse_in_linear_time() {
        // The per-character path must not revalidate the remaining
        // input (that would be quadratic: minutes for a few MiB).
        let body = "é漢x".repeat(200_000);
        let doc = Json::from(body.clone()).render();
        let started = std::time::Instant::now();
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.as_str(), Some(body.as_str()));
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "string parsing is superlinear: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn parse_bounds_nesting_depth() {
        // Comfortably deep documents parse...
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_ok());
        // ...but adversarial nesting fails with an error instead of
        // overflowing the stack.
        let evil = "[".repeat(200_000);
        let err = Json::parse(&evil).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        let evil_obj = "{\"a\":".repeat(300) + "1";
        assert!(Json::parse(&evil_obj).is_err());
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let v =
            Json::parse("{\"n\":7,\"f\":1.5,\"s\":\"x\",\"b\":false,\"a\":[],\"o\":{}}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert!(v.get("a").unwrap().as_array().unwrap().is_empty());
        assert!(v.get("o").unwrap().as_object().unwrap().is_empty());
        assert!(v.get("zzz").is_none());
        assert!(Json::Null.get("n").is_none());
        assert_eq!(v.get("s").unwrap().as_u64(), None);
    }

    #[test]
    fn get_resolves_duplicate_keys_to_the_last() {
        let v = Json::parse("{\"k\":1,\"k\":2}").unwrap();
        assert_eq!(v.get("k").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn remove_strips_every_occurrence_and_keeps_order() {
        let mut v = Json::parse("{\"a\":1,\"k\":1,\"b\":2,\"k\":2}").unwrap();
        assert_eq!(v.remove("k").unwrap().as_u64(), Some(2));
        assert_eq!(v.render(), "{\"a\":1,\"b\":2}");
        assert!(v.remove("k").is_none());
        assert!(v.remove("missing").is_none());
        assert!(Json::from(1u64).remove("k").is_none());
    }
}
