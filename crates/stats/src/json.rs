//! Minimal JSON emission for structured benchmark results.
//!
//! The build environment is offline, so rather than depending on serde
//! this module provides a small self-describing [`Json`] value type with
//! deterministic rendering: object keys keep insertion order, floats use
//! Rust's shortest round-trip formatting, and non-finite floats become
//! `null`. That determinism is what lets the harness assert bit-identical
//! JSON between serial and parallel runs.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers (cycle counts, event counters) keep full `u64`
    /// precision instead of routing through `f64`.
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Json>),
    /// Key-value pairs in insertion order (no sorting, no deduplication).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::set`].
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Appends `key: value` to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object; pushing fields onto a scalar is
    /// a harness bug.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Object(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::F64(f) => {
                if f.is_finite() {
                    out.push_str(&f.to_string());
                } else {
                    // JSON has no NaN/Infinity.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::U64(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::U64(n as u64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Self {
        Json::F64(f)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Array(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::from(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::from(f64::NAN).render(), "null");
        assert_eq!(Json::from(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape_control_and_quote_characters() {
        assert_eq!(
            Json::from("a\"b\\c\nd\te\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn objects_keep_insertion_order() {
        let mut o = Json::object();
        o.set("z", 1u64).set("a", "x").set("nested", {
            let mut n = Json::object();
            n.set("ok", true);
            n
        });
        assert_eq!(o.render(), "{\"z\":1,\"a\":\"x\",\"nested\":{\"ok\":true}}");
    }

    #[test]
    fn arrays_render_in_order() {
        let a = Json::Array(vec![Json::from(1u64), Json::Null, Json::from("s")]);
        assert_eq!(a.render(), "[1,null,\"s\"]");
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn set_on_scalar_panics() {
        Json::Null.set("k", 1u64);
    }
}
