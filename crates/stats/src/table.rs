//! Plain-text table formatting for figure regeneration binaries.
//!
//! Each figure binary builds a [`Table`] whose rows mirror the series the
//! paper plots (one row per workload, one column per scheme) and prints it
//! to stdout, alongside a CSV form for downstream plotting.

/// Column alignment for [`Table`] rendering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    Left,
    Right,
}

/// A simple text table with a header row.
///
/// # Examples
///
/// ```
/// let mut t = gm_stats::Table::new(vec!["workload".into(), "ratio".into()]);
/// t.row(vec!["mcf".into(), "1.30".into()]);
/// let s = t.render();
/// assert!(s.contains("mcf"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header cells.
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width; a ragged
    /// table means a harness bug.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "table row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Convenience: a row whose first cell is a label and the rest are
    /// numbers printed to three decimal places (the figures' precision).
    pub fn row_f64(&mut self, label: &str, values: &[f64]) {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(label.to_owned());
        cells.extend(values.iter().map(|v| format!("{v:.3}")));
        self.row(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned plain-text table: first column left-aligned,
    /// remaining columns right-aligned (label + numbers convention).
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let w = widths[i];
                let align = if i == 0 { Align::Left } else { Align::Right };
                match align {
                    Align::Left => out.push_str(&format!("{cell:<w$}")),
                    Align::Right => out.push_str(&format!("{cell:>w$}")),
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let rule_len = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Renders as CSV (no quoting needed: cells come from identifiers and
    /// numbers).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Converts to a JSON object `{"header": [...], "rows": [[...]]}` with
    /// all cells as strings, exactly as rendered.
    pub fn to_json(&self) -> crate::Json {
        let cells = |row: &[String]| {
            crate::Json::Array(row.iter().map(|c| crate::Json::from(c.clone())).collect())
        };
        let mut out = crate::Json::object();
        out.set("header", cells(&self.header));
        out.set(
            "rows",
            crate::Json::Array(self.rows.iter().map(|r| cells(r)).collect()),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["wl".into(), "a".into(), "b".into()]);
        t.row_f64("mcf", &[1.2987, 1.0]);
        t.row(vec!["gcc".into(), "1.100".into(), "0.990".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header + rule + 2 rows
        assert!(lines[0].starts_with("wl"));
        assert!(lines[2].contains("1.299")); // three-decimal rounding
    }

    #[test]
    fn csv_roundtrips_cells() {
        let s = sample().to_csv();
        assert_eq!(s.lines().count(), 3);
        assert!(s.starts_with("wl,a,b\n"));
        assert!(s.contains("gcc,1.100,0.990"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn len_and_is_empty() {
        let t = Table::new(vec!["a".into()]);
        assert!(t.is_empty());
        assert_eq!(sample().len(), 2);
    }

    #[test]
    fn csv_of_empty_table_is_header_only() {
        let t = Table::new(vec!["workload".into(), "ratio".into()]);
        assert_eq!(t.to_csv(), "workload,ratio\n");
    }

    #[test]
    fn csv_of_single_row_table() {
        let mut t = Table::new(vec!["workload".into(), "ratio".into()]);
        t.row_f64("mcf", &[1.2987]);
        assert_eq!(t.to_csv(), "workload,ratio\nmcf,1.299\n");
    }

    #[test]
    fn csv_of_single_column_table_has_no_commas() {
        let mut t = Table::new(vec!["only".into()]);
        t.row(vec!["x".into()]);
        assert_eq!(t.to_csv(), "only\nx\n");
    }

    #[test]
    fn json_mirrors_header_and_rows() {
        let j = sample().to_json().render();
        assert_eq!(
            j,
            "{\"header\":[\"wl\",\"a\",\"b\"],\
             \"rows\":[[\"mcf\",\"1.299\",\"1.000\"],[\"gcc\",\"1.100\",\"0.990\"]]}"
        );
    }

    #[test]
    fn json_of_empty_table_has_empty_rows() {
        let t = Table::new(vec!["h".into()]);
        assert_eq!(t.to_json().render(), "{\"header\":[\"h\"],\"rows\":[]}");
    }
}
