//! Summary statistics used by the evaluation: geometric mean and
//! normalisation against a baseline, as in the paper's "normalised
//! execution time" figures.

/// A value normalised against a baseline (e.g. execution time relative to
/// the unsafe machine). `1.0` means "same as baseline"; `1.025` is the
/// paper's 2.5% geomean overhead.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ratio(pub f64);

impl Ratio {
    /// Overhead as a percentage: `Ratio(1.025).overhead_pct() == 2.5`.
    pub fn overhead_pct(self) -> f64 {
        (self.0 - 1.0) * 100.0
    }
}

/// Geometric mean of a slice of positive values.
///
/// Returns `None` for an empty slice or if any value is non-positive
/// (a non-positive execution-time ratio indicates a harness bug and must
/// not be silently averaged).
///
/// # Examples
///
/// ```
/// assert_eq!(gm_stats::geomean(&[1.0, 4.0]), Some(2.0));
/// assert_eq!(gm_stats::geomean(&[]), None);
/// ```
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Normalises `value` against `baseline`, yielding the paper's
/// "normalised execution time".
///
/// # Panics
///
/// Panics if `baseline` is zero or negative — a run that took no cycles is
/// a harness bug that must surface immediately.
pub fn normalize(value: f64, baseline: f64) -> Ratio {
    assert!(
        baseline > 0.0,
        "normalisation baseline must be positive, got {baseline}"
    );
    Ratio(value / baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_values_is_the_value() {
        assert!((geomean(&[3.0, 3.0, 3.0]).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_rejects_empty_and_nonpositive() {
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[1.0, -2.0]), None);
        assert_eq!(geomean(&[1.0, f64::NAN]), None);
    }

    #[test]
    fn geomean_is_scale_invariant() {
        let a = geomean(&[1.0, 2.0, 4.0]).unwrap();
        let b = geomean(&[10.0, 20.0, 40.0]).unwrap();
        assert!((b / a - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn normalize_gives_ratio() {
        let r = normalize(102.5, 100.0);
        assert!((r.0 - 1.025).abs() < 1e-12);
        assert!((r.overhead_pct() - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "baseline must be positive")]
    fn normalize_panics_on_zero_baseline() {
        let _ = normalize(1.0, 0.0);
    }
}
