//! Statistics collection and report emission for the GhostMinion reproduction.
//!
//! This crate provides the small pieces of numeric plumbing the evaluation
//! harness needs: named event counters ([`Counters`]), summary math
//! ([`geomean`], [`normalize`]), and table formatting that prints rows in
//! the same style as the paper's figures ([`Table`]).

mod counters;
mod json;
mod summary;
mod table;

pub use counters::{CounterId, Counters};
pub use json::Json;
pub use summary::{geomean, mean, normalize, Ratio};
pub use table::{Align, Table};
