//! Memory-hierarchy building blocks for the GhostMinion reproduction.
//!
//! This crate is deliberately free of any GhostMinion-specific logic: it
//! provides the generic structures a gem5-classic-style hierarchy is made
//! of — set-associative tag arrays ([`Cache`]), miss-status handling
//! registers ([`MshrFile`]), a bank/row DRAM timing model ([`Dram`]), a
//! stride (reference-prediction-table) prefetcher ([`StridePrefetcher`]),
//! and MESI coherence states ([`MesiState`]). The `ghostminion` crate
//! assembles these into the full hierarchy of the paper's Table 1 and
//! layers TimeGuarding / leapfrogging / minions on top.
//!
//! All timing is expressed in core cycles; all addresses are byte
//! addresses; cache lines are [`LINE_BYTES`] bytes.

mod cache;
mod dram;
mod fxhash;
mod mshr;
mod prefetch;
mod sparse;

pub use cache::{Cache, CacheConfig, EvictedLine, LineMeta, MesiState};
pub use dram::{Dram, DramConfig};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use mshr::{MshrEntry, MshrFile, MshrToken};
pub use prefetch::{StridePrefetcher, StridePrefetcherConfig};
pub use sparse::SparseMem;

/// Bytes per cache line throughout the hierarchy.
pub const LINE_BYTES: u64 = 64;

/// Rounds a byte address down to its cache-line address.
pub fn line_addr(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}

/// Returns `true` if `[addr, addr+size)` stays within one cache line.
pub fn within_line(addr: u64, size: u64) -> bool {
    line_addr(addr) == line_addr(addr + size - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_masks_low_bits() {
        assert_eq!(line_addr(0), 0);
        assert_eq!(line_addr(63), 0);
        assert_eq!(line_addr(64), 64);
        assert_eq!(line_addr(0x12345), 0x12340);
    }

    #[test]
    fn within_line_detects_straddles() {
        assert!(within_line(0, 8));
        assert!(within_line(56, 8));
        assert!(!within_line(60, 8));
        assert!(within_line(63, 1));
    }
}
