//! Sparse functional memory.
//!
//! The timing hierarchy models *when* data arrives; this models *what* the
//! data is. It backs the whole simulated physical address space with
//! dense line-aligned extents (for bulk-installed program images) plus a
//! line-granular hash map (for everything touched piecemeal), so
//! multi-MiB workload footprints cost only what they touch.

use crate::{line_addr, within_line, FxHashMap, LINE_BYTES};
use std::sync::Arc;

/// Backing store of one [`Extent`].
#[derive(Clone, Debug)]
enum ExtentData {
    /// Private copy, writable in place.
    Owned(Vec<u8>),
    /// A program image shared by reference with every other machine
    /// running the same workload (and with the workload itself).
    /// `lead` zero bytes pad an unaligned image base out to the
    /// extent's line-aligned start; the tail pads implicitly. The
    /// first write anywhere in the extent copies it out to `Owned`.
    Shared { bytes: Arc<[u8]>, lead: usize },
}

/// A dense, line-aligned region of memory installed in one piece.
///
/// `base` is line-aligned and `len` is a multiple of the line size, so
/// any access that stays within one line is either entirely inside or
/// entirely outside an extent — the single-line fast paths never
/// straddle a representation boundary.
#[derive(Clone, Debug)]
struct Extent {
    base: u64,
    len: usize,
    data: ExtentData,
}

impl Extent {
    fn end(&self) -> u64 {
        self.base + self.len as u64
    }

    fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Copies `size` bytes at extent offset `off` into `dst`.
    fn read_at(&self, off: usize, dst: &mut [u8]) {
        match &self.data {
            ExtentData::Owned(d) => dst.copy_from_slice(&d[off..off + dst.len()]),
            ExtentData::Shared { bytes, lead } => {
                // Interior fast path; the pad edges go byte-wise.
                if off >= *lead && off + dst.len() <= lead + bytes.len() {
                    dst.copy_from_slice(&bytes[off - lead..off - lead + dst.len()]);
                } else {
                    for (i, b) in dst.iter_mut().enumerate() {
                        let o = off + i;
                        *b = if o >= *lead && o - lead < bytes.len() {
                            bytes[o - lead]
                        } else {
                            0
                        };
                    }
                }
            }
        }
    }

    /// The private copy, materialising a shared image on first write.
    fn owned(&mut self) -> &mut Vec<u8> {
        if let ExtentData::Shared { bytes, lead } = &self.data {
            let mut d = vec![0u8; self.len];
            d[*lead..lead + bytes.len()].copy_from_slice(bytes);
            self.data = ExtentData::Owned(d);
        }
        match &mut self.data {
            ExtentData::Owned(d) => d,
            ExtentData::Shared { .. } => unreachable!(),
        }
    }
}

/// Byte-addressable sparse memory; unwritten bytes read as zero.
///
/// Two representations, one invariant: every resident line lives in
/// exactly one place. Program images land in dense extents —
/// [`SparseMem::write_bytes_shared`] installs the image's `Arc`
/// directly (zero copies until the program stores into it),
/// [`SparseMem::write_bytes`] copies once — and every later access to
/// an image is an offset computation instead of a hash probe. Lines
/// outside any extent go to a hash map keyed by line address, using
/// the in-repo [`crate::FxHasher`] (line addresses are
/// simulator-internal, so SipHash's DoS resistance is pure overhead).
/// Accesses that stay within one line — every aligned access, which is
/// the overwhelming majority — locate their backing store once instead
/// of once per byte.
#[derive(Clone, Debug, Default)]
pub struct SparseMem {
    /// Sorted by `base`, non-overlapping, line-aligned.
    extents: Vec<Extent>,
    lines: FxHashMap<u64, [u8; LINE_BYTES as usize]>,
}

impl SparseMem {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// The extent holding `addr`, if any.
    fn extent_index(&self, addr: u64) -> Option<usize> {
        let i = self.extents.partition_point(|e| e.base <= addr);
        let i = i.checked_sub(1)?;
        self.extents[i].contains(addr).then_some(i)
    }

    /// Reads `size` bytes (1–8) at `addr`, little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn read(&self, addr: u64, size: u64) -> u64 {
        assert!((1..=8).contains(&size), "read size must be 1..=8");
        if within_line(addr, size) {
            let mut bytes = [0u8; 8];
            if let Some(i) = self.extent_index(addr) {
                let e = &self.extents[i];
                e.read_at((addr - e.base) as usize, &mut bytes[..size as usize]);
            } else if let Some(line) = self.lines.get(&line_addr(addr)) {
                let off = (addr % LINE_BYTES) as usize;
                bytes[..size as usize].copy_from_slice(&line[off..off + size as usize]);
            }
            return u64::from_le_bytes(bytes);
        }
        let mut val = 0u64;
        for i in 0..size {
            val |= (self.read_byte(addr + i) as u64) << (8 * i);
        }
        val
    }

    /// Writes the low `size` bytes of `value` at `addr`, little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn write(&mut self, addr: u64, value: u64, size: u64) {
        assert!((1..=8).contains(&size), "write size must be 1..=8");
        if within_line(addr, size) {
            let src = value.to_le_bytes();
            if let Some(i) = self.extent_index(addr) {
                let e = &mut self.extents[i];
                let off = (addr - e.base) as usize;
                e.owned()[off..off + size as usize].copy_from_slice(&src[..size as usize]);
            } else {
                let line = self
                    .lines
                    .entry(line_addr(addr))
                    .or_insert([0; LINE_BYTES as usize]);
                let off = (addr % LINE_BYTES) as usize;
                line[off..off + size as usize].copy_from_slice(&src[..size as usize]);
            }
            return;
        }
        for i in 0..size {
            self.write_byte(addr + i, (value >> (8 * i)) as u8);
        }
    }

    fn read_byte(&self, addr: u64) -> u8 {
        if let Some(i) = self.extent_index(addr) {
            let e = &self.extents[i];
            let mut b = [0u8; 1];
            e.read_at((addr - e.base) as usize, &mut b);
            return b[0];
        }
        self.lines
            .get(&line_addr(addr))
            .map_or(0, |l| l[(addr % LINE_BYTES) as usize])
    }

    fn write_byte(&mut self, addr: u64, b: u8) {
        if let Some(i) = self.extent_index(addr) {
            let e = &mut self.extents[i];
            let off = (addr - e.base) as usize;
            e.owned()[off] = b;
            return;
        }
        let line = self
            .lines
            .entry(line_addr(addr))
            .or_insert([0; LINE_BYTES as usize]);
        line[(addr % LINE_BYTES) as usize] = b;
    }

    /// Checks whether a new extent can cover the aligned span
    /// `[start, end)`: no existing extent may overlap it. Returns
    /// `false` if the caller must fall back to per-word writes.
    fn span_free(&self, start: u64, end: u64) -> bool {
        !self.extents.iter().any(|e| e.base < end && start < e.end())
    }

    /// Whether any piecemeal hash-map line lies inside `[start, end)`.
    fn has_resident_lines(&self, start: u64, end: u64) -> bool {
        !self.lines.is_empty() && self.lines.keys().any(|&la| la >= start && la < end)
    }

    /// Removes and returns any piecemeal hash-map lines inside
    /// `[start, end)`, as `(offset from start, line)` pairs.
    fn take_resident_lines(&mut self, start: u64, end: u64) -> Vec<(usize, [u8; 64])> {
        if self.lines.is_empty() {
            return Vec::new();
        }
        let in_range: Vec<u64> = self
            .lines
            .keys()
            .copied()
            .filter(|&la| la >= start && la < end)
            .collect();
        in_range
            .into_iter()
            .map(|la| ((la - start) as usize, self.lines.remove(&la).unwrap()))
            .collect()
    }

    fn insert_extent(&mut self, e: Extent) {
        let at = self.extents.partition_point(|x| x.base < e.base);
        self.extents.insert(at, e);
    }

    /// Copies a byte slice into memory at `base`.
    ///
    /// The bulk path for program-image installation: the line-aligned
    /// span around `[base, base + bytes.len())` becomes one dense
    /// `Extent` — a single allocation and `memcpy` — after absorbing
    /// any hash-map lines already resident in that span. Installing a
    /// multi-MiB data segment word by word used to cost more than
    /// simulating the program that reads it. If the span overlaps an
    /// existing extent the copy falls back to per-word writes, which
    /// land in that extent; content is identical either way.
    pub fn write_bytes(&mut self, base: u64, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        let start = line_addr(base);
        let end = line_addr(base + bytes.len() as u64 - 1) + LINE_BYTES;
        if !self.span_free(start, end) {
            let mut addr = base;
            for chunk in bytes.chunks(8) {
                let mut v = 0u64;
                for (i, b) in chunk.iter().enumerate() {
                    v |= (*b as u64) << (8 * i);
                }
                self.write(addr, v, chunk.len() as u64);
                addr += chunk.len() as u64;
            }
            return;
        }
        let mut data = vec![0u8; (end - start) as usize];
        for (off, line) in self.take_resident_lines(start, end) {
            data[off..off + LINE_BYTES as usize].copy_from_slice(&line);
        }
        let off = (base - start) as usize;
        data[off..off + bytes.len()].copy_from_slice(bytes);
        self.insert_extent(Extent {
            base: start,
            len: data.len(),
            data: ExtentData::Owned(data),
        });
    }

    /// Installs a shared byte image at `base` without copying it: the
    /// extent holds the `Arc` itself and materialises a private copy
    /// only if the program ever stores into the span (reads — the
    /// common case for workload data — stay zero-copy for the whole
    /// run). Falls back to [`SparseMem::write_bytes`] when the span
    /// already holds data; contents are identical either way.
    pub fn write_bytes_shared(&mut self, base: u64, bytes: &Arc<[u8]>) {
        if bytes.is_empty() {
            return;
        }
        let start = line_addr(base);
        let end = line_addr(base + bytes.len() as u64 - 1) + LINE_BYTES;
        if !self.span_free(start, end) || self.has_resident_lines(start, end) {
            // Rare install over live data: take the copying path, which
            // absorbs resident lines and writes through extents.
            self.write_bytes(base, bytes);
            return;
        }
        self.insert_extent(Extent {
            base: start,
            len: (end - start) as usize,
            data: ExtentData::Shared {
                bytes: Arc::clone(bytes),
                lead: (base - start) as usize,
            },
        });
    }

    /// Number of distinct resident lines (hash-map lines plus extent
    /// lines, including an extent's line-alignment padding).
    pub fn resident_lines(&self) -> usize {
        let extent_lines: usize = self
            .extents
            .iter()
            .map(|e| e.len / LINE_BYTES as usize)
            .sum();
        self.lines.len() + extent_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = SparseMem::new();
        assert_eq!(m.read(0xdead_beef, 8), 0);
        assert_eq!(m.resident_lines(), 0);
    }

    #[test]
    fn write_read_roundtrip_all_sizes() {
        let mut m = SparseMem::new();
        m.write(0x100, 0x1122_3344_5566_7788, 8);
        assert_eq!(m.read(0x100, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x100, 4), 0x5566_7788);
        assert_eq!(m.read(0x100, 2), 0x7788);
        assert_eq!(m.read(0x100, 1), 0x88);
        assert_eq!(m.read(0x104, 4), 0x1122_3344);
    }

    #[test]
    fn small_write_preserves_neighbours() {
        let mut m = SparseMem::new();
        m.write(0x100, u64::MAX, 8);
        m.write(0x102, 0, 1);
        assert_eq!(m.read(0x100, 8), 0xffff_ffff_ff00_ffff);
    }

    #[test]
    fn cross_line_access_works() {
        let mut m = SparseMem::new();
        m.write(60, 0xaabb_ccdd_eeff_1122, 8); // straddles lines 0 and 1
        assert_eq!(m.read(60, 8), 0xaabb_ccdd_eeff_1122);
        assert_eq!(m.resident_lines(), 2);
    }

    #[test]
    fn write_bytes_places_slice() {
        let mut m = SparseMem::new();
        m.write_bytes(0x200, &[1, 2, 3, 4]);
        assert_eq!(m.read(0x200, 4), 0x0403_0201);
    }

    #[test]
    fn bulk_install_is_readable_and_writable() {
        let mut m = SparseMem::new();
        let img: Vec<u8> = (0..1024u32).map(|i| i as u8).collect();
        m.write_bytes(0x1_0030, &img); // unaligned base: padded extent
        for i in 0..1024u64 {
            assert_eq!(m.read(0x1_0030 + i, 1), (i as u8) as u64, "byte {i}");
        }
        // Zero padding around the image, inside the aligned extent.
        assert_eq!(m.read(0x1_0000, 8), 0);
        // In-place update of extent-backed memory.
        m.write(0x1_0030, 0xdead_beef, 4);
        assert_eq!(m.read(0x1_0030, 4), 0xdead_beef);
    }

    #[test]
    fn bulk_install_absorbs_prior_piecemeal_lines() {
        let mut m = SparseMem::new();
        m.write(0x2_0000, 0x55, 1); // line that the extent will cover
        m.write(0x2_1000, 0x77, 1); // line outside the extent
        m.write_bytes(0x2_0040, &[9, 9]);
        assert_eq!(m.read(0x2_0000, 1), 0x55, "absorbed line keeps its data");
        assert_eq!(m.read(0x2_0040, 2), 0x0909);
        assert_eq!(m.read(0x2_1000, 1), 0x77);
    }

    #[test]
    fn overlapping_bulk_installs_land_in_place() {
        let mut m = SparseMem::new();
        m.write_bytes(0x3_0000, &[1u8; 256]);
        m.write_bytes(0x3_0080, &[2u8; 256]); // overlaps the first extent
        assert_eq!(m.read(0x3_0000, 1), 1);
        assert_eq!(m.read(0x3_0080, 1), 2);
        assert_eq!(m.read(0x3_017f, 1), 2);
    }

    #[test]
    fn shared_install_reads_through_and_cows_on_write() {
        let img: Arc<[u8]> = (0..=255u8).collect::<Vec<u8>>().into();
        let mut m = SparseMem::new();
        m.write_bytes_shared(0x4_0010, &img); // unaligned: lead padding
        assert_eq!(Arc::strong_count(&img), 2, "install must not copy");
        assert_eq!(m.read(0x4_0000, 8), 0, "lead pad reads zero");
        for i in 0..256u64 {
            assert_eq!(m.read(0x4_0010 + i, 1), i, "byte {i}");
        }
        // Reads spanning the pad/image edge inside one line.
        assert_eq!(m.read(0x4_000c, 8), 0x0302_0100_0000_0000);
        // First store materialises a private copy; the source Arc and a
        // sibling memory sharing the image are unaffected.
        let sibling = m.clone();
        m.write(0x4_0010, 0xff, 1);
        assert_eq!(m.read(0x4_0010, 1), 0xff);
        assert_eq!(m.read(0x4_0011, 1), 1, "neighbour byte survives CoW");
        assert_eq!(sibling.read(0x4_0010, 1), 0, "sibling sees original");
    }

    #[test]
    fn shared_install_over_resident_data_falls_back() {
        let img: Arc<[u8]> = vec![7u8; 8].into();
        let mut m = SparseMem::new();
        m.write(0x5_0000, 0x9, 1); // same line as the image, before it
        m.write_bytes_shared(0x5_0008, &img);
        assert_eq!(m.read(0x5_0008, 1), 7);
        assert_eq!(
            m.read(0x5_0000, 1),
            9,
            "resident byte is absorbed, not lost"
        );
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn oversized_read_panics() {
        let m = SparseMem::new();
        let _ = m.read(0, 9);
    }
}
