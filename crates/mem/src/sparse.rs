//! Sparse functional memory.
//!
//! The timing hierarchy models *when* data arrives; this models *what* the
//! data is. It backs the whole simulated physical address space with a
//! line-granular hash map, so multi-MiB workload footprints cost only what
//! they touch.

use crate::{line_addr, within_line, FxHashMap, LINE_BYTES};

/// Byte-addressable sparse memory; unwritten bytes read as zero.
///
/// Lookups use the in-repo [`crate::FxHasher`] (line addresses are
/// simulator-internal, so SipHash's DoS resistance is pure overhead),
/// and accesses that stay within one line — every aligned access, which
/// is the overwhelming majority — locate that line once instead of once
/// per byte.
#[derive(Clone, Debug, Default)]
pub struct SparseMem {
    lines: FxHashMap<u64, [u8; LINE_BYTES as usize]>,
}

impl SparseMem {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads `size` bytes (1–8) at `addr`, little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn read(&self, addr: u64, size: u64) -> u64 {
        assert!((1..=8).contains(&size), "read size must be 1..=8");
        if within_line(addr, size) {
            let Some(line) = self.lines.get(&line_addr(addr)) else {
                return 0;
            };
            let off = (addr % LINE_BYTES) as usize;
            let mut bytes = [0u8; 8];
            bytes[..size as usize].copy_from_slice(&line[off..off + size as usize]);
            return u64::from_le_bytes(bytes);
        }
        let mut val = 0u64;
        for i in 0..size {
            val |= (self.read_byte(addr + i) as u64) << (8 * i);
        }
        val
    }

    /// Writes the low `size` bytes of `value` at `addr`, little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn write(&mut self, addr: u64, value: u64, size: u64) {
        assert!((1..=8).contains(&size), "write size must be 1..=8");
        if within_line(addr, size) {
            let line = self
                .lines
                .entry(line_addr(addr))
                .or_insert([0; LINE_BYTES as usize]);
            let off = (addr % LINE_BYTES) as usize;
            line[off..off + size as usize].copy_from_slice(&value.to_le_bytes()[..size as usize]);
            return;
        }
        for i in 0..size {
            self.write_byte(addr + i, (value >> (8 * i)) as u8);
        }
    }

    fn read_byte(&self, addr: u64) -> u8 {
        self.lines
            .get(&line_addr(addr))
            .map_or(0, |l| l[(addr % LINE_BYTES) as usize])
    }

    fn write_byte(&mut self, addr: u64, b: u8) {
        let line = self
            .lines
            .entry(line_addr(addr))
            .or_insert([0; LINE_BYTES as usize]);
        line[(addr % LINE_BYTES) as usize] = b;
    }

    /// Copies a byte slice into memory at `base`.
    pub fn write_bytes(&mut self, base: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_byte(base + i as u64, *b);
        }
    }

    /// Number of distinct lines ever written.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = SparseMem::new();
        assert_eq!(m.read(0xdead_beef, 8), 0);
        assert_eq!(m.resident_lines(), 0);
    }

    #[test]
    fn write_read_roundtrip_all_sizes() {
        let mut m = SparseMem::new();
        m.write(0x100, 0x1122_3344_5566_7788, 8);
        assert_eq!(m.read(0x100, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x100, 4), 0x5566_7788);
        assert_eq!(m.read(0x100, 2), 0x7788);
        assert_eq!(m.read(0x100, 1), 0x88);
        assert_eq!(m.read(0x104, 4), 0x1122_3344);
    }

    #[test]
    fn small_write_preserves_neighbours() {
        let mut m = SparseMem::new();
        m.write(0x100, u64::MAX, 8);
        m.write(0x102, 0, 1);
        assert_eq!(m.read(0x100, 8), 0xffff_ffff_ff00_ffff);
    }

    #[test]
    fn cross_line_access_works() {
        let mut m = SparseMem::new();
        m.write(60, 0xaabb_ccdd_eeff_1122, 8); // straddles lines 0 and 64
        assert_eq!(m.read(60, 8), 0xaabb_ccdd_eeff_1122);
        assert_eq!(m.resident_lines(), 2);
    }

    #[test]
    fn write_bytes_places_slice() {
        let mut m = SparseMem::new();
        m.write_bytes(0x200, &[1, 2, 3, 4]);
        assert_eq!(m.read(0x200, 4), 0x0403_0201);
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn oversized_read_panics() {
        let m = SparseMem::new();
        let _ = m.read(0, 9);
    }
}
