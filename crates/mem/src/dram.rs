//! A DDR3-style DRAM timing model.
//!
//! Models the features that matter for the paper's evaluation: per-bank
//! open rows (row hits are much faster than row conflicts), per-bank busy
//! time, and a shared data bus. The paper's setup is DDR3-1600 11-11-11;
//! at the 2 GHz core clock that gives roughly the latencies in
//! [`DramConfig::ddr3_1600`].
//!
//! Open-page policy is itself an implicit cache (§4.9 "DRAM contention");
//! [`DramConfig::close_speculative_pages`] lets the protected schemes opt
//! out of leaving speculatively opened pages open.

/// DRAM timing parameters, in core cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks.
    pub banks: usize,
    /// Bytes per row (page).
    pub row_bytes: u64,
    /// Column access latency (row already open).
    pub t_cas: u64,
    /// Row activate latency.
    pub t_rcd: u64,
    /// Precharge latency (closing a row).
    pub t_rp: u64,
    /// Data-bus occupancy per 64-byte transfer.
    pub t_burst: u64,
    /// When `true`, rows opened by speculative accesses are closed again
    /// after the access (auto-precharge), so misspeculation cannot leave
    /// an open-page trace (§4.9).
    pub close_speculative_pages: bool,
}

impl DramConfig {
    /// DDR3-1600 11-11-11 as in Table 1, converted to 2 GHz core cycles
    /// (one DRAM clock at 800 MHz = 2.5 core cycles; 11 DRAM clocks ≈ 28
    /// core cycles).
    pub fn ddr3_1600() -> Self {
        Self {
            banks: 8,
            row_bytes: 8 * 1024,
            t_cas: 28,
            t_rcd: 28,
            t_rp: 28,
            t_burst: 8,
            close_speculative_pages: false,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// The DRAM device: banks with open-row state plus a shared bus.
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    bus_free_at: u64,
    row_hits: u64,
    row_misses: u64,
    row_conflicts: u64,
}

impl Dram {
    /// Builds a DRAM with all banks idle and no rows open.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.banks.is_power_of_two(), "bank count must be 2^n");
        Self {
            cfg,
            banks: vec![
                Bank {
                    open_row: None,
                    busy_until: 0
                };
                cfg.banks
            ],
            bus_free_at: 0,
            row_hits: 0,
            row_misses: 0,
            row_conflicts: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let row_global = addr / self.cfg.row_bytes;
        let bank = (row_global % self.cfg.banks as u64) as usize;
        let row = row_global / self.cfg.banks as u64;
        (bank, row)
    }

    /// Performs a line access beginning no earlier than `now`; returns the
    /// cycle at which the data has fully transferred.
    ///
    /// `speculative` marks accesses issued on behalf of not-yet-committed
    /// instructions; with [`DramConfig::close_speculative_pages`] set they
    /// do not leave their row open.
    pub fn access(&mut self, addr: u64, now: u64, speculative: bool) -> u64 {
        let (bi, row) = self.bank_and_row(addr);
        let bank = &mut self.banks[bi];
        let start = now.max(bank.busy_until);
        let access_time = match bank.open_row {
            Some(r) if r == row => {
                self.row_hits += 1;
                self.cfg.t_cas
            }
            Some(_) => {
                self.row_conflicts += 1;
                self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas
            }
            None => {
                self.row_misses += 1;
                self.cfg.t_rcd + self.cfg.t_cas
            }
        };
        let data_ready = start + access_time;
        // Shared-bus contention: transfers queue behind each other, but
        // the synchronous walk books accesses in *request* order while
        // data becomes ready out of order, so the queueing delay is
        // capped at two transfers to avoid artificial convoying.
        let queue = self
            .bus_free_at
            .saturating_sub(data_ready)
            .min(2 * self.cfg.t_burst);
        let done = data_ready + queue + self.cfg.t_burst;
        self.bus_free_at = self.bus_free_at.max(done);
        bank.busy_until = data_ready;
        bank.open_row = if speculative && self.cfg.close_speculative_pages {
            None
        } else {
            Some(row)
        };
        done
    }

    /// `(row hits, row misses, row conflicts)` so far.
    pub fn row_stats(&self) -> (u64, u64, u64) {
        (self.row_hits, self.row_misses, self.row_conflicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::ddr3_1600())
    }

    #[test]
    fn first_access_is_row_miss_then_hit() {
        let mut d = dram();
        let c = DramConfig::ddr3_1600();
        let t1 = d.access(0, 0, false);
        assert_eq!(t1, c.t_rcd + c.t_cas + c.t_burst);
        // Same row: hit, but bank was busy until data_ready of previous.
        let t2 = d.access(64, t1, false);
        assert_eq!(t2, t1 + c.t_cas + c.t_burst);
        assert_eq!(d.row_stats(), (1, 1, 0));
    }

    #[test]
    fn row_conflict_costs_precharge() {
        let mut d = dram();
        let c = DramConfig::ddr3_1600();
        let row_span = c.row_bytes * c.banks as u64; // same bank, next row
        let t1 = d.access(0, 0, false);
        let t2 = d.access(row_span, t1, false);
        assert_eq!(t2 - t1, c.t_rp + c.t_rcd + c.t_cas + c.t_burst);
        assert_eq!(d.row_stats(), (0, 1, 1));
    }

    #[test]
    fn different_banks_overlap_except_bus() {
        let mut d = dram();
        let c = DramConfig::ddr3_1600();
        let t1 = d.access(0, 0, false);
        // Next bank: starts immediately, only serialised on the bus.
        let t2 = d.access(c.row_bytes, 0, false);
        assert_eq!(t2, t1 + c.t_burst);
    }

    #[test]
    fn speculative_page_closing_prevents_open_page_trace() {
        let mut cfg = DramConfig::ddr3_1600();
        cfg.close_speculative_pages = true;
        let mut d = Dram::new(cfg);
        let t1 = d.access(0, 0, true); // speculative: row closed after
        let _ = d.access(64, t1, false);
        // Second access to same row is a row *miss*, not a hit, because
        // the speculative access did not leave the page open.
        assert_eq!(d.row_stats().0, 0, "no row hit may occur");
        assert_eq!(d.row_stats().1, 2);
    }

    #[test]
    fn open_page_policy_leaves_speculative_trace_when_allowed() {
        let mut d = dram(); // close_speculative_pages = false
        let t1 = d.access(0, 0, true);
        let _ = d.access(64, t1, false);
        assert_eq!(d.row_stats().0, 1, "open page gives a row hit");
    }

    #[test]
    fn bank_busy_serialises_same_bank() {
        let mut d = dram();
        let t1 = d.access(0, 0, false);
        // Same bank, same row, issued at cycle 0 — must wait for the bank.
        let t2 = d.access(128, 0, false);
        assert!(t2 > t1);
    }

    #[test]
    #[should_panic(expected = "2^n")]
    fn non_power_of_two_banks_panics() {
        let mut cfg = DramConfig::ddr3_1600();
        cfg.banks = 6;
        let _ = Dram::new(cfg);
    }
}
