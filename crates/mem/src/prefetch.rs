//! Stride prefetcher with a reference prediction table (RPT).
//!
//! Table 1 gives the L2 a "stride prefetcher (64-entry RPT)". Entries are
//! indexed by load PC and track the last address and observed stride with
//! a saturating confidence counter; confident entries emit prefetches.
//!
//! The *training policy* is security-relevant (§4.7): under GhostMinion,
//! prefetchers in the non-speculative hierarchy may only be trained on
//! committed accesses, so the `ghostminion` crate decides *when* to call
//! [`StridePrefetcher::train`]; this module only implements the mechanism.

use crate::line_addr;

/// Configuration of the stride prefetcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StridePrefetcherConfig {
    /// Number of RPT entries (Table 1: 64).
    pub entries: usize,
    /// Confidence threshold at which prefetches are emitted.
    pub threshold: u8,
    /// Maximum confidence (saturation).
    pub max_confidence: u8,
    /// How many consecutive strided lines to prefetch per training event.
    pub degree: u64,
    /// Maximum look-ahead distance (in strides). The per-entry distance
    /// ramps up as a stream proves itself, so prefetches stay timely even
    /// when training lags the demand stream (e.g. commit-time training
    /// under GhostMinion, §4.7).
    pub max_distance: u64,
}

impl Default for StridePrefetcherConfig {
    fn default() -> Self {
        Self {
            entries: 64,
            threshold: 2,
            max_confidence: 3,
            degree: 4,
            max_distance: 64,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct RptEntry {
    valid: bool,
    pc_tag: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    distance: u64,
}

/// The reference prediction table.
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    cfg: StridePrefetcherConfig,
    table: Vec<RptEntry>,
    trained: u64,
    emitted: u64,
}

impl StridePrefetcher {
    /// Builds an empty RPT.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two (the table is indexed by
    /// PC bits).
    pub fn new(cfg: StridePrefetcherConfig) -> Self {
        assert!(
            cfg.entries.is_power_of_two(),
            "RPT entry count must be a power of two"
        );
        Self {
            cfg,
            table: vec![RptEntry::default(); cfg.entries],
            trained: 0,
            emitted: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc as usize) & (self.cfg.entries - 1)
    }

    /// Trains the table on an access by `pc` to `addr` and returns the
    /// line addresses to prefetch (empty unless the entry is confident).
    pub fn train(&mut self, pc: u64, addr: u64) -> Vec<u64> {
        self.trained += 1;
        let idx = self.index(pc);
        let cfg = self.cfg;
        let e = &mut self.table[idx];
        if !e.valid || e.pc_tag != pc {
            *e = RptEntry {
                valid: true,
                pc_tag: pc,
                last_addr: addr,
                stride: 0,
                confidence: 0,
                distance: 1,
            };
            return Vec::new();
        }
        let new_stride = addr as i64 - e.last_addr as i64;
        if new_stride == e.stride && new_stride != 0 {
            e.confidence = (e.confidence + 1).min(cfg.max_confidence);
        } else {
            e.confidence = e.confidence.saturating_sub(1);
            e.stride = new_stride;
            e.distance = 1;
        }
        e.last_addr = addr;
        if e.confidence >= cfg.threshold && e.stride != 0 {
            let stride = e.stride;
            let dist = e.distance;
            // Ramp the look-ahead: a stream that keeps confirming earns a
            // deeper prefetch horizon.
            e.distance = (e.distance * 2).min(cfg.max_distance);
            let out: Vec<u64> = (dist..dist + cfg.degree)
                .map(|k| line_addr((addr as i64 + stride * k as i64).max(0) as u64))
                .collect();
            self.emitted += out.len() as u64;
            out
        } else {
            Vec::new()
        }
    }

    /// `(training events, prefetches emitted)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.trained, self.emitted)
    }

    /// Discards all training state (e.g. on a context switch in
    /// flush-based defences).
    pub fn reset(&mut self) {
        self.table.fill(RptEntry::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StridePrefetcher {
        StridePrefetcher::new(StridePrefetcherConfig::default())
    }

    #[test]
    fn constant_stride_becomes_confident_and_prefetches() {
        let mut p = pf();
        let pc = 0x400;
        assert!(p.train(pc, 0x1000).is_empty()); // allocate
        assert!(p.train(pc, 0x1040).is_empty()); // learn stride (conf 0->0, stride set)
        assert!(p.train(pc, 0x1080).is_empty()); // conf 1
        let out = p.train(pc, 0x10c0); // conf 2 -> emit at distance 1
        assert_eq!(out, vec![0x1100, 0x1140, 0x1180, 0x11c0]);
        // The next confirmation prefetches further ahead (ramped).
        let out2 = p.train(pc, 0x1100);
        assert_eq!(out2[0], 0x1100 + 2 * 64, "distance doubled");
        assert_eq!(out2.len(), 4);
    }

    #[test]
    fn irregular_pattern_never_prefetches() {
        let mut p = pf();
        let pc = 0x400;
        let addrs = [0x1000u64, 0x5000, 0x2040, 0x9000, 0x100, 0x7777];
        for a in addrs {
            assert!(p.train(pc, a).is_empty());
        }
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut p = pf();
        for _ in 0..10 {
            assert!(p.train(0x400, 0x1000).is_empty());
        }
    }

    #[test]
    fn pc_collision_reallocates() {
        let mut p = pf();
        // Same low bits index, different full pc.
        let pc_a = 0x40;
        let pc_b = 0x40 + 64; // same index with 64-entry table
        for i in 0..4 {
            p.train(pc_a, 0x1000 + i * 64);
        }
        // pc_b evicts pc_a's entry.
        assert!(p.train(pc_b, 0x9000).is_empty());
        // pc_a must retrain from scratch: no immediate prefetch.
        assert!(p.train(pc_a, 0x1100).is_empty());
    }

    #[test]
    fn confidence_decays_on_broken_stride() {
        let mut p = pf();
        let pc = 0x400;
        for i in 0..4 {
            p.train(pc, 0x1000 + i * 64);
        }
        // Break the stride twice: confidence drains, no prefetch.
        assert!(p.train(pc, 0x9000).is_empty());
        assert!(p.train(pc, 0x9200).is_empty());
    }

    #[test]
    fn stats_track_training_and_emission() {
        let mut p = pf();
        for i in 0..5 {
            p.train(0x400, 0x1000 + i * 64);
        }
        let (trained, emitted) = p.stats();
        assert_eq!(trained, 5);
        assert!(emitted >= 2);
    }

    #[test]
    fn reset_clears_training() {
        let mut p = pf();
        for i in 0..4 {
            p.train(0x400, 0x1000 + i * 64);
        }
        p.reset();
        assert!(
            p.train(0x400, 0x1100).is_empty(),
            "must retrain after reset"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_entries_panics() {
        let _ = StridePrefetcher::new(StridePrefetcherConfig {
            entries: 48,
            ..Default::default()
        });
    }

    #[test]
    fn distance_ramps_to_max_and_resets_on_break() {
        let mut p = pf();
        let pc = 0x400;
        for i in 0..20u64 {
            p.train(pc, 0x1000 + i * 64);
        }
        let out = p.train(pc, 0x1000 + 20 * 64);
        let lead = (out[0] - (0x1000 + 20 * 64)) / 64;
        assert_eq!(lead, 64, "distance saturates at max_distance");
        // Breaking the stride resets the horizon.
        p.train(pc, 0x9000);
        p.train(pc, 0x9040);
        p.train(pc, 0x9080);
        let out = p.train(pc, 0x90c0);
        if !out.is_empty() {
            assert!(out[0] <= 0x90c0 + 2 * 64, "horizon restarted");
        }
    }
}
