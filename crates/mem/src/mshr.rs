//! Miss-status handling registers (MSHRs).
//!
//! MSHRs track in-flight misses. Their *occupancy* is a contention channel
//! (§4.5): the paper propagates timestamps through the MSHR hierarchy so
//! that an older-timestamped request can *leapfrog* (steal) an MSHR held
//! by a younger one. This module provides the mechanism — allocation,
//! lazy reclamation, lookup, and targeted steal — while the leapfrogging
//! *policy* lives in the `ghostminion` crate.

use crate::line_addr;

/// Identifies an MSHR allocation so its owner can be told about a steal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MshrToken {
    /// Index of the entry within its file.
    pub slot: usize,
    /// Generation counter distinguishing reuse of the same slot.
    pub gen: u64,
}

/// One in-flight miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MshrEntry {
    /// Line address being fetched.
    pub addr: u64,
    /// Cycle at which the fill completes and the entry frees itself.
    pub ready_at: u64,
    /// Timestamp of the instruction that allocated the entry (Temporal
    /// Order metadata, §4.5). `u64::MAX` marks non-speculative traffic
    /// that must never be leapfrogged.
    pub ts: u64,
    /// Opaque owner id (the requesting core), for cancel notifications.
    pub owner: usize,
    /// Opaque payload — the owning load's ticket, so a steal can cancel it.
    pub payload: u64,
    gen: u64,
}

/// A file of MSHR entries with lazy, cycle-based reclamation.
#[derive(Clone, Debug)]
pub struct MshrFile {
    entries: Vec<Option<MshrEntry>>,
    next_gen: u64,
}

impl MshrFile {
    /// Creates a file with `n` entries.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero — a cache without MSHRs cannot miss.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "MSHR file must have at least one entry");
        Self {
            entries: vec![None; n],
            next_gen: 0,
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Frees entries whose fills have completed by `now`.
    pub fn reclaim(&mut self, now: u64) {
        for e in &mut self.entries {
            if e.is_some_and(|m| m.ready_at <= now) {
                *e = None;
            }
        }
    }

    /// Number of free entries at `now` (after reclamation).
    pub fn free_at(&mut self, now: u64) -> usize {
        self.reclaim(now);
        self.entries.iter().filter(|e| e.is_none()).count()
    }

    /// Finds the in-flight entry for `addr`'s line, if any.
    pub fn find(&self, addr: u64) -> Option<(MshrToken, MshrEntry)> {
        let la = line_addr(addr);
        self.entries.iter().enumerate().find_map(|(i, e)| {
            e.filter(|m| m.addr == la).map(|m| {
                (
                    MshrToken {
                        slot: i,
                        gen: m.gen,
                    },
                    m,
                )
            })
        })
    }

    /// Allocates an entry; `None` when the file is full at `now`.
    pub fn alloc(
        &mut self,
        addr: u64,
        ready_at: u64,
        ts: u64,
        owner: usize,
        payload: u64,
        now: u64,
    ) -> Option<MshrToken> {
        self.reclaim(now);
        let slot = self.entries.iter().position(|e| e.is_none())?;
        self.next_gen += 1;
        let gen = self.next_gen;
        self.entries[slot] = Some(MshrEntry {
            addr: line_addr(addr),
            ready_at,
            ts,
            owner,
            payload,
            gen,
        });
        Some(MshrToken { slot, gen })
    }

    /// The occupied entry with the numerically largest timestamp (the most
    /// speculative in-flight miss) — the leapfrog victim (§4.5, footnote
    /// 6: steal the *highest*-timestamped MSHR).
    pub fn youngest(&self) -> Option<(MshrToken, MshrEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|m| (i, m)))
            .max_by_key(|(_, m)| m.ts)
            .map(|(i, m)| {
                (
                    MshrToken {
                        slot: i,
                        gen: m.gen,
                    },
                    m,
                )
            })
    }

    /// Removes a specific allocation (leapfrog steal or timeleap replay).
    /// Returns the entry if the token was still live.
    pub fn steal(&mut self, token: MshrToken) -> Option<MshrEntry> {
        let e = self.entries.get_mut(token.slot)?;
        if e.is_some_and(|m| m.gen == token.gen) {
            e.take()
        } else {
            None
        }
    }

    /// Rewrites the timestamp, owner and completion of a live allocation
    /// (timeleap: an older request adopts a younger in-flight miss, §4.5,
    /// restarting it so the timing matches a fresh issue).
    pub fn retime(
        &mut self,
        token: MshrToken,
        ts: u64,
        owner: usize,
        payload: u64,
        ready_at: u64,
    ) -> bool {
        if let Some(e) = self.entries.get_mut(token.slot) {
            if let Some(m) = e.as_mut() {
                if m.gen == token.gen {
                    m.ts = ts;
                    m.owner = owner;
                    m.payload = payload;
                    m.ready_at = ready_at;
                    return true;
                }
            }
        }
        false
    }

    /// Retags entries owned by `owner` with `ts` strictly above `above_ts`
    /// to `new_ts` (squash orphaning: the fill still occupies the slot,
    /// but it no longer represents a live instruction's timestamp).
    /// Returns how many entries were retagged.
    pub fn retag_above(&mut self, above_ts: u64, owner: usize, new_ts: u64) -> usize {
        let mut n = 0;
        for e in self.entries.iter_mut().flatten() {
            if e.owner == owner && e.ts > above_ts && e.ts != new_ts {
                e.ts = new_ts;
                n += 1;
            }
        }
        n
    }

    /// Earliest cycle at which an entry will free up, if any are occupied.
    pub fn next_free_at(&self) -> Option<u64> {
        self.entries
            .iter()
            .filter_map(|e| e.map(|m| m.ready_at))
            .min()
    }

    /// Iterates over live entries.
    pub fn iter(&self) -> impl Iterator<Item = (MshrToken, MshrEntry)> + '_ {
        self.entries.iter().enumerate().filter_map(|(i, e)| {
            e.map(|m| {
                (
                    MshrToken {
                        slot: i,
                        gen: m.gen,
                    },
                    m,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_full_then_reclaim() {
        let mut f = MshrFile::new(2);
        assert_eq!(f.capacity(), 2);
        let a = f.alloc(0x40, 100, 1, 0, 0, 0).expect("first");
        let _b = f.alloc(0x80, 200, 2, 0, 0, 0).expect("second");
        assert!(f.alloc(0xc0, 300, 3, 0, 0, 0).is_none(), "full");
        assert_eq!(f.free_at(99), 0);
        // First completes at 100.
        assert_eq!(f.free_at(100), 1);
        assert!(f.alloc(0xc0, 300, 3, 0, 0, 100).is_some());
        // Token for reclaimed entry is dead.
        assert!(f.steal(a).is_none());
    }

    #[test]
    fn find_matches_line_address() {
        let mut f = MshrFile::new(2);
        f.alloc(0x47, 100, 1, 0, 0, 0);
        let (_, e) = f.find(0x40).expect("same line");
        assert_eq!(e.addr, 0x40);
        assert!(f.find(0x43).is_some(), "any offset in line matches");
        assert!(f.find(0x80).is_none());
    }

    #[test]
    fn youngest_is_max_timestamp() {
        let mut f = MshrFile::new(3);
        f.alloc(0x40, 100, 22, 0, 0, 0);
        let t28 = f.alloc(0x80, 100, 28, 0, 0, 0).unwrap();
        f.alloc(0xc0, 100, 23, 0, 0, 0);
        let (tok, e) = f.youngest().expect("occupied");
        assert_eq!(e.ts, 28);
        assert_eq!(tok, t28);
    }

    #[test]
    fn steal_frees_and_token_is_single_use() {
        let mut f = MshrFile::new(1);
        let t = f.alloc(0x40, 100, 9, 3, 0, 0).unwrap();
        let e = f.steal(t).expect("live steal");
        assert_eq!(e.owner, 3);
        assert!(f.steal(t).is_none(), "second steal fails");
        assert!(f.alloc(0x80, 50, 1, 0, 0, 0).is_some(), "slot reusable");
    }

    #[test]
    fn stale_token_after_reuse_does_not_steal_new_entry() {
        let mut f = MshrFile::new(1);
        let t_old = f.alloc(0x40, 10, 1, 0, 0, 0).unwrap();
        f.reclaim(10); // entry completes
        let t_new = f.alloc(0x80, 20, 2, 0, 0, 10).unwrap();
        assert_eq!(t_old.slot, t_new.slot, "slot reused");
        assert!(f.steal(t_old).is_none(), "stale generation rejected");
        assert!(f.find(0x80).is_some(), "new entry survives");
    }

    #[test]
    fn retime_updates_live_entry_only() {
        let mut f = MshrFile::new(1);
        let t = f.alloc(0x40, 100, 30, 1, 0, 0).unwrap();
        assert!(f.retime(t, 5, 2, 77, 200));
        let (_, e) = f.find(0x40).unwrap();
        assert_eq!(e.ts, 5);
        assert_eq!(e.owner, 2);
        f.steal(t);
        assert!(!f.retime(t, 1, 0, 0, 0));
    }

    #[test]
    fn next_free_at_reports_earliest_completion() {
        let mut f = MshrFile::new(2);
        assert_eq!(f.next_free_at(), None);
        f.alloc(0x40, 120, 1, 0, 0, 0);
        f.alloc(0x80, 90, 2, 0, 0, 0);
        assert_eq!(f.next_free_at(), Some(90));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }
}
