//! Set-associative cache tag array with LRU replacement and per-line
//! MESI coherence state.
//!
//! This models *tags and state only*: data values live in the functional
//! memory ([`crate::SparseMem`]); a timing simulator only needs to know
//! hit/miss/state, which is also all an attacker can sense.

use crate::{line_addr, LINE_BYTES};

/// MESI coherence state of a cache line.
///
/// GhostMinion (§4.6) restricts minion lines to `Shared`/`Invalid`; the
/// non-speculative hierarchy uses all four states.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MesiState {
    Modified,
    Exclusive,
    Shared,
    Invalid,
}

impl MesiState {
    /// Whether the line holds valid data in this state.
    pub fn is_valid(self) -> bool {
        self != MesiState::Invalid
    }

    /// Whether a store may hit this state without an upgrade.
    pub fn is_writable(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }
}

/// Geometry and latency of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Access latency in cycles (lookup, hit).
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by size and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, or capacity not a
    /// whole number of ways of lines).
    pub fn num_sets(&self) -> usize {
        assert!(self.ways > 0, "cache must have at least one way");
        let lines = self.size_bytes / LINE_BYTES;
        assert!(
            lines as usize % self.ways == 0 && lines > 0,
            "cache size {} not divisible into {} ways of {}B lines",
            self.size_bytes,
            self.ways,
            LINE_BYTES
        );
        lines as usize / self.ways
    }
}

/// Per-line metadata returned by probes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineMeta {
    pub state: MesiState,
    pub dirty: bool,
    /// Opaque per-line tag used by callers (GhostMinion stores the fill
    /// timestamp here; non-speculative caches leave it zero).
    pub stamp: u64,
}

/// A line displaced by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictedLine {
    pub addr: u64,
    pub dirty: bool,
    pub state: MesiState,
    pub stamp: u64,
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    state: MesiState,
    dirty: bool,
    stamp: u64,
    last_use: u64,
}

impl Way {
    fn empty() -> Self {
        Way {
            tag: 0,
            state: MesiState::Invalid,
            dirty: false,
            stamp: 0,
            last_use: 0,
        }
    }
}

/// A set-associative tag array with true-LRU replacement.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    use_tick: u64,
    /// Set-selection mask/shift when the set count is a power of two
    /// (every Table 1 geometry) — avoids a hardware divide on the probe
    /// path, which every access through every level pays.
    set_mask: Option<(u64, u32)>,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        let set_mask = num_sets
            .is_power_of_two()
            .then(|| (num_sets as u64 - 1, num_sets.trailing_zeros()));
        Self {
            cfg,
            sets: vec![vec![Way::empty(); cfg.ways]; num_sets],
            use_tick: 0,
            set_mask,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hit latency in cycles.
    pub fn latency(&self) -> u64 {
        self.cfg.latency
    }

    /// Set index for an address.
    pub fn set_index(&self, addr: u64) -> usize {
        let line = line_addr(addr) / LINE_BYTES;
        match self.set_mask {
            Some((mask, _)) => (line & mask) as usize,
            None => (line % self.sets.len() as u64) as usize,
        }
    }

    fn tag_of(&self, addr: u64) -> u64 {
        let line = line_addr(addr) / LINE_BYTES;
        match self.set_mask {
            Some((_, shift)) => line >> shift,
            None => line / self.sets.len() as u64,
        }
    }

    fn find(&self, addr: u64) -> Option<usize> {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        self.sets[set]
            .iter()
            .position(|w| w.state.is_valid() && w.tag == tag)
    }

    /// Probes without updating replacement state; returns metadata on hit.
    pub fn probe(&self, addr: u64) -> Option<LineMeta> {
        self.find(addr).map(|i| {
            let w = &self.sets[self.set_index(addr)][i];
            LineMeta {
                state: w.state,
                dirty: w.dirty,
                stamp: w.stamp,
            }
        })
    }

    /// Looks up `addr`, updating LRU on hit. Returns metadata on hit.
    pub fn access(&mut self, addr: u64) -> Option<LineMeta> {
        let set = self.set_index(addr);
        if let Some(i) = self.find(addr) {
            self.use_tick += 1;
            let tick = self.use_tick;
            let w = &mut self.sets[set][i];
            w.last_use = tick;
            Some(LineMeta {
                state: w.state,
                dirty: w.dirty,
                stamp: w.stamp,
            })
        } else {
            None
        }
    }

    /// Inserts `addr` with the given state and stamp, evicting the LRU
    /// line if the set is full. Returns the displaced line, if any held
    /// valid data.
    ///
    /// If the line is already present its state/stamp are overwritten in
    /// place (no eviction).
    pub fn fill(&mut self, addr: u64, state: MesiState, stamp: u64) -> Option<EvictedLine> {
        self.use_tick += 1;
        let tick = self.use_tick;
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        if let Some(i) = self.find(addr) {
            let w = &mut self.sets[set][i];
            w.state = state;
            w.stamp = stamp;
            w.last_use = tick;
            return None;
        }
        // Prefer an invalid way; otherwise evict true-LRU.
        let victim = self.sets[set]
            .iter()
            .position(|w| !w.state.is_valid())
            .unwrap_or_else(|| {
                self.sets[set]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.last_use)
                    .map(|(i, _)| i)
                    .expect("cache set cannot be empty")
            });
        let old = self.sets[set][victim];
        let evicted = old.state.is_valid().then(|| EvictedLine {
            addr: self.way_addr(set, old.tag),
            dirty: old.dirty,
            state: old.state,
            stamp: old.stamp,
        });
        self.sets[set][victim] = Way {
            tag,
            state,
            dirty: false,
            stamp,
            last_use: tick,
        };
        evicted
    }

    fn way_addr(&self, set: usize, tag: u64) -> u64 {
        (tag * self.sets.len() as u64 + set as u64) * LINE_BYTES
    }

    /// Marks a present line dirty (store hit). No-op if absent.
    pub fn mark_dirty(&mut self, addr: u64) {
        if let Some(i) = self.find(addr) {
            let set = self.set_index(addr);
            self.sets[set][i].dirty = true;
            self.sets[set][i].state = MesiState::Modified;
        }
    }

    /// Downgrades or changes the coherence state of a present line.
    /// No-op if absent.
    pub fn set_state(&mut self, addr: u64, state: MesiState) {
        if let Some(i) = self.find(addr) {
            let set = self.set_index(addr);
            if state == MesiState::Invalid {
                self.sets[set][i] = Way::empty();
            } else {
                self.sets[set][i].state = state;
            }
        }
    }

    /// Invalidates a line if present; returns whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        if let Some(i) = self.find(addr) {
            let set = self.set_index(addr);
            let dirty = self.sets[set][i].dirty;
            self.sets[set][i] = Way::empty();
            dirty
        } else {
            false
        }
    }

    /// Invalidates every line (used by whole-cache flush baselines).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            for way in set {
                *way = Way::empty();
            }
        }
    }

    /// Invalidates every line whose stamp satisfies `pred`. This is the
    /// mechanism behind the GhostMinion single-cycle parallel wipe (§4.2):
    /// the timing model charges constant time regardless of how many lines
    /// match, which this bulk operation reflects.
    pub fn invalidate_where(&mut self, mut pred: impl FnMut(u64) -> bool) -> usize {
        let mut n = 0;
        for set in &mut self.sets {
            for way in set {
                if way.state.is_valid() && pred(way.stamp) {
                    *way = Way::empty();
                    n += 1;
                }
            }
        }
        n
    }

    /// Number of valid lines currently resident.
    pub fn valid_lines(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|w| w.state.is_valid())
            .count()
    }

    /// Iterates over `(line_addr, meta)` for all valid lines in `addr`'s
    /// set — the candidates a fill of `addr` could displace.
    pub fn set_lines(&self, addr: u64) -> impl Iterator<Item = (u64, LineMeta)> + '_ {
        let set = self.set_index(addr);
        self.sets[set]
            .iter()
            .filter(|w| w.state.is_valid())
            .map(move |w| {
                (
                    self.way_addr(set, w.tag),
                    LineMeta {
                        state: w.state,
                        dirty: w.dirty,
                        stamp: w.stamp,
                    },
                )
            })
    }

    /// Number of ways in `addr`'s set currently invalid (free slots).
    pub fn free_ways(&self, addr: u64) -> usize {
        let set = self.set_index(addr);
        self.sets[set]
            .iter()
            .filter(|w| !w.state.is_valid())
            .count()
    }

    /// Replaces a *specific* resident line with `addr` (used by
    /// TimeGuarded fills that must evict the highest-stamped way rather
    /// than the LRU way). Returns the displaced line.
    ///
    /// # Panics
    ///
    /// Panics if `victim_addr` is not resident in the same set as `addr`.
    pub fn fill_replacing(
        &mut self,
        addr: u64,
        victim_addr: u64,
        state: MesiState,
        stamp: u64,
    ) -> EvictedLine {
        let set = self.set_index(addr);
        assert_eq!(
            set,
            self.set_index(victim_addr),
            "victim must be in the same set"
        );
        let vi = self
            .find(victim_addr)
            .expect("victim line must be resident");
        self.use_tick += 1;
        let old = self.sets[set][vi];
        let evicted = EvictedLine {
            addr: self.way_addr(set, old.tag),
            dirty: old.dirty,
            state: old.state,
            stamp: old.stamp,
        };
        self.sets[set][vi] = Way {
            tag: self.tag_of(addr),
            state,
            dirty: false,
            stamp,
            last_use: self.use_tick,
        };
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets x 2 ways of 64B lines = 256B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            latency: 2,
        })
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().num_sets(), 2);
        assert_eq!(c.set_index(0), 0);
        assert_eq!(c.set_index(64), 1);
        assert_eq!(c.set_index(128), 0);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 100,
            ways: 3,
            latency: 1,
        });
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert!(c.access(0x1000).is_none());
        assert!(c.fill(0x1000, MesiState::Exclusive, 7).is_none());
        let meta = c.access(0x1000).expect("hit after fill");
        assert_eq!(meta.state, MesiState::Exclusive);
        assert_eq!(meta.stamp, 7);
        // Same line, different offset.
        assert!(c.access(0x103f).is_some());
        // Different line.
        assert!(c.access(0x1040).is_none());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Set 0 holds lines at multiples of 128.
        c.fill(0, MesiState::Shared, 0);
        c.fill(128, MesiState::Shared, 0);
        c.access(0); // 0 is now MRU
        let ev = c.fill(256, MesiState::Shared, 0).expect("eviction");
        assert_eq!(ev.addr, 128);
        assert!(c.probe(0).is_some());
        assert!(c.probe(128).is_none());
        assert!(c.probe(256).is_some());
    }

    #[test]
    fn fill_of_resident_line_updates_in_place() {
        let mut c = small();
        c.fill(0, MesiState::Shared, 1);
        assert!(c.fill(0, MesiState::Exclusive, 2).is_none());
        let m = c.probe(0).unwrap();
        assert_eq!(m.state, MesiState::Exclusive);
        assert_eq!(m.stamp, 2);
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn dirty_and_states() {
        let mut c = small();
        c.fill(0, MesiState::Exclusive, 0);
        c.mark_dirty(0);
        let m = c.probe(0).unwrap();
        assert!(m.dirty);
        assert_eq!(m.state, MesiState::Modified);
        c.set_state(0, MesiState::Shared);
        assert_eq!(c.probe(0).unwrap().state, MesiState::Shared);
        assert!(c.invalidate(0)); // was dirty
        assert!(c.probe(0).is_none());
        assert!(!c.invalidate(0)); // already gone
    }

    #[test]
    fn eviction_reports_dirty_writeback() {
        let mut c = small();
        c.fill(0, MesiState::Exclusive, 0);
        c.mark_dirty(0);
        c.fill(128, MesiState::Shared, 0);
        let ev = c.fill(256, MesiState::Shared, 0).expect("eviction");
        // LRU is line 0 (dirty).
        assert_eq!(ev.addr, 0);
        assert!(ev.dirty);
        assert_eq!(ev.state, MesiState::Modified);
    }

    #[test]
    fn invalidate_where_filters_on_stamp() {
        let mut c = small();
        c.fill(0, MesiState::Shared, 5);
        c.fill(64, MesiState::Shared, 10);
        c.fill(128, MesiState::Shared, 15);
        let n = c.invalidate_where(|stamp| stamp > 7);
        assert_eq!(n, 2);
        assert!(c.probe(0).is_some());
        assert!(c.probe(64).is_none());
        assert!(c.probe(128).is_none());
    }

    #[test]
    fn free_ways_and_set_lines() {
        let mut c = small();
        assert_eq!(c.free_ways(0), 2);
        c.fill(0, MesiState::Shared, 3);
        assert_eq!(c.free_ways(0), 1);
        let lines: Vec<_> = c.set_lines(0).collect();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].0, 0);
        assert_eq!(lines[0].1.stamp, 3);
        // Other set unaffected.
        assert_eq!(c.free_ways(64), 2);
    }

    #[test]
    fn fill_replacing_targets_specific_victim() {
        let mut c = small();
        c.fill(0, MesiState::Shared, 1);
        c.fill(128, MesiState::Shared, 9);
        c.access(128); // make 128 MRU; plain LRU would evict 0
        let ev = c.fill_replacing(256, 128, MesiState::Shared, 2);
        assert_eq!(ev.addr, 128);
        assert!(c.probe(0).is_some());
        assert!(c.probe(256).is_some());
    }

    #[test]
    #[should_panic(expected = "must be resident")]
    fn fill_replacing_missing_victim_panics() {
        let mut c = small();
        c.fill_replacing(256, 128, MesiState::Shared, 0);
    }

    #[test]
    fn invalidate_all_empties() {
        let mut c = small();
        c.fill(0, MesiState::Shared, 0);
        c.fill(64, MesiState::Shared, 0);
        c.invalidate_all();
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn round_trip_way_addr() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 64 * 1024,
            ways: 2,
            latency: 2,
        });
        for &addr in &[0u64, 0x1fc0, 0x00de_adc0, 0x7fff_ffc0] {
            c.fill(addr, MesiState::Shared, 0);
            let found: Vec<_> = c
                .set_lines(addr)
                .filter(|(a, _)| *a == line_addr(addr))
                .collect();
            assert_eq!(found.len(), 1, "line for {addr:#x} must round-trip");
        }
    }

    #[test]
    fn mesi_predicates() {
        assert!(MesiState::Modified.is_writable());
        assert!(MesiState::Exclusive.is_writable());
        assert!(!MesiState::Shared.is_writable());
        assert!(!MesiState::Invalid.is_valid());
        assert!(MesiState::Shared.is_valid());
    }
}
