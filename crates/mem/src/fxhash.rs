//! A dependency-free fast hasher for the simulator's hot maps.
//!
//! The functional memory and the memory system key maps by line/block
//! addresses — small, well-distributed `u64` keys hashed millions of
//! times per simulated second. `std`'s default SipHash is keyed and
//! DoS-resistant, which buys nothing here (keys are simulated addresses,
//! not attacker input) and costs real time. This is the classic
//! Fx/rustc multiply-mix hash: one rotate, one xor, one multiply per
//! word, implemented in-repo so the workspace stays dependency-free
//! (the same policy as `gm-results`' in-repo SHA-256).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative mixing constant (from Firefox/rustc's FxHash; the
/// golden-ratio-derived odd constant spreads low-entropy keys well).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word-at-a-time multiply-mix hasher. Not DoS-resistant — use only
/// where keys are simulator-internal (addresses, seqs, tickets).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }
}

/// `BuildHasher` for [`FxHasher`]-backed maps and sets.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by simulator-internal values.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` of simulator-internal values.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(v: u64) -> u64 {
        let mut h = FxBuildHasher::default().build_hasher();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic_and_distinguishing() {
        assert_eq!(hash_of(0x1000), hash_of(0x1000));
        assert_ne!(hash_of(0x1000), hash_of(0x1040));
        // Line addresses differ only in high-ish bits; the multiply must
        // still spread them across the full range.
        let hashes: Vec<u64> = (0..1024u64).map(|i| hash_of(i * 64)).collect();
        let mut deduped = hashes.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), hashes.len(), "line-address collisions");
    }

    #[test]
    fn byte_stream_matches_any_chunking() {
        let bytes = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
        let mut a = FxHasher::default();
        a.write(&bytes);
        let mut b = FxHasher::default();
        b.write(&bytes);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[0u8; 3]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn fx_map_works_as_a_map() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i * 64, i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(42 * 64)), Some(&42));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
